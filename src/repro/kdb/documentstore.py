"""Embedded document store with a MongoDB-like API.

The paper stores the ADA-HEALTH Knowledge Base "on a cluster of MongoDBs".
This module is the reproduction's substitute substrate: an embedded,
dependency-free document database exposing the subset of the MongoDB
surface the K-DB needs —

* collections of JSON-like documents with automatic ``_id`` assignment,
* rich query documents (``$eq $ne $gt $gte $lt $lte $in $nin $and $or
  $nor $not $exists $regex $size $all $elemMatch`` plus implicit equality
  and dot-path addressing with MongoDB array-traversal semantics),
* update operators (``$set $unset $inc $push $pull $addToSet``),
* secondary hash indexes (optionally unique) that accelerate equality
  queries, and
* durable persistence as one JSON-lines file per collection.

Documents are stored *by value*: inserts and finds deep-copy, so callers
can never mutate the store through aliased references.
"""

from __future__ import annotations

import copy
import json
import os
import re
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.exceptions import (
    CollectionNotFoundError,
    DuplicateKeyError,
    QueryError,
    StoreError,
)

Document = Dict[str, Any]
Query = Dict[str, Any]

_COMPARISONS: Dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda value, operand: _values_equal(value, operand),
    "$ne": lambda value, operand: not _values_equal(value, operand),
    "$gt": lambda value, operand: _ordered(value, operand) and value > operand,
    "$gte": lambda value, operand: _ordered(value, operand)
    and value >= operand,
    "$lt": lambda value, operand: _ordered(value, operand) and value < operand,
    "$lte": lambda value, operand: _ordered(value, operand)
    and value <= operand,
}


def _values_equal(value: Any, operand: Any) -> bool:
    """Equality with bool/int separation (Mongo treats them as equal; we
    follow Python semantics but avoid ``1 == True`` surprises)."""
    if isinstance(value, bool) != isinstance(operand, bool):
        return False
    return value == operand


def _ordered(value: Any, operand: Any) -> bool:
    """True when the two values are comparable with ``<``/``>``."""
    if value is None or operand is None:
        return False
    if isinstance(value, bool) or isinstance(operand, bool):
        return False
    number = (int, float)
    if isinstance(value, number) and isinstance(operand, number):
        return True
    return type(value) is type(operand) and isinstance(value, str)


def _walk_path(document: Any, path: Sequence[str]) -> List[Any]:
    """Resolve a dot path, fanning out over arrays like MongoDB.

    Returns the list of values reachable at the path ( possibly empty).
    A list encountered mid-path is traversed element-wise; a list at the
    end of the path is returned whole *and* its elements are candidates
    for comparison (handled by the matcher).
    """
    if not path:
        return [document]
    head, *rest = path
    results: List[Any] = []
    if isinstance(document, dict):
        if head in document:
            results.extend(_walk_path(document[head], rest))
    elif isinstance(document, list):
        if head.isdigit():
            index = int(head)
            if 0 <= index < len(document):
                results.extend(_walk_path(document[index], rest))
        for element in document:
            if isinstance(element, (dict, list)):
                results.extend(_walk_path(element, [head] + rest))
    return results


class _Matcher:
    """Compiles a query document into a predicate over documents."""

    def __init__(self, query: Query) -> None:
        if not isinstance(query, dict):
            raise QueryError("query must be a dict")
        self._query = query

    def __call__(self, document: Document) -> bool:
        return self._match_query(self._query, document)

    # -- query-level -----------------------------------------------------
    def _match_query(self, query: Query, document: Document) -> bool:
        for key, condition in query.items():
            if key == "$and":
                self._require_clause_list(key, condition)
                if not all(
                    self._match_query(clause, document)
                    for clause in condition
                ):
                    return False
            elif key == "$or":
                self._require_clause_list(key, condition)
                if not any(
                    self._match_query(clause, document)
                    for clause in condition
                ):
                    return False
            elif key == "$nor":
                self._require_clause_list(key, condition)
                if any(
                    self._match_query(clause, document)
                    for clause in condition
                ):
                    return False
            elif key.startswith("$"):
                raise QueryError(f"unknown top-level operator: {key}")
            else:
                if not self._match_field(key, condition, document):
                    return False
        return True

    @staticmethod
    def _require_clause_list(operator: str, condition: Any) -> None:
        if not isinstance(condition, list) or not condition:
            raise QueryError(f"{operator} requires a non-empty list")

    # -- field-level -----------------------------------------------------
    def _match_field(
        self, path: str, condition: Any, document: Document
    ) -> bool:
        values = _walk_path(document, path.split("."))
        if isinstance(condition, dict) and any(
            key.startswith("$") for key in condition
        ):
            return self._match_operators(path, condition, values)
        # Implicit equality: match the value itself or any array element.
        return self._equality_any(values, condition)

    @staticmethod
    def _equality_any(values: List[Any], operand: Any) -> bool:
        for value in values:
            if _values_equal(value, operand):
                return True
            if isinstance(value, list) and any(
                _values_equal(element, operand) for element in value
            ):
                return True
        return False

    def _match_operators(
        self, path: str, condition: Dict[str, Any], values: List[Any]
    ) -> bool:
        candidates = list(values)
        for value in values:
            if isinstance(value, list):
                candidates.extend(value)
        for operator, operand in condition.items():
            if not self._apply_operator(
                path, operator, operand, values, candidates
            ):
                return False
        return True

    def _apply_operator(
        self,
        path: str,
        operator: str,
        operand: Any,
        values: List[Any],
        candidates: List[Any],
    ) -> bool:
        if operator in _COMPARISONS:
            compare = _COMPARISONS[operator]
            if operator == "$ne":
                return all(compare(value, operand) for value in candidates)
            return any(compare(value, operand) for value in candidates)
        if operator == "$in":
            if not isinstance(operand, list):
                raise QueryError("$in requires a list")
            return any(
                self._equality_any(values, wanted) for wanted in operand
            )
        if operator == "$nin":
            if not isinstance(operand, list):
                raise QueryError("$nin requires a list")
            return not any(
                self._equality_any(values, unwanted) for unwanted in operand
            )
        if operator == "$exists":
            return bool(values) == bool(operand)
        if operator == "$not":
            if not isinstance(operand, dict):
                raise QueryError("$not requires an operator document")
            return not self._match_operators(path, operand, values)
        if operator == "$regex":
            pattern = re.compile(operand)
            return any(
                isinstance(value, str) and pattern.search(value)
                for value in candidates
            )
        if operator == "$size":
            return any(
                isinstance(value, list) and len(value) == operand
                for value in values
            )
        if operator == "$all":
            if not isinstance(operand, list):
                raise QueryError("$all requires a list")
            return all(
                self._equality_any(values, wanted) for wanted in operand
            )
        if operator == "$elemMatch":
            if not isinstance(operand, dict):
                raise QueryError("$elemMatch requires a query document")
            inner = _Matcher(operand)
            for value in values:
                if isinstance(value, list) and any(
                    isinstance(element, dict) and inner(element)
                    for element in value
                ):
                    return True
            return False
        raise QueryError(f"unknown operator: {operator}")


class _OrderedValue:
    """Total-order wrapper for sort values of one type.

    Same-type values that do not support ``<`` (dicts, mixed-content
    lists...) fall back to a stable ``repr``-based ordering instead of
    raising ``TypeError`` out of ``sort``.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any) -> None:
        self.value = value

    def __lt__(self, other: "_OrderedValue") -> bool:
        try:
            return bool(self.value < other.value)
        except TypeError:
            return repr(self.value) < repr(other.value)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, _OrderedValue):
            return NotImplemented
        return self.value == other.value


class Cursor:
    """Lazy result set supporting ``sort``/``skip``/``limit`` chaining.

    The resolved (sorted, sliced) view is memoised: ``len(cursor)``
    followed by iteration, or repeated ``to_list`` calls, pay the
    O(n log n) sort once. Chaining ``sort``/``skip``/``limit``
    invalidates the memo.
    """

    def __init__(self, documents: List[Document]) -> None:
        self._documents = documents
        self._sort_spec: List[Tuple[str, int]] = []
        self._skip = 0
        self._limit: Optional[int] = None
        self._cache: Optional[List[Document]] = None

    def sort(self, key: Union[str, List[Tuple[str, int]]], direction: int = 1):
        """Sort by a dot-path (or list of ``(path, direction)`` pairs)."""
        if isinstance(key, str):
            self._sort_spec = [(key, direction)]
        else:
            self._sort_spec = list(key)
        self._cache = None
        return self

    def skip(self, count: int) -> "Cursor":
        """Skip the first ``count`` results."""
        if count < 0:
            raise QueryError("skip must be non-negative")
        self._skip = count
        self._cache = None
        return self

    def limit(self, count: int) -> "Cursor":
        """Return at most ``count`` results."""
        if count < 0:
            raise QueryError("limit must be non-negative")
        self._limit = count
        self._cache = None
        return self

    def _resolved(self) -> List[Document]:
        if self._cache is not None:
            return self._cache
        documents = self._documents
        for path, direction in reversed(self._sort_spec):
            parts = path.split(".")

            def sort_key(document: Document, parts=parts) -> Tuple:
                values = _walk_path(document, parts)
                value = values[0] if values else None
                # None sorts first; mixed types sort by type name;
                # unorderable same-type values by repr (stable).
                return (
                    value is not None,
                    type(value).__name__,
                    _OrderedValue(value),
                )

            documents = sorted(
                documents, key=sort_key, reverse=(direction < 0)
            )
        end = (
            None if self._limit is None else self._skip + self._limit
        )
        self._cache = documents[self._skip : end]
        return self._cache

    def __iter__(self) -> Iterator[Document]:
        return iter(self._resolved())

    def __len__(self) -> int:
        return len(self._resolved())

    def to_list(self) -> List[Document]:
        """Materialise the cursor into a list."""
        return list(self._resolved())


class Collection:
    """A named collection of documents inside a :class:`DocumentStore`."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._documents: Dict[Any, Document] = {}
        self._next_id = 1
        # index name -> (path, unique, mapping key -> set of _ids)
        self._indexes: Dict[str, Tuple[str, bool, Dict[Any, set]]] = {}

    # -- insert ----------------------------------------------------------
    def insert_one(self, document: Document) -> Any:
        """Insert a document; returns its ``_id`` (assigned if absent)."""
        if not isinstance(document, dict):
            raise StoreError("documents must be dicts")
        document = copy.deepcopy(document)
        if "_id" not in document:
            while self._next_id in self._documents:
                self._next_id += 1
            document["_id"] = self._next_id
            self._next_id += 1
        _reject_unstorable(document)
        doc_id = document["_id"]
        if doc_id in self._documents:
            raise DuplicateKeyError(
                f"duplicate _id in {self.name!r}: {doc_id!r}"
            )
        self._check_unique_indexes(document)
        self._documents[doc_id] = document
        self._index_add(document)
        return doc_id

    def insert_many(self, documents: Iterable[Document]) -> List[Any]:
        """Insert several documents; returns their ids."""
        return [self.insert_one(document) for document in documents]

    # -- find --------------------------------------------------------------
    def find(self, query: Optional[Query] = None) -> Cursor:
        """Return a cursor over documents matching ``query`` (all if None)."""
        query = query or {}
        matcher = _Matcher(query)
        candidates = self._candidates(query)
        matched = [
            copy.deepcopy(document)
            for document in candidates
            if matcher(document)
        ]
        return Cursor(matched)

    def find_one(self, query: Optional[Query] = None) -> Optional[Document]:
        """Return one matching document, or None."""
        for document in self.find(query):
            return document
        return None

    def count_documents(self, query: Optional[Query] = None) -> int:
        """Number of documents matching ``query``."""
        query = query or {}
        matcher = _Matcher(query)
        return sum(
            1 for document in self._candidates(query) if matcher(document)
        )

    def distinct(self, path: str, query: Optional[Query] = None) -> List[Any]:
        """Distinct values reachable at ``path`` among matching documents."""
        seen: List[Any] = []
        for document in self.find(query):
            for value in _walk_path(document, path.split(".")):
                targets = value if isinstance(value, list) else [value]
                for target in targets:
                    if target not in seen:
                        seen.append(target)
        return seen

    def _candidates(self, query: Query) -> List[Document]:
        """Use a hash index when the query has a top-level equality on an
        indexed path; otherwise scan the collection."""
        for path, __, mapping in self._indexes.values():
            condition = query.get(path)
            if condition is None or isinstance(condition, (dict, list)):
                continue
            ids = mapping.get(_index_key(condition), set())
            return [self._documents[doc_id] for doc_id in ids]
        return list(self._documents.values())

    # -- update ------------------------------------------------------------
    def update_one(self, query: Query, update: Document) -> int:
        """Apply an update document to the first match; returns 0 or 1."""
        return self._update(query, update, many=False)

    def update_many(self, query: Query, update: Document) -> int:
        """Apply an update document to all matches; returns match count."""
        return self._update(query, update, many=True)

    def _update(self, query: Query, update: Document, many: bool) -> int:
        if not update or not all(k.startswith("$") for k in update):
            raise StoreError(
                "update documents must use operators ($set, $inc, ...)"
            )
        matcher = _Matcher(query)
        updated = 0
        for doc_id, document in list(self._documents.items()):
            if not matcher(document):
                continue
            self._index_remove(document)
            try:
                _apply_update(document, update)
                _reject_unstorable(document)
                if document["_id"] != doc_id:
                    raise StoreError("updates may not modify _id")
            finally:
                self._index_add(document)
            updated += 1
            if not many:
                break
        return updated

    # -- delete ------------------------------------------------------------
    def delete_one(self, query: Query) -> int:
        """Delete the first matching document; returns 0 or 1."""
        return self._delete(query, many=False)

    def delete_many(self, query: Optional[Query] = None) -> int:
        """Delete all matching documents; returns the count deleted."""
        return self._delete(query or {}, many=True)

    def _delete(self, query: Query, many: bool) -> int:
        matcher = _Matcher(query)
        victims = []
        for doc_id, document in self._documents.items():
            if matcher(document):
                victims.append(doc_id)
                if not many:
                    break
        for doc_id in victims:
            self._index_remove(self._documents[doc_id])
            del self._documents[doc_id]
        return len(victims)

    # -- indexes -----------------------------------------------------------
    def create_index(self, path: str, unique: bool = False) -> str:
        """Create a hash index on a dot path; returns the index name."""
        name = f"{path}_1"
        if name in self._indexes:
            return name
        mapping: Dict[Any, set] = {}
        self._indexes[name] = (path, unique, mapping)
        try:
            for document in self._documents.values():
                self._index_document(name, document)
        except DuplicateKeyError:
            del self._indexes[name]
            raise
        return name

    def drop_index(self, name: str) -> None:
        """Drop an index by name."""
        self._indexes.pop(name, None)

    def index_names(self) -> List[str]:
        """Names of the existing indexes."""
        return list(self._indexes)

    def _index_document(self, name: str, document: Document) -> None:
        path, unique, mapping = self._indexes[name]
        for value in _walk_path(document, path.split(".")):
            key = _index_key(value)
            bucket = mapping.setdefault(key, set())
            if unique and bucket and document["_id"] not in bucket:
                raise DuplicateKeyError(
                    f"unique index {name!r} violated by value {value!r}"
                )
            bucket.add(document["_id"])

    def _check_unique_indexes(self, document: Document) -> None:
        for name, (path, unique, mapping) in self._indexes.items():
            if not unique:
                continue
            for value in _walk_path(document, path.split(".")):
                if mapping.get(_index_key(value)):
                    raise DuplicateKeyError(
                        f"unique index {name!r} violated by value {value!r}"
                    )

    def _index_add(self, document: Document) -> None:
        for name in self._indexes:
            self._index_document(name, document)

    def _index_remove(self, document: Document) -> None:
        for path, __, mapping in self._indexes.values():
            for value in _walk_path(document, path.split(".")):
                bucket = mapping.get(_index_key(value))
                if bucket is not None:
                    bucket.discard(document["_id"])

    # -- aggregation -----------------------------------------------------
    def aggregate(self, pipeline: List[Document]) -> List[Document]:
        """Run a Mongo-style aggregation pipeline.

        Supported stages: ``$match`` (query document), ``$group`` (by a
        ``_id`` expression with ``$sum/$avg/$min/$max/$count/$push``
        accumulators; field references use the ``"$path"`` syntax),
        ``$sort`` (``{path: 1|-1}``), ``$limit``, ``$skip`` and
        ``$project`` (1-valued field inclusion).
        """
        rows = [copy.deepcopy(d) for d in self._documents.values()]
        for stage in pipeline:
            if not isinstance(stage, dict) or len(stage) != 1:
                raise QueryError("each stage must be a single-key dict")
            operator, spec = next(iter(stage.items()))
            if operator == "$match":
                matcher = _Matcher(spec)
                rows = [row for row in rows if matcher(row)]
            elif operator == "$group":
                rows = _group(rows, spec)
            elif operator == "$sort":
                for path, direction in reversed(list(spec.items())):
                    rows.sort(
                        key=lambda row, p=path: _sort_key(row, p),
                        reverse=direction < 0,
                    )
            elif operator == "$limit":
                rows = rows[: int(spec)]
            elif operator == "$skip":
                rows = rows[int(spec):]
            elif operator == "$project":
                rows = [_project(row, spec) for row in rows]
            else:
                raise QueryError(f"unknown pipeline stage: {operator}")
        return rows

    # -- misc ----------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._documents)

    def drop(self) -> None:
        """Remove every document (indexes survive, emptied)."""
        self._documents.clear()
        for __, __, mapping in self._indexes.values():
            mapping.clear()


def _resolve_expression(document: Document, expression: Any) -> Any:
    """Resolve a ``"$path"`` field reference (or return the literal)."""
    if isinstance(expression, str) and expression.startswith("$"):
        values = _walk_path(document, expression[1:].split("."))
        return values[0] if values else None
    return expression


def _sort_key(document: Document, path: str) -> Tuple:
    values = _walk_path(document, path.split("."))
    value = values[0] if values else None
    return (value is not None, type(value).__name__, _OrderedValue(value))


def _project(document: Document, spec: Document) -> Document:
    projected: Document = {}
    for path, include in spec.items():
        if not include:
            continue
        values = _walk_path(document, path.split("."))
        if values:
            projected[path] = copy.deepcopy(values[0])
    return projected


_ACCUMULATORS = ("$sum", "$avg", "$min", "$max", "$count", "$push")


def _group(rows: List[Document], spec: Document) -> List[Document]:
    if "_id" not in spec:
        raise QueryError("$group requires an _id expression")
    buckets: Dict[Any, List[Document]] = {}
    bucket_keys: Dict[Any, Any] = {}
    for row in rows:
        key_value = _resolve_expression(row, spec["_id"])
        key = _index_key(key_value)
        buckets.setdefault(key, []).append(row)
        bucket_keys[key] = key_value

    results: List[Document] = []
    for key in sorted(buckets, key=lambda k: (str(type(k)), str(k))):
        members = buckets[key]
        out: Document = {"_id": bucket_keys[key]}
        for field_name, accumulator in spec.items():
            if field_name == "_id":
                continue
            if (
                not isinstance(accumulator, dict)
                or len(accumulator) != 1
            ):
                raise QueryError(
                    f"accumulator for {field_name!r} must be a"
                    f" single-operator dict"
                )
            operator, operand = next(iter(accumulator.items()))
            if operator not in _ACCUMULATORS:
                raise QueryError(f"unknown accumulator: {operator}")
            if operator == "$count":
                out[field_name] = len(members)
                continue
            values = [
                _resolve_expression(member, operand)
                for member in members
            ]
            if operator == "$push":
                out[field_name] = values
                continue
            numbers = [
                value
                for value in values
                if isinstance(value, (int, float))
                and not isinstance(value, bool)
            ]
            if operator == "$sum":
                out[field_name] = sum(numbers)
            elif operator == "$avg":
                out[field_name] = (
                    sum(numbers) / len(numbers) if numbers else None
                )
            elif operator == "$min":
                out[field_name] = min(numbers) if numbers else None
            elif operator == "$max":
                out[field_name] = max(numbers) if numbers else None
        results.append(out)
    return results


def _index_key(value: Any) -> Any:
    """Hashable key for index buckets (lists/dicts hashed by JSON dump)."""
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, default=str)
    return value


def _reject_unstorable(document: Document) -> None:
    """Ensure the document is JSON-serialisable (store contract)."""
    try:
        json.dumps(document)
    except (TypeError, ValueError) as exc:
        raise StoreError(f"document is not JSON-serialisable: {exc}") from exc


def _apply_update(document: Document, update: Document) -> None:
    for operator, fields in update.items():
        if not isinstance(fields, dict):
            raise StoreError(f"{operator} requires a field document")
        for path, operand in fields.items():
            parent, leaf = _resolve_parent(document, path, create=True)
            if operator == "$set":
                parent[leaf] = copy.deepcopy(operand)
            elif operator == "$unset":
                if isinstance(parent, dict):
                    parent.pop(leaf, None)
            elif operator == "$inc":
                current = parent.get(leaf, 0)
                if not isinstance(current, (int, float)) or isinstance(
                    current, bool
                ):
                    raise StoreError(f"$inc target {path!r} is not numeric")
                parent[leaf] = current + operand
            elif operator == "$push":
                bucket = parent.setdefault(leaf, [])
                if not isinstance(bucket, list):
                    raise StoreError(f"$push target {path!r} is not a list")
                bucket.append(copy.deepcopy(operand))
            elif operator == "$addToSet":
                bucket = parent.setdefault(leaf, [])
                if not isinstance(bucket, list):
                    raise StoreError(
                        f"$addToSet target {path!r} is not a list"
                    )
                if operand not in bucket:
                    bucket.append(copy.deepcopy(operand))
            elif operator == "$pull":
                bucket = parent.get(leaf)
                if isinstance(bucket, list):
                    parent[leaf] = [
                        element
                        for element in bucket
                        if not _values_equal(element, operand)
                    ]
            else:
                raise StoreError(f"unknown update operator: {operator}")


def _resolve_parent(
    document: Document, path: str, create: bool
) -> Tuple[Dict[str, Any], str]:
    """Return (parent dict, leaf key) for a dot path, creating dicts."""
    parts = path.split(".")
    node: Any = document
    for part in parts[:-1]:
        if isinstance(node, dict):
            if part not in node:
                if not create:
                    raise StoreError(f"path does not exist: {path!r}")
                node[part] = {}
            node = node[part]
        else:
            raise StoreError(f"cannot descend into non-dict at {part!r}")
    if not isinstance(node, dict):
        raise StoreError(f"cannot address leaf of non-dict at {path!r}")
    return node, parts[-1]


class DocumentStore:
    """A database of named collections, persistable to a directory."""

    def __init__(self) -> None:
        self._collections: Dict[str, Collection] = {}
        #: One human-readable line per corrupt JSONL line skipped by
        #: the most recent :meth:`load` (empty after a clean load).
        self.load_warnings: List[str] = []

    def collection(self, name: str) -> Collection:
        """Get or create the named collection."""
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def existing(self, name: str) -> Collection:
        """Get a collection that must already exist."""
        try:
            return self._collections[name]
        except KeyError:
            raise CollectionNotFoundError(name) from None

    def collection_names(self) -> List[str]:
        """Names of all collections."""
        return sorted(self._collections)

    def drop_collection(self, name: str) -> None:
        """Remove a collection entirely (no-op if absent)."""
        self._collections.pop(name, None)

    # -- persistence -------------------------------------------------------
    def save(self, directory: Union[str, Path]) -> None:
        """Persist every collection as ``<name>.jsonl`` under ``directory``.

        Indexes are saved in a side-car manifest and rebuilt on load.
        Every file is written to a temporary sibling and moved into
        place with :func:`os.replace`, so a crash mid-save leaves the
        previous complete file (or no file), never a truncated one.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest = {}
        for name, collection in self._collections.items():
            _atomic_write(
                directory / f"{name}.jsonl",
                "".join(
                    json.dumps(document, sort_keys=True) + "\n"
                    for document in collection._documents.values()
                ),
            )
            manifest[name] = [
                {"path": path, "unique": unique}
                for path, unique, __ in collection._indexes.values()
            ]
        _atomic_write(
            directory / "_manifest.json",
            json.dumps(manifest, indent=2, sort_keys=True),
        )

    @classmethod
    def load(cls, directory: Union[str, Path]) -> "DocumentStore":
        """Load a store previously written by :meth:`save`.

        Truncated or otherwise corrupt JSONL lines (a crash mid-append,
        a chopped download) are skipped rather than aborting the load;
        each skip is recorded in :attr:`load_warnings` so callers can
        audit what was lost.
        """
        directory = Path(directory)
        manifest_path = directory / "_manifest.json"
        if not manifest_path.exists():
            raise StoreError(f"no store manifest in {directory}")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        store = cls()
        for name, indexes in manifest.items():
            collection = store.collection(name)
            data_path = directory / f"{name}.jsonl"
            if data_path.exists():
                with open(data_path) as handle:
                    for lineno, line in enumerate(handle, start=1):
                        if not line.strip():
                            continue
                        try:
                            document = json.loads(line)
                        except json.JSONDecodeError as exc:
                            store.load_warnings.append(
                                f"{data_path.name}:{lineno}: skipped"
                                f" corrupt line ({exc.msg})"
                            )
                            continue
                        collection.insert_one(document)
            for index in indexes:
                collection.create_index(
                    index["path"], unique=index["unique"]
                )
        return store


def _atomic_write(path: Path, content: str) -> None:
    """Write ``content`` to ``path`` via a temp file and ``os.replace``."""
    temporary = path.with_name(path.name + ".tmp")
    with open(temporary, "w") as handle:
        handle.write(content)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(temporary, path)
