"""Hash-sharded, append-only persistence for the K-DB document store.

A :class:`ShardedDocumentStore` keeps the whole store in memory (it is
a :class:`~repro.kdb.documentstore.DocumentStore`) but persists each
collection as ``N`` hash partitions on disk:

* ``<collection>.shard-0007.jsonl`` — the *base*: one full document per
  line, rewritten only by compaction (crash-safe via the same
  ``_atomic_write``/``os.replace`` discipline the flat store uses), and
* ``<collection>.shard-0007.log.jsonl`` — the *log*: an append-only
  stream of ``{"op": "put"|"del"|"clear", ...}`` records, one per
  mutation, flushed on every append.

Every mutation therefore costs one small append instead of rewriting a
collection-sized file — the write path that makes million-document
collections practical. Opening the store replays base-then-log per
shard; :meth:`ShardedDocumentStore.compact` folds the logs back into
fresh bases (new bases are written atomically *before* the logs are
removed, and replaying a full log over a compacted base converges to
the same state, so a crash at any point during compaction loses
nothing). Compaction can also run on a background thread or be
triggered automatically every ``auto_compact_ops`` journaled ops.

Shard placement hashes the canonical JSON of the document ``_id`` with
CRC-32 (:func:`shard_of`), so placement is stable across processes and
Python hash randomisation.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.exceptions import StoreError
from repro.kdb.documentstore import (
    Collection,
    DocumentStore,
    _atomic_write,
    _index_key,
)

_MANIFEST_NAME = "_shards.json"
_MANIFEST_VERSION = 1
_LOCKFILE_NAME = "_shards.lock"

#: Fields a shard-log record may carry (the ADA021 consumer contract;
#: ``doc`` only on ``put``, ``id`` only on ``del``). ``_replay_log``
#: is the reading side.
LOG_RECORD_FIELDS = ("op", "doc", "id")

#: Directories this process currently holds open (resolved paths),
#: guarded by ``_OWNED_GUARD``. Lets the lockfile distinguish "same
#: pid, still open" (a genuine double-open) from "same pid, stale file
#: left by a crashed predecessor object".
_OWNED_GUARD = threading.Lock()
_OWNED_DIRS: Set[str] = set()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lockfile holder."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM etc.)
    return True


def _read_lock_pid(path: Path) -> Optional[int]:
    try:
        return int(path.read_text().strip() or "0")
    except (OSError, ValueError):
        return None


def shard_of(doc_id: Any, n_shards: int) -> int:
    """Stable shard number for a document id (CRC-32 of canonical JSON)."""
    canonical = json.dumps(doc_id, sort_keys=True, default=str)
    return zlib.crc32(canonical.encode("utf-8")) % n_shards


class _ShardFiles:
    """Filenames and append handles for one collection's partitions."""

    def __init__(
        self, directory: Path, name: str, n_shards: int
    ) -> None:
        self.directory = directory
        self.name = name
        self.n_shards = n_shards
        self._handles: Dict[int, Any] = {}
        #: Log records appended since the last compaction.
        self.pending = 0

    def base_path(self, shard: int) -> Path:
        return self.directory / f"{self.name}.shard-{shard:04d}.jsonl"

    def log_path(self, shard: int) -> Path:
        return (
            self.directory / f"{self.name}.shard-{shard:04d}.log.jsonl"
        )

    def append(self, shard: int, record: Dict[str, Any]) -> None:
        handle = self._handles.get(shard)
        if handle is None:
            handle = open(self.log_path(shard), "a")
            self._handles[shard] = handle
        handle.write(json.dumps(record, sort_keys=True) + "\n")
        handle.flush()
        self.pending += 1

    def close_handles(self, sync: bool = False) -> None:
        for handle in self._handles.values():
            if sync:
                handle.flush()
                os.fsync(handle.fileno())
            handle.close()
        self._handles.clear()

    def remove_logs(self) -> None:
        self.close_handles()
        for shard in range(self.n_shards):
            path = self.log_path(shard)
            if path.exists():
                path.unlink()
        self.pending = 0

    def remove_all(self) -> None:
        self.remove_logs()
        for shard in range(self.n_shards):
            path = self.base_path(shard)
            if path.exists():
                path.unlink()

    def disk_bytes(self) -> Dict[str, int]:
        base = log = 0
        for shard in range(self.n_shards):
            if self.base_path(shard).exists():
                base += self.base_path(shard).stat().st_size
            if self.log_path(shard).exists():
                log += self.log_path(shard).stat().st_size
        return {"base_bytes": base, "log_bytes": log}


class ShardedDocumentStore(DocumentStore):
    """A :class:`DocumentStore` persisted as hash-sharded partitions.

    Opening a directory that already holds a shard manifest replays it
    (base files, then append logs, per shard); an empty directory
    starts a fresh store. Every mutation is journaled synchronously to
    the owning shard's log, so the on-disk state trails memory by at
    most the one record being appended.

    Lock ordering: a collection's write lock is always taken *before*
    the store-wide shard lock (the journal runs inside the collection
    lock; :meth:`compact` acquires in that same order), so background
    compaction cannot deadlock against writers. ADA015 pins this as
    the canonical edge of the project lock-order graph.

    Cross-process safety: opening a directory takes an exclusive pid
    lockfile (``_shards.lock``, created ``O_CREAT|O_EXCL``), so a
    second process gets a clear :class:`StoreError` instead of silently
    interleaving log appends. A lockfile whose recorded pid is dead is
    broken automatically (stale-lock detection); :meth:`close` releases
    it. The stale-break itself is not atomic across processes — two
    openers racing a *dead* holder can both proceed — which is the
    documented limit of a lockfile without fcntl range locks.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        n_shards: int = 8,
        auto_compact_ops: Optional[int] = None,
    ) -> None:
        super().__init__()
        if n_shards < 1:
            raise StoreError("n_shards must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self.auto_compact_ops = auto_compact_ops
        self._files: Dict[str, _ShardFiles] = {}
        self._slock = threading.RLock()
        self._loading = False
        self._closed = False
        self._compactor: Optional[threading.Thread] = None
        self._compactor_stop = threading.Event()
        self._lock_key = str(self.directory.resolve())
        self._has_lockfile = self._acquire_lockfile()
        try:
            if (self.directory / _MANIFEST_NAME).exists():
                self._replay()
            else:
                self._write_manifest()
        except BaseException:
            with self._slock:
                self._release_lockfile()
            raise

    # -- single-writer lockfile ------------------------------------------
    def _acquire_lockfile(self) -> bool:
        path = self.directory / _LOCKFILE_NAME
        for attempt in (0, 1):
            try:
                fd = os.open(
                    str(path),
                    os.O_CREAT | os.O_EXCL | os.O_WRONLY,
                )
            except FileExistsError:
                with _OWNED_GUARD:
                    open_here = self._lock_key in _OWNED_DIRS
                holder = _read_lock_pid(path)
                if open_here:
                    raise StoreError(
                        f"{self.directory} is already open in this"
                        " process; a sharded store directory has"
                        " exactly one writer"
                    )
                stale = (
                    holder is None
                    or holder == os.getpid()
                    or not _pid_alive(holder)
                )
                if attempt == 0 and stale:
                    try:
                        path.unlink()
                    except FileNotFoundError:
                        pass
                    continue
                raise StoreError(
                    f"{self.directory} is locked by pid {holder}"
                    f" ({path.name}); close the other"
                    " ShardedDocumentStore first, or delete the"
                    " lockfile if that process is gone"
                )
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            with _OWNED_GUARD:
                _OWNED_DIRS.add(self._lock_key)
            return True
        raise StoreError(  # two stale-break attempts lost the race
            f"could not acquire {path}: another opener raced the"
            " stale-lock takeover"
        )

    def _release_lockfile(self) -> None:
        if not self._has_lockfile:
            return
        self._has_lockfile = False
        with _OWNED_GUARD:
            _OWNED_DIRS.discard(self._lock_key)
        try:
            (self.directory / _LOCKFILE_NAME).unlink()
        except FileNotFoundError:
            pass

    # -- wiring ----------------------------------------------------------
    def _attach_collection(self, collection: Collection) -> None:
        name = collection.name
        with self._slock:
            if name not in self._files:
                self._files[name] = _ShardFiles(
                    self.directory, name, self.n_shards
                )

            def journal(op: str, payload: Any = None) -> None:
                self._on_mutation(name, op, payload)

            collection._journal = journal
            write_manifest = not self._loading
        # The manifest fsync happens after the shard lock is released
        # (ADA018): attach only needs the lock to publish the files
        # entry and journal hook.
        if write_manifest:
            self._write_manifest()

    def _on_mutation(self, name: str, op: str, payload: Any) -> None:
        if self._loading:
            return
        compact_due = False
        index_changed = False
        with self._slock:
            if self._closed:
                raise StoreError("sharded store is closed")
            files = self._files[name]
            if op == "put":
                files.append(
                    shard_of(payload["_id"], self.n_shards),
                    {"op": "put", "doc": payload},
                )
            elif op == "del":
                files.append(
                    shard_of(payload, self.n_shards),
                    {"op": "del", "id": payload},
                )
            elif op == "clear":
                for shard in range(self.n_shards):
                    files.append(shard, {"op": "clear"})
            elif op == "index":
                index_changed = True
            else:
                raise StoreError(f"unknown journal op: {op!r}")
            compact_due = (
                not index_changed
                and self.auto_compact_ops is not None
                and files.pending >= self.auto_compact_ops
            )
        # Both follow-ups run outside the shard lock: compacting from
        # inside it would acquire the collection lock *after* the shard
        # lock — the exact inversion of the documented order (ADA015) —
        # and the manifest write fsyncs (ADA018). The journal runs
        # under the collection lock, so compacting here re-enters it in
        # the documented collection-before-store order.
        if index_changed:
            self._write_manifest()
        elif compact_due:
            self.compact(name)

    # -- manifest --------------------------------------------------------
    def _write_manifest(self) -> None:
        with self._slock:
            layout = {
                "version": _MANIFEST_VERSION,
                "n_shards": self.n_shards,
                "collections": {
                    name: {
                        "indexes": [
                            {
                                "path": index.path,
                                "unique": index.unique,
                                "kind": index.kind,
                            }
                            for index in collection._indexes.values()
                        ]
                    }
                    for name, collection in self._collections.items()
                },
            }
            # Writing (and fsyncing) under the shard lock is deliberate:
            # it serialises manifest writers, so the bytes on disk always
            # correspond to the *latest* layout snapshot — two unlocked
            # writers could land snapshots out of order and resurrect a
            # dropped index definition. The manifest is tiny; the held
            # fsync is bounded.
            _atomic_write(  # adalint: disable=ADA018
                self.directory / _MANIFEST_NAME,
                json.dumps(layout, indent=2, sort_keys=True),
            )

    # -- replay ----------------------------------------------------------
    def _replay(self) -> None:
        layout_path = self.directory / _MANIFEST_NAME
        with open(layout_path) as handle:
            layout = json.load(handle)
        if layout.get("version") != _MANIFEST_VERSION:
            raise StoreError(
                f"unsupported shard manifest version in {layout_path}"
            )
        with self._slock:
            self.n_shards = int(layout["n_shards"])
            self._loading = True
        try:
            for name, info in layout.get("collections", {}).items():
                collection = self.collection(name)
                for shard in range(self.n_shards):
                    for document in self._replay_shard(name, shard):
                        collection._install(document)
                for index in info.get("indexes", []):
                    collection.create_index(
                        index["path"],
                        unique=index.get("unique", False),
                        kind=index.get("kind", "hash"),
                    )
        finally:
            with self._slock:
                self._loading = False

    def _replay_shard(self, name: str, shard: int) -> List[Dict[str, Any]]:
        """Final documents for one shard: base lines, then log ops."""
        files = self._files[name]
        state: Dict[Any, Dict[str, Any]] = {}
        for document in self._read_jsonl(files.base_path(shard)):
            if isinstance(document, dict) and "_id" in document:
                state[_index_key(document["_id"])] = document
            else:
                with self._slock:
                    self.load_warnings.append(
                        f"{files.base_path(shard).name}: skipped"
                        " document without _id"
                    )
        log_path = files.log_path(shard)
        if log_path.exists():
            files.pending += self._replay_log(files, log_path, state)
        return list(state.values())

    def _replay_log(
        self,
        files: _ShardFiles,
        log_path: Path,
        state: Dict[Any, Dict[str, Any]],
    ) -> int:
        ops = 0
        for record in self._read_jsonl(log_path):
            ops += 1
            op = record.get("op") if isinstance(record, dict) else None
            if op == "put" and isinstance(record.get("doc"), dict):
                document = record["doc"]
                state[_index_key(document.get("_id"))] = document
            elif op == "del":
                state.pop(_index_key(record.get("id")), None)
            elif op == "clear":
                state.clear()
            else:
                with self._slock:
                    self.load_warnings.append(
                        f"{log_path.name}: skipped malformed log"
                        " record"
                    )
        return ops

    def _read_jsonl(self, path: Path) -> List[Any]:
        rows: List[Any] = []
        if not path.exists():
            return rows
        with open(path) as handle:
            for lineno, line in enumerate(handle, start=1):
                if not line.strip():
                    continue
                try:
                    rows.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    with self._slock:
                        self.load_warnings.append(
                            f"{path.name}:{lineno}: skipped corrupt"
                            f" line ({exc.msg})"
                        )
        return rows

    # -- compaction ------------------------------------------------------
    def compact(self, name: Optional[str] = None) -> None:
        """Fold append logs into fresh base files.

        With ``name`` compacts one collection, otherwise all. For each
        collection the write lock is held while the in-memory state is
        partitioned and written: new bases land atomically first, logs
        are removed after — a crash in between leaves logs that replay
        idempotently over the new bases.
        """
        names = [name] if name is not None else list(self._collections)
        for collection_name in names:
            collection = self.existing(collection_name)
            with collection._lock:
                with self._slock:
                    if self._closed:
                        raise StoreError("sharded store is closed")
                    files = self._files[collection_name]
                    partitions: Dict[int, List[str]] = {
                        shard: [] for shard in range(self.n_shards)
                    }
                    for document in collection._documents.values():
                        shard = shard_of(document["_id"], self.n_shards)
                        partitions[shard].append(
                            json.dumps(document, sort_keys=True) + "\n"
                        )
                    # Crash-safety requires this ordering to happen
                    # with writers excluded: bases land (fsynced)
                    # strictly before their logs are removed, against
                    # a snapshot no mutation can move. Compaction is
                    # the rare path; writers pay only during it.
                    for shard, lines in partitions.items():
                        _atomic_write(  # adalint: disable=ADA018
                            files.base_path(shard), "".join(lines)
                        )
                    files.remove_logs()
        self._write_manifest()

    def pending_ops(self, name: Optional[str] = None) -> int:
        """Log records appended since the last compaction."""
        with self._slock:
            if name is not None:
                return self._files[name].pending
            return sum(files.pending for files in self._files.values())

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-collection document counts, shard layout and disk usage."""
        out: Dict[str, Dict[str, Any]] = {}
        with self._slock:
            for name, collection in sorted(self._collections.items()):
                files = self._files[name]
                entry: Dict[str, Any] = {
                    "documents": len(collection),
                    "n_shards": self.n_shards,
                    "pending_ops": files.pending,
                    "indexes": collection.index_names(),
                }
                entry.update(files.disk_bytes())
                out[name] = entry
        return out

    # -- background compaction -------------------------------------------
    def start_background_compaction(
        self, interval_s: float = 30.0, min_pending: int = 1
    ) -> None:
        """Compact every ``interval_s`` seconds (when at least
        ``min_pending`` log records accumulated) on a daemon thread."""
        with self._slock:
            if self._closed:
                raise StoreError("sharded store is closed")
            if (
                self._compactor is not None
                and self._compactor.is_alive()
            ):
                return
            self._compactor_stop.clear()

            def run() -> None:
                while not self._compactor_stop.wait(interval_s):
                    if self.pending_ops() >= min_pending:
                        self.compact()

            self._compactor = threading.Thread(
                target=run, name="kdb-compactor", daemon=True
            )
            self._compactor.start()

    def stop_background_compaction(
        self, timeout_s: float = 5.0
    ) -> None:
        """Stop and join the background compaction thread (if running).

        The stop event wakes the compactor out of its interval wait;
        the join is bounded by ``timeout_s`` and happens outside the
        shard lock — an in-flight compaction needs that lock to finish.
        """
        with self._slock:
            self._compactor_stop.set()
            thread, self._compactor = self._compactor, None
        if thread is not None:
            thread.join(timeout=timeout_s)

    # -- lifecycle -------------------------------------------------------
    def drop_collection(self, name: str) -> None:
        """Drop a collection and delete its partition files."""
        super().drop_collection(name)
        with self._slock:
            files = self._files.pop(name, None)
        if files is not None:
            files.remove_all()
        self._write_manifest()

    def close(self) -> None:
        """Stop background compaction, fsync and release log handles.

        Joins the compactor thread first (bounded), marks the store
        closed under the shard lock — after which every journal append
        and compaction attempt raises — then fsyncs and closes the log
        handles outside it, and releases the pid lockfile. Idempotent,
        and deliberately does *not* compact: the logs are already
        durable, and read-only tooling (``repro kdb stats``) must be
        able to open and close a store without rewriting it.
        """
        if self._closed:
            return
        self.stop_background_compaction()
        with self._slock:
            if self._closed:
                return
            self._closed = True
            file_list = list(self._files.values())
            self._release_lockfile()
        # Safe outside the lock: _closed is set, so no journal append
        # can race these handles, and fsync under a hot lock is the
        # ADA018 anti-pattern.
        for files in file_list:
            files.close_handles(sync=True)

    def __enter__(self) -> "ShardedDocumentStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
