"""Hash-sharded, append-only persistence for the K-DB document store.

A :class:`ShardedDocumentStore` keeps the whole store in memory (it is
a :class:`~repro.kdb.documentstore.DocumentStore`) but persists each
collection as ``N`` hash partitions on disk:

* ``<collection>.shard-0007.jsonl`` — the *base*: one full document per
  line, rewritten only by compaction (crash-safe via the same
  ``atomic_write``/``os.replace`` discipline the flat store uses), and
* ``<collection>.shard-0007.log.jsonl`` — the *log*: an append-only
  stream of ``{"op": "put"|"del"|"clear", ...}`` records, one per
  mutation, flushed on every append.

Every mutation therefore costs one small append instead of rewriting a
collection-sized file — the write path that makes million-document
collections practical. Opening the store replays base-then-log per
shard; :meth:`ShardedDocumentStore.compact` folds the logs back into
fresh bases (new bases are written atomically *before* the logs are
removed, and replaying a full log over a compacted base converges to
the same state, so a crash at any point during compaction loses
nothing). Compaction can also run on a background thread or be
triggered automatically every ``auto_compact_ops`` journaled ops.

Since PR 10 every record is written in the checksummed v2 framing of
:mod:`repro.kdb.framing` (CRC-32 + per-file sequence number +
compaction generation) and every byte reaches disk through the
pluggable :mod:`repro.kdb.storage` layer, so recovery can tell the
*expected* crash signature from real damage:

* a **torn tail** — the final log line fails its checksum — is the
  in-flight append of a crash: it is truncated away silently and
  metered as ``kdb.recovery.torn_tail``;
* **interior corruption** — a bad line *before* the end, a sequence
  gap, a mid-file generation switch, or any bad line in an
  atomically-written base — is never silently dropped: the raw line is
  preserved in a ``.quarantine.jsonl`` sidecar, the collection is
  flagged in :attr:`ShardedDocumentStore.degraded_collections`, and
  ``kdb.recovery.quarantined`` is metered;
* a **stale log** (generation older than its base) is the signature of
  a crash between compaction's base writes and its log removals: the
  ops are already folded into the base, so recovery completes the
  interrupted removal (``kdb.recovery.stale_log``).

Pre-checksum (v1) files still replay — plain JSON lines — and upgrade
to v2 framing on their next compaction. A journal append that fails
with an ``OSError`` (``ENOSPC``) write-protects the store until
:meth:`compact` rewrites a consistent on-disk state.

Shard placement hashes the canonical JSON of the document ``_id`` with
CRC-32 (:func:`shard_of`), so placement is stable across processes and
Python hash randomisation.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Set, Union

from repro.exceptions import StoreError
from repro.kdb.documentstore import (
    Collection,
    DocumentStore,
    _index_key,
)
from repro.kdb.framing import (
    CorruptLine,
    ScannedFile,
    frame_line,
    header_line,
    scan_file,
)
from repro.kdb.storage import LocalStorage
from repro.obs.metrics import KDB_RECOVERY_COUNTERS

_MANIFEST_NAME = "_shards.json"
#: Current manifest version; version-1 manifests (pre-generation) are
#: still accepted on open.
_MANIFEST_VERSION = 2
_LOCKFILE_NAME = "_shards.lock"

#: Fields a shard-log record may carry (the ADA021 consumer contract;
#: ``doc`` only on ``put``, ``id`` only on ``del``). ``_replay_log``
#: is the reading side.
LOG_RECORD_FIELDS = ("op", "doc", "id")

#: Metric counters the recovery path maintains (pre-registered by
#: :meth:`ShardedDocumentStore.bind_metrics` so snapshots always carry
#: them; mirrored in :attr:`ShardedDocumentStore.recovery_stats`).
RECOVERY_COUNTERS = KDB_RECOVERY_COUNTERS

#: Directories this process currently holds open (resolved paths),
#: guarded by ``_OWNED_GUARD``. Lets the lockfile distinguish "same
#: pid, still open" (a genuine double-open) from "same pid, stale file
#: left by a crashed predecessor object".
_OWNED_GUARD = threading.Lock()
_OWNED_DIRS: Set[str] = set()


def _pid_alive(pid: int) -> bool:
    """Best-effort liveness probe for a lockfile holder."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except OSError:
        return True  # exists but not ours (EPERM etc.)
    return True


def _read_lock_pid(path: Path) -> Optional[int]:
    """The pid holding a lockfile, or ``None`` if the file is stale.

    Lockfiles are written as ``<pid>\\n``; the trailing newline is a
    completeness marker. A crash between creating the lockfile and
    finishing the pid write leaves a torn prefix (``"2"`` out of
    ``"29020\\n"``) that could parse as some other *live* process —
    without the marker such a lockfile could never be safely broken.
    """
    try:
        content = path.read_text()
    except OSError:
        return None
    if not content.endswith("\n"):
        return None  # torn write: the holder never finished creating it
    try:
        return int(content.strip() or "0")
    except ValueError:
        return None


def shard_of(doc_id: Any, n_shards: int) -> int:
    """Stable shard number for a document id (CRC-32 of canonical JSON)."""
    canonical = json.dumps(doc_id, sort_keys=True, default=str)
    return zlib.crc32(canonical.encode("utf-8")) % n_shards


class _ShardFiles:
    """Filenames, append handles and framing state for one collection."""

    def __init__(
        self,
        directory: Path,
        name: str,
        n_shards: int,
        storage: Any,
    ) -> None:
        self.directory = directory
        self.name = name
        self.n_shards = n_shards
        self.storage = storage
        self._handles: Dict[int, Any] = {}
        #: Log records appended since the last compaction.
        self.pending = 0
        #: Compaction generation stamped into every frame.
        self.gen = 0
        #: Next frame sequence per shard log (None: open a new framed
        #: run — fresh log, or a legacy v1 tail).
        self.next_seq: Dict[int, Optional[int]] = {}

    def base_path(self, shard: int) -> Path:
        return self.directory / f"{self.name}.shard-{shard:04d}.jsonl"

    def log_path(self, shard: int) -> Path:
        return (
            self.directory / f"{self.name}.shard-{shard:04d}.log.jsonl"
        )

    def quarantine_path(self, shard: int) -> Path:
        return (
            self.directory
            / f"{self.name}.shard-{shard:04d}.quarantine.jsonl"
        )

    def append(self, shard: int, record: Dict[str, Any]) -> None:
        handle = self._handles.get(shard)
        if handle is None:
            handle = self.storage.open_append(self.log_path(shard))
            self._handles[shard] = handle
        seq = self.next_seq.get(shard)
        if seq is None:
            # Open a new framed run: fresh log, or appending after a
            # legacy v1 tail (the header resets sequence expectations).
            handle.write_line(header_line(self.gen))
            seq = 1
        handle.write_line(frame_line(record, seq, self.gen))
        self.next_seq[shard] = seq + 1
        self.pending += 1

    def close_handles(self, sync: bool = False) -> None:
        for handle in self._handles.values():
            handle.close(sync=sync)
        self._handles.clear()

    def remove_logs(self) -> None:
        self.close_handles()
        for shard in range(self.n_shards):
            self.storage.remove(self.log_path(shard))
        self.pending = 0
        self.next_seq = {}

    def remove_all(self) -> None:
        self.remove_logs()
        for shard in range(self.n_shards):
            self.storage.remove(self.base_path(shard))
            self.storage.remove(self.quarantine_path(shard))

    def disk_bytes(self) -> Dict[str, int]:
        base = log = 0
        for shard in range(self.n_shards):
            if self.base_path(shard).exists():
                base += self.base_path(shard).stat().st_size
            if self.log_path(shard).exists():
                log += self.log_path(shard).stat().st_size
        return {"base_bytes": base, "log_bytes": log}


class ShardedDocumentStore(DocumentStore):
    """A :class:`DocumentStore` persisted as hash-sharded partitions.

    Opening a directory that already holds a shard manifest replays it
    (base files, then append logs, per shard); an empty directory
    starts a fresh store. Every mutation is journaled synchronously to
    the owning shard's log, so the on-disk state trails memory by at
    most the one record being appended.

    ``storage`` is the I/O funnel every write goes through — the real
    filesystem by default, or a seeded
    :class:`repro.kdb.storage.FaultyStorage` so chaos tests can kill
    the store at every write boundary. ``metrics`` binds a
    :class:`repro.obs.Metrics` registry *before* replay, so the
    recovery counters (``kdb.recovery.*``) observe what opening the
    directory had to repair; the same tallies are always available in
    :attr:`recovery_stats`.

    Lock ordering: a collection's write lock is always taken *before*
    the store-wide shard lock (the journal runs inside the collection
    lock; :meth:`compact` acquires in that same order), so background
    compaction cannot deadlock against writers. ADA015 pins this as
    the canonical edge of the project lock-order graph.

    Cross-process safety: opening a directory takes an exclusive pid
    lockfile (``_shards.lock``, created ``O_CREAT|O_EXCL``), so a
    second process gets a clear :class:`StoreError` instead of silently
    interleaving log appends. A lockfile whose recorded pid is dead is
    broken automatically (stale-lock detection); :meth:`close` releases
    it. The stale-break itself is not atomic across processes — two
    openers racing a *dead* holder can both proceed — which is the
    documented limit of a lockfile without fcntl range locks.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        n_shards: int = 8,
        auto_compact_ops: Optional[int] = None,
        storage: Optional[Any] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        super().__init__()
        if n_shards < 1:
            raise StoreError("n_shards must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.n_shards = n_shards
        self.auto_compact_ops = auto_compact_ops
        self.storage = storage if storage is not None else LocalStorage()
        self._files: Dict[str, _ShardFiles] = {}
        self._slock = threading.RLock()
        self._loading = False
        self._closed = False
        self._compactor: Optional[threading.Thread] = None
        self._compactor_stop = threading.Event()
        #: Collections whose on-disk history shows unexpected damage
        #: (quarantined records, sequence gaps, generation mismatches).
        #: Cleared by the compaction that rewrites them.
        self.degraded_collections: Set[str] = set()
        #: What opening this directory had to recover (mirrors the
        #: ``kdb.recovery.*`` counters).
        self.recovery_stats: Dict[str, int] = {
            "torn_tail": 0,
            "quarantined": 0,
            "stale_log": 0,
            "seq_gap": 0,
            "gen_mismatch": 0,
        }
        #: Collection whose journal append failed (ENOSPC...): memory
        #: is ahead of disk, so mutations raise until compact().
        self._journal_failed: Optional[str] = None
        if metrics is not None:
            self.bind_metrics(metrics)
        self._lock_key = str(self.directory.resolve())
        self._has_lockfile = False
        self._has_lockfile = self._acquire_lockfile()
        try:
            if (self.directory / _MANIFEST_NAME).exists():
                self._replay()
            else:
                self._write_manifest()
        except BaseException:
            with self._slock:
                self._release_lockfile()
            raise

    def bind_metrics(self, metrics) -> None:
        """Attach a metrics registry (query plans *and* recovery)."""
        super().bind_metrics(metrics)
        for name in RECOVERY_COUNTERS:
            metrics.counter(name)

    def _meter(self, event: str, count: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"kdb.recovery.{event}").inc(count)

    # -- single-writer lockfile ------------------------------------------
    def _acquire_lockfile(self) -> bool:
        path = self.directory / _LOCKFILE_NAME
        for attempt in (0, 1):
            try:
                # trailing newline = completeness marker; see
                # _read_lock_pid
                self.storage.create_exclusive(
                    path, f"{os.getpid()}\n"
                )
            except FileExistsError:
                with _OWNED_GUARD:
                    open_here = self._lock_key in _OWNED_DIRS
                holder = _read_lock_pid(path)
                if open_here:
                    raise StoreError(
                        f"{self.directory} is already open in this"
                        " process; a sharded store directory has"
                        " exactly one writer"
                    )
                stale = (
                    holder is None
                    or holder == os.getpid()
                    or not _pid_alive(holder)
                )
                if attempt == 0 and stale:
                    with self._slock:
                        self.storage.remove(path)
                    continue
                raise StoreError(
                    f"{self.directory} is locked by pid {holder}"
                    f" ({path.name}); close the other"
                    " ShardedDocumentStore first, or delete the"
                    " lockfile if that process is gone"
                )
            with _OWNED_GUARD:
                _OWNED_DIRS.add(self._lock_key)
            return True
        raise StoreError(  # two stale-break attempts lost the race
            f"could not acquire {path}: another opener raced the"
            " stale-lock takeover"
        )

    def _release_lockfile(self) -> None:
        if not self._has_lockfile:
            return
        self._has_lockfile = False
        with _OWNED_GUARD:
            _OWNED_DIRS.discard(self._lock_key)
        self.storage.remove(self.directory / _LOCKFILE_NAME)

    # -- wiring ----------------------------------------------------------
    def _attach_collection(self, collection: Collection) -> None:
        name = collection.name
        with self._slock:
            if name not in self._files:
                self._files[name] = _ShardFiles(
                    self.directory, name, self.n_shards, self.storage
                )

            def journal(op: str, payload: Any = None) -> None:
                self._on_mutation(name, op, payload)

            collection._journal = journal
            collection._write_guard = self._refuse_if_write_protected
            write_manifest = not self._loading
        # The manifest fsync happens after the shard lock is released
        # (ADA018): attach only needs the lock to publish the files
        # entry and journal hook.
        if write_manifest:
            self._write_manifest()

    def _refuse_if_write_protected(self) -> None:
        """Pre-mutation veto (installed as each collection's
        ``_write_guard``): refuse writes *before* they land in memory.

        The journal-failure check must run here rather than in
        :meth:`_on_mutation` — by journal time the document is already
        applied in memory, and compact() reconciles *from* memory, so a
        refusal raised after the apply would silently persist the op it
        claimed to refuse.
        """
        if self._loading:
            return
        with self._slock:
            if self._closed:
                raise StoreError("sharded store is closed")
            if self._journal_failed is not None:
                raise StoreError(
                    f"journal append for"
                    f" {self._journal_failed!r} failed earlier (disk"
                    " full?); the store is write-protected until"
                    " compact() rewrites a consistent on-disk state"
                )

    def _on_mutation(self, name: str, op: str, payload: Any) -> None:
        if self._loading:
            return
        compact_due = False
        index_changed = False
        with self._slock:
            if self._closed:
                raise StoreError("sharded store is closed")
            files = self._files[name]
            try:
                if op == "put":
                    files.append(
                        shard_of(payload["_id"], self.n_shards),
                        {"op": "put", "doc": payload},
                    )
                elif op == "del":
                    files.append(
                        shard_of(payload, self.n_shards),
                        {"op": "del", "id": payload},
                    )
                elif op == "clear":
                    for shard in range(self.n_shards):
                        files.append(shard, {"op": "clear"})
                elif op == "index":
                    index_changed = True
                else:
                    raise StoreError(f"unknown journal op: {op!r}")
            except OSError as exc:
                # The op is applied in memory but its journal record
                # never landed: write-protect until compact() folds
                # the (ahead) memory state into fresh bases.
                self._journal_failed = name
                raise StoreError(
                    f"journal append for {name!r} failed: {exc};"
                    " in-memory state is ahead of disk — compact()"
                    " to reconcile and re-enable writes"
                ) from exc
            compact_due = (
                not index_changed
                and self.auto_compact_ops is not None
                and files.pending >= self.auto_compact_ops
            )
        # Both follow-ups run outside the shard lock: compacting from
        # inside it would acquire the collection lock *after* the shard
        # lock — the exact inversion of the documented order (ADA015) —
        # and the manifest write fsyncs (ADA018). The journal runs
        # under the collection lock, so compacting here re-enters it in
        # the documented collection-before-store order.
        if index_changed:
            self._write_manifest()
        elif compact_due:
            self.compact(name)

    # -- manifest --------------------------------------------------------
    def _write_manifest(self) -> None:
        with self._slock:
            layout = {
                "version": _MANIFEST_VERSION,
                "n_shards": self.n_shards,
                "collections": {
                    name: {
                        "indexes": [
                            {
                                "path": index.path,
                                "unique": index.unique,
                                "kind": index.kind,
                            }
                            for index in collection._indexes.values()
                        ],
                        "generation": (
                            self._files[name].gen
                            if name in self._files
                            else 0
                        ),
                    }
                    for name, collection in self._collections.items()
                },
            }
            # Writing (and fsyncing) under the shard lock is deliberate:
            # it serialises manifest writers, so the bytes on disk always
            # correspond to the *latest* layout snapshot — two unlocked
            # writers could land snapshots out of order and resurrect a
            # dropped index definition. The manifest is tiny; the held
            # fsync is bounded.
            self.storage.atomic_write(
                self.directory / _MANIFEST_NAME,
                json.dumps(layout, indent=2, sort_keys=True),
            )

    # -- replay ----------------------------------------------------------
    def _replay(self) -> None:
        layout_path = self.directory / _MANIFEST_NAME
        with open(layout_path) as handle:
            layout = json.load(handle)
        if layout.get("version") not in (1, _MANIFEST_VERSION):
            raise StoreError(
                f"unsupported shard manifest version in {layout_path}"
            )
        with self._slock:
            self.n_shards = int(layout["n_shards"])
            self._loading = True
        try:
            for name, info in layout.get("collections", {}).items():
                collection = self.collection(name)
                manifest_gen = int(info.get("generation", 0))
                with self._slock:
                    self._files[name].gen = manifest_gen
                for shard in range(self.n_shards):
                    for document in self._replay_shard(
                        name, shard, manifest_gen
                    ):
                        collection._install(document)
                for index in info.get("indexes", []):
                    collection.create_index(
                        index["path"],
                        unique=index.get("unique", False),
                        kind=index.get("kind", "hash"),
                    )
        finally:
            with self._slock:
                self._loading = False

    def _replay_shard(
        self, name: str, shard: int, manifest_gen: int
    ) -> List[Dict[str, Any]]:
        """Final documents for one shard: base records, then log ops.

        The stale-log baseline is strictly per shard — the manifest
        generation plus *this shard's own* base — never the running
        collection maximum: a crash mid-compaction leaves early shards
        on the new generation while later shards still carry their
        (unfolded!) old-generation logs, and judging those against a
        neighbour's generation would discard real ops.
        """
        files = self._files[name]
        state: Dict[Any, Dict[str, Any]] = {}
        base_gen = manifest_gen
        base = scan_file(files.base_path(shard))
        if base is not None:
            if base.gen is not None:
                base_gen = max(base_gen, base.gen)
            for document in base.records:
                if isinstance(document, dict) and "_id" in document:
                    state[_index_key(document["_id"])] = document
                else:
                    with self._slock:
                        self.load_warnings.append(
                            f"{base.path.name}: skipped"
                            " document without _id"
                        )
            # Bases are written atomically (whole file or nothing), so
            # *any* undecodable base line — even the last — is real
            # damage, never an in-flight append: quarantine it.
            bad = list(base.corrupt)
            if base.torn_tail:
                bad.append(
                    CorruptLine(0, base.torn_raw, "torn base tail")
                )
            if bad:
                self._quarantine(name, shard, base.path, bad)
            self._flag_anomalies(name, base)
        log = scan_file(files.log_path(shard))
        if log is not None:
            log_gen = log.gen if log.gen is not None else base_gen
            if log_gen < base_gen:
                # Crash signature of compaction: bases landed, this
                # log's removal did not. Its ops are already folded
                # into the base — finish the removal.
                self._recover_stale_log(name, files, shard)
            else:
                if log_gen > base_gen:
                    with self._slock:
                        self.recovery_stats["gen_mismatch"] += 1
                        self.degraded_collections.add(name)
                        self.load_warnings.append(
                            f"{log.path.name}: log generation"
                            f" {log_gen} ahead of base generation"
                            f" {base_gen} (base missing or rolled"
                            " back?)"
                        )
                    self._meter("gen_mismatch")
                files.pending += self._replay_log(
                    name, shard, log, state
                )
                if log.torn_tail:
                    # The expected crash signature: the final append
                    # never completed. Truncate it away — silent,
                    # metered, never a warning.
                    self.storage.truncate(log.path, log.keep_bytes)
                    with self._slock:
                        self.recovery_stats["torn_tail"] += 1
                    self._meter("torn_tail")
                files.next_seq[shard] = log.next_seq
                base_gen = max(base_gen, log_gen)
        with self._slock:
            files.gen = max(files.gen, base_gen)
        return list(state.values())

    def _replay_log(
        self,
        name: str,
        shard: int,
        log: ScannedFile,
        state: Dict[Any, Dict[str, Any]],
    ) -> int:
        """Apply one scanned log's ops to ``state``; returns op count."""
        files = self._files[name]
        ops = 0
        for record in log.records:
            op = record.get("op") if isinstance(record, dict) else None
            if op == "put" and isinstance(record.get("doc"), dict):
                document = record["doc"]
                state[_index_key(document.get("_id"))] = document
            elif op == "del":
                state.pop(_index_key(record.get("id")), None)
            elif op == "clear":
                state.clear()
            else:
                # Decoded cleanly (checksum passed, or legacy v1) but
                # is not a log op: preserve and flag, never drop.
                self._quarantine(
                    name,
                    shard,
                    log.path,
                    [
                        CorruptLine(
                            0,
                            json.dumps(
                                record, sort_keys=True, default=str
                            ),
                            "unrecognised log record",
                        )
                    ],
                )
                continue
            ops += 1
        if log.corrupt:
            # A bad line *followed by good ones* is not a torn append:
            # something damaged the middle of the history.
            self._quarantine(name, shard, log.path, log.corrupt)
        self._flag_anomalies(name, log)
        return ops

    def _quarantine(
        self,
        name: str,
        shard: int,
        source: Path,
        lines: List[CorruptLine],
    ) -> None:
        """Preserve damaged lines in a sidecar and flag the collection."""
        files = self._files[name]
        sidecar = files.quarantine_path(shard)
        existing: Set[Any] = set()
        if sidecar.exists():
            with open(sidecar) as handle:
                for line in handle:
                    try:
                        entry = json.loads(line)
                    except json.JSONDecodeError:
                        continue
                    if isinstance(entry, dict):
                        existing.add(
                            (entry.get("source"), entry.get("raw"))
                        )
        fresh = [
            line
            for line in lines
            if (source.name, line.raw) not in existing
        ]
        if fresh:
            handle = self.storage.open_append(sidecar)
            try:
                for line in fresh:
                    handle.write_line(
                        json.dumps(
                            {
                                "source": source.name,
                                "line": line.lineno,
                                "raw": line.raw,
                                "reason": line.reason,
                            },
                            sort_keys=True,
                        )
                    )
            finally:
                handle.close(sync=True)
        with self._slock:
            self.recovery_stats["quarantined"] += len(lines)
            self.degraded_collections.add(name)
            for line in lines:
                self.load_warnings.append(
                    f"{source.name}:{line.lineno}: quarantined corrupt"
                    f" record ({line.reason}) -> {sidecar.name}"
                )
        self._meter("quarantined", len(lines))

    def _flag_anomalies(self, name: str, scan: ScannedFile) -> None:
        """Sequence gaps / generation switches: damage, not crashes."""
        if not scan.anomalies:
            return
        with self._slock:
            self.recovery_stats["seq_gap"] += len(scan.anomalies)
            self.degraded_collections.add(name)
            for anomaly in scan.anomalies:
                self.load_warnings.append(
                    f"{scan.path.name}: {anomaly}"
                )
        self._meter("seq_gap", len(scan.anomalies))

    def _recover_stale_log(
        self, name: str, files: _ShardFiles, shard: int
    ) -> None:
        with self._slock:
            self.storage.remove(files.log_path(shard))
            self.recovery_stats["stale_log"] += 1
        self._meter("stale_log")

    # -- compaction ------------------------------------------------------
    def compact(self, name: Optional[str] = None) -> None:
        """Fold append logs into fresh base files.

        With ``name`` compacts one collection, otherwise all. For each
        collection the write lock is held while the in-memory state is
        partitioned and written: new bases land atomically first, logs
        are removed after — a crash in between leaves logs that are
        recognised as stale (their generation trails the new bases')
        and removed on the next open. Compaction bumps the collection's
        generation, rewrites every base in v2 framing (upgrading any
        pre-checksum files), clears a degraded flag (the damaged
        history is preserved in its quarantine sidecar), and lifts a
        journal-failure write-protection once disk again reflects
        memory.
        """
        names = [name] if name is not None else list(self._collections)
        for collection_name in names:
            collection = self.existing(collection_name)
            with collection._lock:
                with self._slock:
                    if self._closed:
                        raise StoreError("sharded store is closed")
                    files = self._files[collection_name]
                    new_gen = files.gen + 1
                    partitions: Dict[int, List[str]] = {
                        shard: [header_line(new_gen)]
                        for shard in range(self.n_shards)
                    }
                    for document in collection._documents.values():
                        shard = shard_of(document["_id"], self.n_shards)
                        partitions[shard].append(
                            frame_line(
                                document,
                                len(partitions[shard]),
                                new_gen,
                            )
                        )
                    # Crash-safety requires this ordering to happen
                    # with writers excluded: bases land (fsynced)
                    # strictly before their logs are removed, against
                    # a snapshot no mutation can move. Compaction is
                    # the rare path; writers pay only during it.
                    for shard, lines in partitions.items():
                        self.storage.atomic_write(
                            files.base_path(shard),
                            "".join(line + "\n" for line in lines),
                        )
                    files.remove_logs()
                    files.gen = new_gen
                    self.degraded_collections.discard(collection_name)
                    if self._journal_failed == collection_name:
                        self._journal_failed = None
        self._write_manifest()

    def pending_ops(self, name: Optional[str] = None) -> int:
        """Log records appended since the last compaction."""
        with self._slock:
            if name is not None:
                return self._files[name].pending
            return sum(files.pending for files in self._files.values())

    def stats(self) -> Dict[str, Dict[str, Any]]:
        """Per-collection document counts, shard layout and disk usage."""
        out: Dict[str, Dict[str, Any]] = {}
        with self._slock:
            for name, collection in sorted(self._collections.items()):
                files = self._files[name]
                entry: Dict[str, Any] = {
                    "documents": len(collection),
                    "n_shards": self.n_shards,
                    "pending_ops": files.pending,
                    "indexes": collection.index_names(),
                    "generation": files.gen,
                    "degraded": name in self.degraded_collections,
                }
                entry.update(files.disk_bytes())
                out[name] = entry
        return out

    # -- background compaction -------------------------------------------
    def start_background_compaction(
        self, interval_s: float = 30.0, min_pending: int = 1
    ) -> None:
        """Compact every ``interval_s`` seconds (when at least
        ``min_pending`` log records accumulated) on a daemon thread."""
        with self._slock:
            if self._closed:
                raise StoreError("sharded store is closed")
            if (
                self._compactor is not None
                and self._compactor.is_alive()
            ):
                return
            self._compactor_stop.clear()

            def run() -> None:
                while not self._compactor_stop.wait(interval_s):
                    if self.pending_ops() >= min_pending:
                        self.compact()

            self._compactor = threading.Thread(
                target=run, name="kdb-compactor", daemon=True
            )
            self._compactor.start()

    def stop_background_compaction(
        self, timeout_s: float = 5.0
    ) -> None:
        """Stop and join the background compaction thread (if running).

        The stop event wakes the compactor out of its interval wait;
        the join is bounded by ``timeout_s`` and happens outside the
        shard lock — an in-flight compaction needs that lock to finish.
        """
        with self._slock:
            self._compactor_stop.set()
            thread, self._compactor = self._compactor, None
        if thread is not None:
            thread.join(timeout=timeout_s)

    # -- lifecycle -------------------------------------------------------
    def drop_collection(self, name: str) -> None:
        """Drop a collection and delete its partition files."""
        super().drop_collection(name)
        with self._slock:
            files = self._files.pop(name, None)
            self.degraded_collections.discard(name)
        if files is not None:
            files.remove_all()
        self._write_manifest()

    def close(self) -> None:
        """Stop background compaction, fsync and release log handles.

        Joins the compactor thread first (bounded), marks the store
        closed under the shard lock — after which every journal append
        and compaction attempt raises — then fsyncs and closes the log
        handles outside it, and releases the pid lockfile. Idempotent,
        and deliberately does *not* compact: the logs are already
        durable, and read-only tooling (``repro kdb stats``) must be
        able to open and close a store without rewriting it.
        """
        if self._closed:
            return
        self.stop_background_compaction()
        with self._slock:
            if self._closed:
                return
            self._closed = True
            file_list = list(self._files.values())
            self._release_lockfile()
        # Safe outside the lock: _closed is set, so no journal append
        # can race these handles, and fsync under a hot lock is the
        # ADA018 anti-pattern.
        for files in file_list:
            files.close_handles(sync=True)

    def simulate_crash(self) -> None:
        """Abandon the store the way a dying process would (test API).

        Forgets the in-process ownership and drops the append handles
        *without* writing anything: the pid lockfile stays on disk
        (the next opener must prove it stale), logs keep whatever
        bytes reached the filesystem, and no fsync or compaction
        runs. The crash-point sweep uses this after
        :class:`repro.kdb.storage.SimulatedCrash` fires, so the same
        process can immediately reopen the directory and exercise
        recovery.
        """
        self.stop_background_compaction()
        with self._slock:
            self._closed = True
            self._has_lockfile = False
            file_list = list(self._files.values())
        with _OWNED_GUARD:
            _OWNED_DIRS.discard(self._lock_key)
        for files in file_list:
            for handle in list(files._handles.values()):
                try:
                    handle.close()
                except Exception:  # torn handles may already be dead
                    continue
            files._handles.clear()

    def __enter__(self) -> "ShardedDocumentStore":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
