"""Knowledge Base (K-DB) and its embedded document store."""

from repro.kdb.documentstore import Collection, Cursor, DocumentStore
from repro.kdb.kdb import (
    COLLECTIONS,
    DEGREES,
    DESCRIPTORS,
    DISCOVERED_KNOWLEDGE,
    FEEDBACK,
    RAW_DATASETS,
    SELECTED_KNOWLEDGE,
    TRANSFORMED_DATASETS,
    DegreePredictor,
    KnowledgeBase,
)

__all__ = [
    "COLLECTIONS",
    "Collection",
    "Cursor",
    "DEGREES",
    "DESCRIPTORS",
    "DISCOVERED_KNOWLEDGE",
    "DegreePredictor",
    "DocumentStore",
    "FEEDBACK",
    "KnowledgeBase",
    "RAW_DATASETS",
    "SELECTED_KNOWLEDGE",
    "TRANSFORMED_DATASETS",
]
