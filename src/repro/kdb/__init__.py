"""Knowledge Base (K-DB) and its embedded document store."""

from repro.kdb.documentstore import Collection, Cursor, DocumentStore
from repro.kdb.kdb import (
    COLLECTIONS,
    DEGREES,
    DESCRIPTORS,
    DISCOVERED_KNOWLEDGE,
    FEEDBACK,
    RAW_DATASETS,
    SELECTED_KNOWLEDGE,
    TRANSFORMED_DATASETS,
    DegreePredictor,
    KnowledgeBase,
)
from repro.kdb.planner import QueryPlan, plan_query
from repro.kdb.shards import ShardedDocumentStore, shard_of

__all__ = [
    "COLLECTIONS",
    "Collection",
    "Cursor",
    "DEGREES",
    "DESCRIPTORS",
    "DISCOVERED_KNOWLEDGE",
    "DegreePredictor",
    "DocumentStore",
    "FEEDBACK",
    "KnowledgeBase",
    "QueryPlan",
    "RAW_DATASETS",
    "SELECTED_KNOWLEDGE",
    "ShardedDocumentStore",
    "TRANSFORMED_DATASETS",
    "plan_query",
    "shard_of",
]
