"""Knowledge Base (K-DB) and its embedded document store."""

from repro.kdb.documentstore import Collection, Cursor, DocumentStore
from repro.kdb.kdb import (
    COLLECTIONS,
    DEGREES,
    DESCRIPTORS,
    DISCOVERED_KNOWLEDGE,
    FEEDBACK,
    RAW_DATASETS,
    SELECTED_KNOWLEDGE,
    TRANSFORMED_DATASETS,
    DegreePredictor,
    KnowledgeBase,
)
from repro.kdb.fsck import FsckIssue, FsckReport, fsck
from repro.kdb.planner import QueryPlan, plan_query
from repro.kdb.shards import ShardedDocumentStore, shard_of
from repro.kdb.storage import (
    FaultyStorage,
    LocalStorage,
    SimulatedCrash,
)

__all__ = [
    "COLLECTIONS",
    "Collection",
    "Cursor",
    "DEGREES",
    "DESCRIPTORS",
    "DISCOVERED_KNOWLEDGE",
    "DegreePredictor",
    "DocumentStore",
    "FEEDBACK",
    "FaultyStorage",
    "FsckIssue",
    "FsckReport",
    "KnowledgeBase",
    "LocalStorage",
    "QueryPlan",
    "RAW_DATASETS",
    "SELECTED_KNOWLEDGE",
    "ShardedDocumentStore",
    "SimulatedCrash",
    "TRANSFORMED_DATASETS",
    "fsck",
    "plan_query",
    "shard_of",
]
