"""Telemetry for the ADA-HEALTH engine: tracing, metrics, manifests.

Dependency-free observability subsystem::

    from repro.obs import Tracer, JsonlSink, Metrics

    tracer = Tracer(sinks=[JsonlSink("trace.jsonl")])
    metrics = Metrics()
    config = EngineConfig(tracer=tracer, metrics=metrics)
    ADAHealth(config=config).analyze(log)

Three layers:

* :class:`Tracer` — nested spans (wall/CPU timings, exception capture)
  emitted to in-memory, JSONL-file or stdlib-``logging`` sinks;
* :class:`Metrics` — a registry of counters, gauges and fixed-bucket
  histograms, snapshot-able to one dict;
* :class:`RunManifestBuilder` — the per-analysis execution record the
  engine persists into the K-DB ``runs`` collection.

Plus an opt-in diagnostics layer: :class:`LockOrderTracker` /
:class:`TrackedLock` (``repro.obs.locktrack``) record runtime lock
acquisition orders so the chaos suite can check them against the
static lock-order graph adalint infers (ADA015).

The default everywhere is :data:`NULL_TRACER`, a no-op with near-zero
overhead, so instrumented hot paths cost nothing unless telemetry is
switched on.
"""

from repro.obs.manifest import (
    KNOWN_MANIFEST_SCHEMAS,
    MANIFEST_FIELDS,
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V1,
    RESILIENCE_FIELDS,
    RUNS_COLLECTION,
    ManifestError,
    RunManifestBuilder,
    validate_manifest,
)
from repro.obs.locktrack import (
    LockOrderTracker,
    TrackedLock,
    track_store_locks,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    PAYLOAD_BUCKETS,
    QUERY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    Metrics,
)
from repro.obs.tracer import (
    NULL_TRACER,
    InMemorySink,
    JsonlSink,
    LoggingSink,
    NullTracer,
    Span,
    Tracer,
    read_spans,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "LoggingSink",
    "KNOWN_MANIFEST_SCHEMAS",
    "LockOrderTracker",
    "MANIFEST_FIELDS",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V1",
    "RESILIENCE_FIELDS",
    "ManifestError",
    "Metrics",
    "NULL_TRACER",
    "NullTracer",
    "PAYLOAD_BUCKETS",
    "QUERY_BUCKETS",
    "RUNS_COLLECTION",
    "RunManifestBuilder",
    "Span",
    "TrackedLock",
    "Tracer",
    "read_spans",
    "track_store_locks",
    "validate_manifest",
]
