"""Opt-in runtime lock-order tracking: the dynamic half of ADA015.

The static analyser (``repro.lint.rules_concurrency``) infers a
project-wide lock-order graph from the source. This module records the
orders that *actually happen* at runtime so a chaos test can assert
consistency between the two: every edge observed live must exist in
the static graph (a runtime-only edge means the analyser has a blind
spot — or the code grew a path the lint gate somehow missed).

Usage is deliberately surgical — wrap the locks you care about, keyed
by the same canonical tokens the static graph uses::

    tracker = LockOrderTracker()
    store._slock = TrackedLock(
        "repro.kdb.shards:ShardedDocumentStore._slock",
        tracker,
        store._slock,
    )
    ...
    assert tracker.edges() <= static_edges

Nothing in the engine imports this module on a hot path; it exists for
tests and debugging sessions. Reentrant re-acquisitions of a lock
already held by the same thread are not recorded as edges (an RLock
nesting on itself carries no ordering), matching the static model.
"""

from __future__ import annotations

import threading
from typing import FrozenSet, List, Optional, Set, Tuple


class LockOrderTracker:
    """Records held-before pairs across all :class:`TrackedLock` users.

    Thread-safe: each thread keeps its own held-stack in thread-local
    storage; the edge set is guarded by the tracker's own internal
    lock. The internal lock is only ever taken with tracked locks
    already held (never the reverse), so the tracker cannot introduce
    an inversion of its own.
    """

    def __init__(self) -> None:
        self._local = threading.local()
        self._edges_lock = threading.Lock()
        self._edges: Set[Tuple[str, str]] = set()
        self._trace: List[Tuple[str, str]] = []

    # -- called by TrackedLock -----------------------------------------
    def _held_stack(self) -> List[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def note_acquired(self, token: str) -> None:
        stack = self._held_stack()
        if token in stack:
            stack.append(token)  # reentrant: keep depth, no edges
            return
        new_edges = [
            (held, token) for held in dict.fromkeys(stack)
        ]
        stack.append(token)
        if new_edges:
            with self._edges_lock:
                for edge in new_edges:
                    if edge not in self._edges:
                        self._edges.add(edge)
                        self._trace.append(edge)

    def note_released(self, token: str) -> None:
        stack = self._held_stack()
        # Release the innermost occurrence: correct for the RLock
        # discipline `with` enforces, tolerant of hand-called release.
        for index in range(len(stack) - 1, -1, -1):
            if stack[index] == token:
                del stack[index]
                return

    # -- inspection ----------------------------------------------------
    def edges(self) -> FrozenSet[Tuple[str, str]]:
        """Every distinct (held, acquired) pair observed so far."""
        with self._edges_lock:
            return frozenset(self._edges)

    def trace(self) -> List[Tuple[str, str]]:
        """Edges in first-observation order (for failure messages)."""
        with self._edges_lock:
            return list(self._trace)

    def held_now(self) -> Tuple[str, ...]:
        """Tokens the calling thread holds, outermost first."""
        return tuple(self._held_stack())


class TrackedLock:
    """A lock wrapper that reports acquisition order to a tracker.

    Wraps any lock-like object (``threading.Lock``/``RLock`` or
    compatible); a fresh ``RLock`` is created when none is given. The
    wrapper is intentionally *not* pickled into workers — tracking is
    per-process by design.
    """

    def __init__(
        self,
        token: str,
        tracker: LockOrderTracker,
        lock: Optional[object] = None,
    ) -> None:
        self.token = token
        self.tracker = tracker
        self._lock = lock if lock is not None else threading.RLock()

    def acquire(self, blocking: bool = True, timeout: float = -1):
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self.tracker.note_acquired(self.token)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self.tracker.note_released(self.token)

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()


def track_store_locks(
    store, tracker: Optional[LockOrderTracker] = None
) -> LockOrderTracker:
    """Instrument a :class:`ShardedDocumentStore` and its collections.

    Replaces the store-wide shard lock and every *currently attached*
    collection lock with :class:`TrackedLock` wrappers, keyed by the
    canonical tokens the static lock-order graph uses. Collections
    created after this call are not tracked — instrument last, or call
    again. Returns the tracker (a fresh one unless supplied).
    """
    tracker = tracker or LockOrderTracker()
    store._slock = TrackedLock(
        "repro.kdb.shards:ShardedDocumentStore._slock",
        tracker,
        store._slock,
    )
    for collection in store._collections.values():
        collection._lock = TrackedLock(
            "repro.kdb.documentstore:Collection._lock",
            tracker,
            collection._lock,
        )
    return tracker
