"""Execution tracing: nested spans with pluggable sinks.

The ADA-HEALTH engine is meant to *learn from its own runs*, yet a
black-box `analyze()` gives the K-DB nothing to learn from about where
the time went. This module provides the span layer of the telemetry
subsystem: a :class:`Tracer` whose ``span(name, **attrs)`` context
manager measures monotonic wall time and process CPU time, captures
exceptions without swallowing them, and emits one flat document per
finished span (``parent_id`` links reconstruct the nesting) to any
number of sinks:

* :class:`InMemorySink` — a list of span documents (tests, manifests);
* :class:`JsonlSink` — one JSON object per line, append-mode (the CLI's
  ``--trace FILE``);
* :class:`LoggingSink` — forwards to a stdlib :mod:`logging` logger.

Everything is dependency-free and picklable: tracers ride inside the
engine when goal pipelines fan out to worker processes, so sinks drop
their unpicklable state (open handles, thread-locals) on pickling and
recreate it lazily.

The default tracer everywhere is :data:`NULL_TRACER`, a no-op whose
``span()`` returns a shared reusable context manager — near-zero
overhead, so instrumentation can stay unconditionally in hot paths.
"""

from __future__ import annotations

import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

Document = Dict[str, Any]


class Span:
    """One timed, attributed unit of work (also its context manager).

    Spans are created through :meth:`Tracer.span`; entering starts the
    clocks, exiting stops them, records any in-flight exception as
    ``status="error"`` (the exception still propagates) and emits the
    finished document to the tracer's sinks.
    """

    __slots__ = (
        "name",
        "attrs",
        "trace_id",
        "span_id",
        "parent_id",
        "depth",
        "started_at",
        "wall_s",
        "cpu_s",
        "status",
        "error",
        "_tracer",
        "_t0",
        "_c0",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.attrs = attrs
        self._tracer = tracer
        self.trace_id: Optional[int] = None
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.started_at = 0.0
        self.wall_s = 0.0
        self.cpu_s = 0.0
        self.status = "ok"
        self.error: Optional[str] = None
        self._t0 = 0.0
        self._c0 = 0.0

    # -- attributes ------------------------------------------------------
    def set(self, **attrs: Any) -> "Span":
        """Attach (or overwrite) attributes on the live span."""
        self.attrs.update(attrs)
        return self

    # -- context management ----------------------------------------------
    def __enter__(self) -> "Span":
        self._tracer._open(self)
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.wall_s = time.perf_counter() - self._t0
        self.cpu_s = time.process_time() - self._c0
        if exc_type is not None:
            self.status = "error"
            self.error = f"{exc_type.__name__}: {exc}"
        self._tracer._close(self)
        return False  # never swallow

    def to_document(self) -> Document:
        """The flat span document emitted to sinks."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "started_at": self.started_at,
            "wall_s": self.wall_s,
            "cpu_s": self.cpu_s,
            "status": self.status,
            "error": self.error,
            "attrs": dict(self.attrs),
        }


class _NullSpan:
    """Shared do-nothing span: the cost of the no-op path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The default tracer: every operation is a near-zero no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def record_span(
        self, name: str, wall_s: float, **attrs: Any
    ) -> None:
        return None

    def finished(self) -> List[Document]:
        return []


#: Module-level singleton used wherever no tracer was configured.
NULL_TRACER = NullTracer()


class InMemorySink:
    """Collects span documents in a list (``.spans``)."""

    def __init__(self) -> None:
        self.spans: List[Document] = []

    def emit(self, document: Document) -> None:
        self.spans.append(document)

    def clear(self) -> None:
        self.spans.clear()


class JsonlSink:
    """Appends one JSON object per span to a file.

    The handle is opened lazily and dropped on pickling, so a tracer
    carrying this sink can cross a process boundary; workers re-open the
    file in append mode and their whole-line writes interleave safely.

    With ``durable=True`` every span is additionally ``fsync``'d on
    emit, so a manifest survives the process being killed right after
    the span closed — the run-manifest discipline of PR 10. The cost is
    one fsync per span; leave it off for high-frequency tracing. Either
    way a kill *mid*-append can leave a torn final line, which
    :func:`read_spans` tolerates.
    """

    def __init__(
        self, path: Union[str, Path], durable: bool = False
    ) -> None:
        self.path = Path(path)
        self.durable = durable
        self._handle = None

    def emit(self, document: Document) -> None:
        if self._handle is None:
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(document) + "\n")
        self._handle.flush()
        if self.durable:
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __getstate__(self) -> Dict[str, Any]:
        return {"path": self.path, "durable": self.durable}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.path = state["path"]
        self.durable = state.get("durable", False)
        self._handle = None


def read_spans(path: Union[str, Path]) -> List[Document]:
    """Read a :class:`JsonlSink` file back, tolerating a torn tail.

    A process killed mid-append leaves a final line that is not valid
    JSON; that line (and only that line) is dropped silently — the
    same torn-tail policy the K-DB shard logs follow. An undecodable
    line *followed by* valid spans is real damage and raises
    ``ValueError`` rather than silently shortening the record.
    """
    spans: List[Document] = []
    pending: Optional[int] = None
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            if pending is not None:
                raise ValueError(
                    f"{path}:{pending}: corrupt span record is not"
                    " the final line (damaged manifest?)"
                )
            try:
                spans.append(json.loads(line))
            except json.JSONDecodeError:
                pending = lineno
    return spans


class LoggingSink:
    """Forwards spans to a stdlib logger (by name, so it pickles)."""

    def __init__(
        self, logger: str = "repro.obs", level: int = logging.INFO
    ) -> None:
        self.logger_name = logger
        self.level = level

    def emit(self, document: Document) -> None:
        logging.getLogger(self.logger_name).log(
            self.level,
            "span %s wall=%.6fs cpu=%.6fs status=%s attrs=%s",
            document["name"],
            document["wall_s"],
            document["cpu_s"],
            document["status"],
            document["attrs"],
        )


class Tracer:
    """Produces nested spans and emits them to sinks on completion.

    Parameters
    ----------
    sinks:
        Sink objects with an ``emit(document)`` method. Defaults to a
        single :class:`InMemorySink` (inspect via :meth:`finished`).

    Nesting is tracked per thread: a span opened while another is live
    on the same thread becomes its child (``parent_id``/``depth``).
    Spans opened from worker *threads* start fresh traces of their own;
    worker *processes* get a pickled copy of the tracer whose sinks
    re-materialise on first use.
    """

    enabled = True

    def __init__(self, sinks: Optional[Sequence[Any]] = None) -> None:
        self.sinks: List[Any] = (
            list(sinks) if sinks is not None else [InMemorySink()]
        )
        self._ids = 0
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- pickling --------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        return {"sinks": self.sinks, "_ids": self._ids}

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.sinks = state["sinks"]
        self._ids = state["_ids"]
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- span lifecycle --------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        """A context manager measuring one named unit of work."""
        return Span(self, name, attrs)

    def record_span(
        self, name: str, wall_s: float, **attrs: Any
    ) -> Document:
        """Emit an already-measured span (e.g. timings reported back by
        worker processes), parented to the current live span."""
        span = Span(self, name, attrs)
        span.span_id = self._next_id()
        parent = self._stack()[-1] if self._stack() else None
        if parent is not None:
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
            span.depth = parent.depth + 1
        else:
            span.trace_id = span.span_id
        span.started_at = time.time() - wall_s
        span.wall_s = float(wall_s)
        document = span.to_document()
        self._emit(document)
        return document

    def finished(self) -> List[Document]:
        """Span documents collected by in-memory sinks (emission order:
        children before their parents)."""
        spans: List[Document] = []
        for sink in self.sinks:
            if isinstance(sink, InMemorySink):
                spans.extend(sink.spans)
        return spans

    # -- internals -------------------------------------------------------
    def _next_id(self) -> int:
        with self._lock:
            self._ids += 1
            return self._ids

    def _stack(self) -> List[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id()
        stack = self._stack()
        if stack:
            parent = stack[-1]
            span.parent_id = parent.span_id
            span.trace_id = parent.trace_id
            span.depth = parent.depth + 1
        else:
            span.trace_id = span.span_id
        stack.append(span)

    def _close(self, span: Span) -> None:
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # defensive: unwound out of order
            stack.remove(span)
        self._emit(span.to_document())

    def _emit(self, document: Document) -> None:
        for sink in self.sinks:
            sink.emit(document)
