"""Per-analysis run manifests.

The paper's self-learning loop needs the K-DB to remember not just the
*knowledge* each analysis produced but the *execution* that produced it
— which goals were attempted, with which algorithms and parameters,
what was served from cache, how long each goal took, and how many
worker tasks failed. A run manifest is that record: one JSON document
per ``ADAHealth.analyze`` call, persisted into the K-DB ``runs``
collection (see :meth:`repro.kdb.KnowledgeBase.record_run`) where
past-experience lookups can query it with ordinary store queries.

This module is dependency-free: the builder only assembles plain dicts;
persistence belongs to the K-DB layer.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

#: Name of the K-DB collection holding run manifests.
RUNS_COLLECTION = "runs"

#: Schema tag of pre-resilience manifests (still accepted on read).
MANIFEST_SCHEMA_V1 = "ada-health/run-manifest/v1"

#: Schema tag stamped on every new manifest (bump on breaking changes).
#: v2 adds the ``resilience`` section and the ``"degraded"`` status.
MANIFEST_SCHEMA = "ada-health/run-manifest/v2"

#: Every schema ``validate_manifest`` accepts.
KNOWN_MANIFEST_SCHEMAS = (MANIFEST_SCHEMA_V1, MANIFEST_SCHEMA)

#: Top-level fields every well-formed (current-schema) manifest must
#: carry; v1 documents predate ``resilience`` and are exempt from it.
MANIFEST_FIELDS = (
    "schema",
    "status",
    "dataset",
    "user",
    "seed",
    "started_at",
    "finished_at",
    "wall_s",
    "goals_assessed",
    "goals",
    "cache",
    "executor",
    "metrics",
    "n_items",
    "resilience",
)

#: Keys of the manifest's ``resilience`` section (v2+).
RESILIENCE_FIELDS = (
    "retries",
    "timeouts",
    "worker_crashes",
    "fallbacks",
    "faults_injected",
    "breaker",
    "degraded_goals",
)


class ManifestError(ValueError):
    """A manifest document failed validation."""


def validate_manifest(document: Dict[str, Any]) -> Dict[str, Any]:
    """Check a manifest is well-formed; returns it (raises otherwise).

    Accepts both manifest schemas: v1 (no ``resilience`` section) and
    v2 (``resilience`` required, ``"degraded"`` status allowed).
    """
    schema = document.get("schema")
    if schema not in KNOWN_MANIFEST_SCHEMAS:
        raise ManifestError(f"unknown manifest schema {schema!r}")
    required = [
        name
        for name in MANIFEST_FIELDS
        if not (schema == MANIFEST_SCHEMA_V1 and name == "resilience")
    ]
    missing = [f for f in required if f not in document]
    if missing:
        raise ManifestError(f"manifest missing fields: {missing}")
    if document["status"] not in ("completed", "degraded", "failed"):
        raise ManifestError(
            f"unknown manifest status {document['status']!r}"
        )
    if not isinstance(document["goals"], list):
        raise ManifestError("manifest goals must be a list")
    for goal in document["goals"]:
        for field in ("name", "status", "wall_s"):
            if field not in goal:
                raise ManifestError(
                    f"goal record missing {field!r}: {goal}"
                )
    if schema != MANIFEST_SCHEMA_V1:
        resilience = document["resilience"]
        if not isinstance(resilience, dict):
            raise ManifestError("manifest resilience must be a dict")
        absent = [f for f in RESILIENCE_FIELDS if f not in resilience]
        if absent:
            raise ManifestError(
                f"resilience section missing fields: {absent}"
            )
    return document


class RunManifestBuilder:
    """Accumulates one analysis run's execution record.

    The engine drives it through :meth:`add_goal` /
    :meth:`record_cache` / :meth:`record_executor`, then calls
    :meth:`finish` (or :meth:`fail`) to obtain the persistable
    document.
    """

    def __init__(
        self,
        dataset_fingerprint: str,
        dataset_name: str,
        dataset_id: Any = None,
        user: str = "anonymous",
        seed: int = 0,
    ) -> None:
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.dataset = {
            "id": dataset_id,
            "name": dataset_name,
            "fingerprint": dataset_fingerprint,
        }
        self.user = user
        self.seed = seed
        self.goals_assessed: List[Dict[str, Any]] = []
        self.goals: List[Dict[str, Any]] = []
        self.cache: Dict[str, Any] = {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "stores": 0,
        }
        self.executor: Dict[str, Any] = {
            "backend": "serial",
            "workers": 1,
            "task_failures": 0,
        }
        self.resilience: Dict[str, Any] = {
            "retries": 0,
            "timeouts": 0,
            "worker_crashes": 0,
            "fallbacks": 0,
            "faults_injected": 0,
            "breaker": None,
            "degraded_goals": [],
        }

    # -- accumulation ----------------------------------------------------
    def assess_goal(self, name: str, viable: bool, reason: str) -> None:
        """Record one end-goal feasibility assessment."""
        self.goals_assessed.append(
            {"name": name, "viable": bool(viable), "reason": reason}
        )

    def add_goal(
        self,
        name: str,
        wall_s: float,
        status: str = "completed",
        n_items: int = 0,
        cached: bool = False,
        algorithms: Optional[List[str]] = None,
        params: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Record one attempted goal pipeline."""
        self.goals.append(
            {
                "name": name,
                "status": status,
                "wall_s": float(wall_s),
                "n_items": int(n_items),
                "cached": bool(cached),
                "algorithms": sorted(algorithms or []),
                "params": params or {},
                "error": error,
            }
        )

    def record_cache(
        self,
        enabled: bool,
        hits: int,
        misses: int,
        stores: int,
        cert_misses: int = 0,
    ) -> None:
        """Record the analysis cache's traffic for this run.

        ``cert_misses`` counts lookups rejected because the entry was
        produced under a different purity-certificate fingerprint
        (they are also included in ``misses``).
        """
        self.cache = {
            "enabled": bool(enabled),
            "hits": int(hits),
            "misses": int(misses),
            "stores": int(stores),
            "cert_misses": int(cert_misses),
        }

    def record_executor(
        self, backend: str, workers: int, task_failures: int = 0
    ) -> None:
        """Record the fan-out backend and its failure count."""
        self.executor = {
            "backend": backend,
            "workers": int(workers),
            "task_failures": int(task_failures),
        }

    def record_resilience(
        self,
        retries: int = 0,
        timeouts: int = 0,
        worker_crashes: int = 0,
        fallbacks: int = 0,
        faults_injected: int = 0,
        breaker: Optional[Dict[str, Any]] = None,
        degraded_goals: Optional[List[str]] = None,
    ) -> None:
        """Record this run's fault-tolerance activity (v2 section)."""
        self.resilience = {
            "retries": int(retries),
            "timeouts": int(timeouts),
            "worker_crashes": int(worker_crashes),
            "fallbacks": int(fallbacks),
            "faults_injected": int(faults_injected),
            "breaker": dict(breaker) if breaker is not None else None,
            "degraded_goals": list(degraded_goals or []),
        }

    # -- completion ------------------------------------------------------
    def finish(
        self,
        n_items: int,
        metrics_snapshot: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The manifest of a completed run.

        A run that finished with failed goal records (degraded-mode
        analysis) is stamped ``"degraded"`` rather than
        ``"completed"``, with the failed goal names listed under
        ``resilience["degraded_goals"]``.
        """
        return self._document(
            "completed", n_items, metrics_snapshot, error=None
        )

    def fail(
        self,
        error: str,
        metrics_snapshot: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The manifest of a run that raised."""
        return self._document("failed", 0, metrics_snapshot, error=error)

    def _document(
        self,
        status: str,
        n_items: int,
        metrics_snapshot: Optional[Dict[str, Any]],
        error: Optional[str],
    ) -> Dict[str, Any]:
        resilience = dict(self.resilience)
        failed = [
            goal["name"]
            for goal in self.goals
            if goal.get("status") == "failed"
        ]
        degraded = list(resilience.get("degraded_goals") or [])
        degraded.extend(
            name for name in failed if name not in degraded
        )
        resilience["degraded_goals"] = degraded
        if status == "completed" and degraded:
            status = "degraded"
        document = {
            "schema": MANIFEST_SCHEMA,
            "status": status,
            "dataset": dict(self.dataset),
            "user": self.user,
            "seed": self.seed,
            "started_at": self.started_at,
            "finished_at": time.time(),
            "wall_s": time.perf_counter() - self._t0,
            "goals_assessed": list(self.goals_assessed),
            "goals": list(self.goals),
            "cache": dict(self.cache),
            "executor": dict(self.executor),
            "metrics": metrics_snapshot or {},
            "n_items": int(n_items),
            "resilience": resilience,
            "error": error,
        }
        return validate_manifest(document)
