"""Per-analysis run manifests.

The paper's self-learning loop needs the K-DB to remember not just the
*knowledge* each analysis produced but the *execution* that produced it
— which goals were attempted, with which algorithms and parameters,
what was served from cache, how long each goal took, and how many
worker tasks failed. A run manifest is that record: one JSON document
per ``ADAHealth.analyze`` call, persisted into the K-DB ``runs``
collection (see :meth:`repro.kdb.KnowledgeBase.record_run`) where
past-experience lookups can query it with ordinary store queries.

This module is dependency-free: the builder only assembles plain dicts;
persistence belongs to the K-DB layer.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

#: Name of the K-DB collection holding run manifests.
RUNS_COLLECTION = "runs"

#: Schema tag stamped on every manifest (bump on breaking changes).
MANIFEST_SCHEMA = "ada-health/run-manifest/v1"

#: Top-level fields every well-formed manifest must carry.
MANIFEST_FIELDS = (
    "schema",
    "status",
    "dataset",
    "user",
    "seed",
    "started_at",
    "finished_at",
    "wall_s",
    "goals_assessed",
    "goals",
    "cache",
    "executor",
    "metrics",
    "n_items",
)


class ManifestError(ValueError):
    """A manifest document failed validation."""


def validate_manifest(document: Dict[str, Any]) -> Dict[str, Any]:
    """Check a manifest is well-formed; returns it (raises otherwise)."""
    missing = [f for f in MANIFEST_FIELDS if f not in document]
    if missing:
        raise ManifestError(f"manifest missing fields: {missing}")
    if document["schema"] != MANIFEST_SCHEMA:
        raise ManifestError(
            f"unknown manifest schema {document['schema']!r}"
        )
    if document["status"] not in ("completed", "failed"):
        raise ManifestError(
            f"unknown manifest status {document['status']!r}"
        )
    if not isinstance(document["goals"], list):
        raise ManifestError("manifest goals must be a list")
    for goal in document["goals"]:
        for field in ("name", "status", "wall_s"):
            if field not in goal:
                raise ManifestError(
                    f"goal record missing {field!r}: {goal}"
                )
    return document


class RunManifestBuilder:
    """Accumulates one analysis run's execution record.

    The engine drives it through :meth:`add_goal` /
    :meth:`record_cache` / :meth:`record_executor`, then calls
    :meth:`finish` (or :meth:`fail`) to obtain the persistable
    document.
    """

    def __init__(
        self,
        dataset_fingerprint: str,
        dataset_name: str,
        dataset_id: Any = None,
        user: str = "anonymous",
        seed: int = 0,
    ) -> None:
        self.started_at = time.time()
        self._t0 = time.perf_counter()
        self.dataset = {
            "id": dataset_id,
            "name": dataset_name,
            "fingerprint": dataset_fingerprint,
        }
        self.user = user
        self.seed = seed
        self.goals_assessed: List[Dict[str, Any]] = []
        self.goals: List[Dict[str, Any]] = []
        self.cache: Dict[str, Any] = {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "stores": 0,
        }
        self.executor: Dict[str, Any] = {
            "backend": "serial",
            "workers": 1,
            "task_failures": 0,
        }

    # -- accumulation ----------------------------------------------------
    def assess_goal(self, name: str, viable: bool, reason: str) -> None:
        """Record one end-goal feasibility assessment."""
        self.goals_assessed.append(
            {"name": name, "viable": bool(viable), "reason": reason}
        )

    def add_goal(
        self,
        name: str,
        wall_s: float,
        status: str = "completed",
        n_items: int = 0,
        cached: bool = False,
        algorithms: Optional[List[str]] = None,
        params: Optional[Dict[str, Any]] = None,
        error: Optional[str] = None,
    ) -> None:
        """Record one attempted goal pipeline."""
        self.goals.append(
            {
                "name": name,
                "status": status,
                "wall_s": float(wall_s),
                "n_items": int(n_items),
                "cached": bool(cached),
                "algorithms": sorted(algorithms or []),
                "params": params or {},
                "error": error,
            }
        )

    def record_cache(
        self, enabled: bool, hits: int, misses: int, stores: int
    ) -> None:
        """Record the analysis cache's traffic for this run."""
        self.cache = {
            "enabled": bool(enabled),
            "hits": int(hits),
            "misses": int(misses),
            "stores": int(stores),
        }

    def record_executor(
        self, backend: str, workers: int, task_failures: int = 0
    ) -> None:
        """Record the fan-out backend and its failure count."""
        self.executor = {
            "backend": backend,
            "workers": int(workers),
            "task_failures": int(task_failures),
        }

    # -- completion ------------------------------------------------------
    def finish(
        self,
        n_items: int,
        metrics_snapshot: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The manifest of a completed run."""
        return self._document(
            "completed", n_items, metrics_snapshot, error=None
        )

    def fail(
        self,
        error: str,
        metrics_snapshot: Optional[Dict[str, Any]] = None,
    ) -> Dict[str, Any]:
        """The manifest of a run that raised."""
        return self._document("failed", 0, metrics_snapshot, error=error)

    def _document(
        self,
        status: str,
        n_items: int,
        metrics_snapshot: Optional[Dict[str, Any]],
        error: Optional[str],
    ) -> Dict[str, Any]:
        document = {
            "schema": MANIFEST_SCHEMA,
            "status": status,
            "dataset": dict(self.dataset),
            "user": self.user,
            "seed": self.seed,
            "started_at": self.started_at,
            "finished_at": time.time(),
            "wall_s": time.perf_counter() - self._t0,
            "goals_assessed": list(self.goals_assessed),
            "goals": list(self.goals),
            "cache": dict(self.cache),
            "executor": dict(self.executor),
            "metrics": metrics_snapshot or {},
            "n_items": int(n_items),
            "error": error,
        }
        return validate_manifest(document)
