"""Metric instruments: counters, gauges and fixed-bucket histograms.

The second layer of the telemetry subsystem. A :class:`Metrics`
registry hands out named instruments (get-or-create, so call sites can
stay declaration-free) and snapshots the whole registry to one plain
dict — the form persisted inside run manifests and printed by the CLI's
``--metrics`` flag.

Histograms use fixed bucket bounds (an exponential grid sized for
seconds-scale latencies by default) and estimate percentiles by linear
interpolation inside the owning bucket — the standard fixed-bucket
estimator, cheap to merge and serialise, accurate to bucket width.

Instruments are thread-safe (thread-pool backends observe from worker
threads) and picklable (locks are dropped and rebuilt), so a registry
can ride inside the engine across a process boundary; increments made
in worker processes stay in the worker's copy, which is why the
executors report worker timings back through their *results* instead.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple

#: Counter names the K-DB crash-recovery path maintains (PR 10).
#: Pre-registered when a registry is bound to a sharded store, so
#: snapshots always carry them — a clean open reports explicit zeros
#: rather than absent keys. ``torn_tail`` and ``stale_log`` count
#: *expected* crash signatures (repaired silently); ``quarantined``,
#: ``seq_gap`` and ``gen_mismatch`` count damage that flags the
#: collection degraded.
KDB_RECOVERY_COUNTERS: Tuple[str, ...] = (
    "kdb.recovery.torn_tail",
    "kdb.recovery.quarantined",
    "kdb.recovery.stale_log",
    "kdb.recovery.seq_gap",
    "kdb.recovery.gen_mismatch",
)

#: Default histogram bounds: exponential grid for seconds-scale timings.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    math.inf,
)

#: Byte-scale histogram bounds for payload-size accounting (e.g. the
#: executors' ``cloud.payload_bytes``): 128 B up to 128 MiB, then +inf.
PAYLOAD_BUCKETS: Tuple[float, ...] = (
    128.0,
    512.0,
    2048.0,
    8192.0,
    32768.0,
    131072.0,
    524288.0,
    float(2**21),
    float(2**23),
    float(2**25),
    float(2**27),
    math.inf,
)

#: Microsecond-to-second bounds for K-DB query latencies
#: (``kdb.query.latency``): indexed point reads land in the tens of
#: microseconds, full scans of large collections in whole seconds.
QUERY_BUCKETS: Tuple[float, ...] = (
    0.00001,
    0.000025,
    0.00005,
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    math.inf,
)


class _Instrument:
    """Lock management shared by every instrument type."""

    def __init__(self) -> None:
        self._lock = threading.Lock()

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state.pop("_lock", None)
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


class Counter(_Instrument):
    """A monotonically increasing count."""

    def __init__(self) -> None:
        super().__init__()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        with self._lock:
            self.value += amount


class Gauge(_Instrument):
    """A value that can go up and down (last write wins)."""

    def __init__(self) -> None:
        super().__init__()
        self.value: float = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self.value += amount


class Histogram(_Instrument):
    """Fixed-bucket distribution with interpolated percentiles.

    ``bounds`` are the inclusive upper edges of each bucket; the last
    bound may be ``inf`` (one is appended when missing, so no
    observation is ever dropped).
    """

    def __init__(self, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__()
        bounds = tuple(sorted(float(b) for b in bounds))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if bounds[-1] != math.inf:
            bounds = bounds + (math.inf,)
        self.bounds = bounds
        self.counts = [0] * len(bounds)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self.counts[index] += 1
                    break
            self.count += 1
            self.total += value
            self.min = value if self.min is None else min(self.min, value)
            self.max = value if self.max is None else max(self.max, value)

    def percentile(self, q: float) -> Optional[float]:
        """Estimated ``q``-quantile (``q`` in [0, 1]); None when empty.

        Linear interpolation inside the bucket holding the target rank;
        the overflow bucket reports the observed maximum.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("q must be in [0, 1]")
        if self.count == 0:
            return None
        target = q * self.count
        cumulative = 0
        lower = self.min if self.min is not None else 0.0
        for index, bound in enumerate(self.bounds):
            bucket = self.counts[index]
            if bucket:
                if cumulative + bucket >= target:
                    if not math.isfinite(bound):
                        return self.max
                    low = max(
                        lower,
                        self.bounds[index - 1] if index else 0.0,
                    )
                    fraction = (
                        (target - cumulative) / bucket if bucket else 1.0
                    )
                    return low + (bound - low) * min(1.0, fraction)
                cumulative += bucket
        return self.max  # pragma: no cover - unreachable by construction

    def snapshot(self) -> Dict[str, Any]:
        """JSON-able summary (counts, extrema, p50/p90/p99, buckets)."""
        buckets: List[Dict[str, Any]] = []
        for bound, count in zip(self.bounds, self.counts):
            if count:
                buckets.append(
                    {
                        "le": bound if math.isfinite(bound) else "inf",
                        "count": count,
                    }
                )
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(0.5),
            "p90": self.percentile(0.9),
            "p99": self.percentile(0.99),
            "buckets": buckets,
        }


class Metrics:
    """A named registry of instruments, snapshot-able to a dict."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- pickling --------------------------------------------------------
    def __getstate__(self) -> Dict[str, Any]:
        return {
            "counters": self._counters,
            "gauges": self._gauges,
            "histograms": self._histograms,
        }

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self._lock = threading.Lock()
        self._counters = state["counters"]
        self._gauges = state["gauges"]
        self._histograms = state["histograms"]

    # -- instruments -----------------------------------------------------
    def counter(self, name: str) -> Counter:
        """Get or create the named counter."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter()
            return instrument

    def counter_value(self, name: str) -> int:
        """The named counter's current value (0 when never created).

        Unlike :meth:`counter`, this never creates the instrument —
        safe for delta snapshots around a phase that may or may not
        touch the counter.
        """
        with self._lock:
            instrument = self._counters.get(name)
            return instrument.value if instrument is not None else 0

    def gauge(self, name: str) -> Gauge:
        """Get or create the named gauge."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge()
            return instrument

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get or create the named histogram (bounds only apply on
        first creation)."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    bounds if bounds is not None else DEFAULT_BUCKETS
                )
            return instrument

    # -- export ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """The whole registry as one JSON-able dict."""
        with self._lock:
            return {
                "counters": {
                    name: counter.value
                    for name, counter in sorted(self._counters.items())
                },
                "gauges": {
                    name: gauge.value
                    for name, gauge in sorted(self._gauges.items())
                },
                "histograms": {
                    name: histogram.snapshot()
                    for name, histogram in sorted(
                        self._histograms.items()
                    )
                },
            }
