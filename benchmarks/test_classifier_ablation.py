"""E9 — ablation: the optimiser's robustness classifier.

The paper used decision trees "in our first implementation", leaving
the robustness model pluggable. This benchmark swaps the classifier in
the Table I machinery — decision tree vs Gaussian Naive Bayes vs k-NN —
and checks that the *selection* (the chosen K) is stable across models:
the optimiser's verdict should reflect the cluster structure, not the
classifier's idiosyncrasies.
"""

from __future__ import annotations

import time

import pytest

from repro.core import KMeansOptimizer
from repro.mining import GaussianNaiveBayes, KNeighborsClassifier

from conftest import BENCH_SEED

K_VALUES = (6, 8, 10, 15, 20)

FACTORIES = {
    "decision-tree": None,  # optimiser default
    "gaussian-nb": lambda: GaussianNaiveBayes(),
    "knn-5": lambda: KNeighborsClassifier(n_neighbors=5),
}


@pytest.fixture(scope="module")
def reports(paper_matrix):
    # A patient subsample keeps the three full sweeps affordable.
    sample = paper_matrix[::3]
    results = {}
    for name, factory in FACTORIES.items():
        start = time.perf_counter()
        optimizer = KMeansOptimizer(
            k_values=K_VALUES,
            n_folds=5,
            classifier_factory=factory,
            seed=BENCH_SEED,
        )
        results[name] = (
            optimizer.optimize(sample),
            time.perf_counter() - start,
        )
    return results


def test_classifier_ablation(reports, benchmark, paper_matrix):
    sample = paper_matrix[::3]
    benchmark.pedantic(
        lambda: KMeansOptimizer(
            k_values=(8,), n_folds=5,
            classifier_factory=FACTORIES["gaussian-nb"],
            seed=BENCH_SEED,
        ).optimize(sample),
        rounds=1,
        iterations=1,
    )

    print()
    print("E9 — robustness classifier ablation (K sweep on 1/3 sample)")
    print(f"{'classifier':>14} {'best K':>7} {'acc@best':>9}"
          f" {'acc@K=20':>9} {'sweep(s)':>9}")
    for name, (report, seconds) in reports.items():
        by_k = {row.k: row for row in report.rows}
        print(
            f"{name:>14} {report.best_k:>7}"
            f" {by_k[report.best_k].accuracy * 100:>9.2f}"
            f" {by_k[20].accuracy * 100:>9.2f} {seconds:>9.1f}"
        )
    benchmark.extra_info["best_k"] = {
        name: report.best_k for name, (report, __) in reports.items()
    }

    # The selected K must sit in the small-K band for every classifier.
    for name, (report, __) in reports.items():
        assert report.best_k <= 10, name


def test_quality_degrades_at_high_k_for_all(reports):
    for name, (report, __) in reports.items():
        by_k = {row.k: row for row in report.rows}
        peak = max(row.combined for row in report.rows)
        assert by_k[20].combined < peak, name


def test_tree_competitive_with_alternatives(reports):
    """The paper's choice is not an outlier: its best-K accuracy is
    within 10 points of the best alternative."""
    best_accuracy = {
        name: max(row.accuracy for row in report.rows)
        for name, (report, __) in reports.items()
    }
    tree = best_accuracy["decision-tree"]
    assert tree >= max(best_accuracy.values()) - 0.10
