"""E10 — ablation: bootstrap stability corroborates the selected K.

The Table I machinery picks K by classifier robustness. An independent
check of the same question: how *stable* is each K's clustering under
resampling? This benchmark computes the bootstrap-stability profile
over the Table I K band on the paper-scale VSM and verifies the K the
optimiser selects sits in a stable region (no cherry-picking — stability
is computed with a completely different mechanism than the selection).
"""

from __future__ import annotations

import pytest

from repro.mining import stability_profile

from conftest import BENCH_SEED

K_VALUES = (6, 8, 10, 15, 20)


@pytest.fixture(scope="module")
def profile(paper_matrix):
    sample = paper_matrix[::4]  # 1,595 patients keep replicates cheap
    return stability_profile(
        sample, K_VALUES, n_replicates=6, seed=BENCH_SEED
    )


def test_stability_profile(profile, benchmark, paper_matrix):
    from repro.mining import bootstrap_stability

    sample = paper_matrix[::4]
    benchmark.pedantic(
        lambda: bootstrap_stability(
            sample, 8, n_replicates=4, seed=BENCH_SEED
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print("E10 — bootstrap stability by K (mean pairwise ARI,"
          " 6 replicates, 80% subsamples)")
    print(f"{'K':>4} {'stability':>10}")
    for k, score in profile.items():
        print(f"{k:>4} {score:>10.3f}")
    benchmark.extra_info["profile"] = profile

    # The small-K band the optimiser selects from must be at least as
    # stable as the large-K tail it rejects.
    small_band = max(profile[k] for k in (6, 8, 10))
    assert small_band >= profile[20] - 0.02


def test_all_stabilities_valid(profile):
    assert all(-1.0 <= value <= 1.0 for value in profile.values())
    # The structure is real: stability well above the noise floor.
    assert max(profile.values()) > 0.3
