"""E4 — §IV dataset description.

Regenerates the paper's dataset statistics paragraph as a table and
checks the synthetic log against every published number:

    "the examination log data of 6,380 patients (age range 4-95 years)
    with overt diabetes, covering the time period of one year, for a
    total of 95,788 records. ... 159 different types of examinations
    are present ... this dataset, albeit small, is characterized by an
    inherently sparse distribution"
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import DiabeticExamLogGenerator
from repro.preprocess import characterize_log

from conftest import BENCH_SEED

PAPER = {
    "n_patients": 6380,
    "n_records": 95788,
    "n_exam_types": 159,
    "age_min": 4,
    "age_max": 95,
    "days": 365,
}


def test_dataset_statistics(paper_log, benchmark):
    benchmark.pedantic(
        lambda: DiabeticExamLogGenerator(seed=BENCH_SEED).generate(),
        rounds=1,
        iterations=1,
    )
    summary = paper_log.summary()
    profile = characterize_log(paper_log)
    frequency = np.sort(paper_log.exam_frequency())[::-1]
    total = frequency.sum()

    print()
    print("SSIV dataset statistics (measured vs paper)")
    rows = [
        ("patients", summary["n_patients"], PAPER["n_patients"]),
        ("records", summary["n_records"], PAPER["n_records"]),
        ("exam types", summary["n_exam_types"], PAPER["n_exam_types"]),
        ("min age", summary["age_min"], PAPER["age_min"]),
        ("max age", summary["age_max"], PAPER["age_max"]),
        ("days spanned", summary["days_spanned"], PAPER["days"]),
    ]
    for name, measured, paper in rows:
        print(f"  {name:<14} {measured:>8}   (paper: {paper})")
    print(f"  {'sparsity':<14} {profile.sparsity:>8.3f}   (paper: 'inherently sparse')")
    print(
        f"  top 20% of types -> {frequency[:32].sum() / total:.1%} of rows"
        f" (paper: 70%)"
    )
    print(
        f"  top 40% of types -> {frequency[:64].sum() / total:.1%} of rows"
        f" (paper: 85%)"
    )
    benchmark.extra_info["summary"] = {
        k: (int(v) if v is not None else None) for k, v in summary.items()
    }


def test_patient_count_exact(paper_log):
    assert paper_log.n_patients == PAPER["n_patients"]


def test_record_count_within_one_percent(paper_log):
    measured = paper_log.n_records
    assert abs(measured - PAPER["n_records"]) / PAPER["n_records"] < 0.01


def test_exam_type_count_exact(paper_log):
    assert paper_log.n_exam_types == PAPER["n_exam_types"]


def test_age_range_within_paper_bounds(paper_log):
    ages = paper_log.ages()
    assert min(ages) >= PAPER["age_min"]
    assert max(ages) <= PAPER["age_max"]
    # And the extremes are actually reached (range 4-95, not a subset).
    assert min(ages) <= 10
    assert max(ages) >= 90


def test_one_year_horizon(paper_log):
    assert paper_log.summary()["days_spanned"] <= PAPER["days"]


def test_sparse_distribution(paper_log):
    profile = characterize_log(paper_log)
    assert profile.is_sparse
    assert profile.sparsity > 0.7
