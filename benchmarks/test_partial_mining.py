"""E2 — §IV-B partial-mining experiment (unnumbered result).

Regenerates the paper's incremental horizontal partial-mining series:
K-means on 20 % / 40 % / 100 % of the exam types (chosen in decreasing
frequency order), each result scored with the overall-similarity index,
and the subset selected by the 5 %-difference rule.

Paper shape being reproduced:
  * 20 % of exam types cover ~70 % of the records, 40 % cover ~85 %;
  * for fixed K the overall similarity decreases as exams are removed;
  * the 40 %-of-types (~85 %-of-rows) subset stays within 5 % of the
    full-data similarity and is selected; the 20 % subset is rejected.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import HorizontalPartialMiner, VerticalPartialMiner

from conftest import BENCH_SEED


@pytest.fixture(scope="module")
def result(paper_log):
    miner = HorizontalPartialMiner(
        fractions=(0.2, 0.4, 1.0), k_values=(6, 8, 10), seed=BENCH_SEED
    )
    return miner.mine(paper_log)


def mean_difference(result, fraction):
    return float(
        np.mean(
            [
                run.pct_difference
                for run in result.runs
                if abs(run.fraction_features - fraction) < 1e-9
            ]
        )
    )


def test_partial_mining(result, benchmark, paper_log):
    miner = HorizontalPartialMiner(
        fractions=(0.4, 1.0), k_values=(8,), seed=BENCH_SEED
    )
    benchmark.pedantic(lambda: miner.mine(paper_log), rounds=1, iterations=1)

    print()
    print("SSIV-B — adaptive horizontal partial mining")
    print(result.format_table())
    print(
        f"mean %-difference: 20% of types -> "
        f"{mean_difference(result, 0.2) * 100:.2f}%,"
        f" 40% of types -> {mean_difference(result, 0.4) * 100:.2f}%"
        f" (tolerance 5%)"
    )
    print(
        "paper: 20%/40%/100% of exam types = 70%/85%/100% of rows;"
        " 85% of rows within 5% -> selected"
    )
    benchmark.extra_info["selected_fraction"] = result.selected_fraction
    benchmark.extra_info["mean_diff_20"] = mean_difference(result, 0.2)
    benchmark.extra_info["mean_diff_40"] = mean_difference(result, 0.4)

    # Shape assertions kept inline so --benchmark-only runs verify them.
    assert mean_difference(result, 0.2) > result.tolerance
    assert mean_difference(result, 0.4) <= result.tolerance
    assert result.selected_fraction == pytest.approx(0.4)


def test_row_coverage_matches_paper(result):
    """20% of types ~ 70% of rows; 40% ~ 85% (paper's exact numbers)."""
    by_fraction = {
        run.fraction_features: run.fraction_rows for run in result.runs
    }
    assert by_fraction[0.2] == pytest.approx(0.70, abs=0.04)
    assert by_fraction[0.4] == pytest.approx(0.85, abs=0.04)


def test_similarity_decreases_when_exams_removed(result):
    """Mean over K: smaller subsets lose similarity vs the full data."""
    assert mean_difference(result, 0.2) > mean_difference(result, 0.4)


def test_selection_rule_picks_40_percent(result):
    """20% rejected (> 5% difference), 40% accepted (< 5%) — exactly
    the paper's '85% of raw data yields a percentage difference less
    than 5%'."""
    assert mean_difference(result, 0.2) > result.tolerance
    assert mean_difference(result, 0.4) <= result.tolerance
    assert result.selected_fraction == pytest.approx(0.4)


def test_vertical_partial_mining_also_converges(paper_log):
    """Complementary row-subset miner: a fraction of patients suffices."""
    miner = VerticalPartialMiner(
        fractions=(0.25, 0.5, 1.0), k=8, seed=BENCH_SEED
    )
    result = miner.mine(paper_log)
    print()
    print("vertical partial mining (row subsets)")
    print(result.format_table())
    assert result.selected_fraction <= 1.0
