"""E3 — Figure 1: the ADA-HEALTH system architecture.

The paper's only figure is the architecture block diagram. The
benchmark regenerates it *from the live system*: the component registry
in :mod:`repro.core.architecture` is what the engine is assembled from,
and the rendering below is checked against the paper's block list and
exercised end-to-end by running the engine once per benchmark round.
"""

from __future__ import annotations

import pytest

from repro.core import ADAHealth, COMPONENTS, EngineConfig, render_text
from repro.core.architecture import adjacency
from repro.data import small_dataset

from conftest import BENCH_SEED

#: The blocks named in the paper's SSIII walk-through of Figure 1.
PAPER_BLOCKS = {
    "characterization",  # Data characterization and transformation
    "optimization",  # Data analytics optimization
    "endgoals",  # Identification of viable end-goals
    "navigation",  # Knowledge navigation
    "kdb",  # Knowledge Base (K-DB)
    "user",
    "mining",
}


def test_figure1(benchmark):
    """Render Figure 1 and drive every component once."""
    log = small_dataset(
        n_patients=250, n_exam_types=40, target_records=3500,
        seed=BENCH_SEED,
    )
    config = EngineConfig(
        k_values=(4, 6),
        partial_fractions=(0.4, 1.0),
        partial_k_values=(4,),
        n_folds=3,
    )

    def run_engine():
        engine = ADAHealth(config=config, seed=BENCH_SEED)
        return engine.analyze(log, name="figure1-drive")

    result = benchmark.pedantic(run_engine, rounds=1, iterations=1)

    print()
    print(render_text())
    print()
    print("live drive-through (all components exercised):")
    print(result.summary())

    benchmark.extra_info["n_components"] = len(COMPONENTS)
    benchmark.extra_info["n_items"] = len(result.items)


def test_figure1_blocks_match_paper():
    assert {component.key for component in COMPONENTS} == PAPER_BLOCKS


def test_figure1_interaction_graph_connected():
    """Every component participates in at least one interaction."""
    graph = adjacency()
    incoming = {target for targets in graph.values() for target in targets}
    for key in graph:
        assert graph[key] or key in incoming
