"""E8 — ablation: VSM weighting x scaling vs clustering quality.

The paper poses transform selection as an open research issue ("define a
totally automatic strategy to select the optimal data transformation,
which yields higher quality knowledge"). This benchmark quantifies the
choice on the full dataset: every (weighting, scaling) combination is
clustered and scored with the overall-similarity index and against the
generator's planted complication profiles (purity), and the automatic
selector's pick is reported.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import profile_labels
from repro.mining import KMeans, overall_similarity, purity
from repro.preprocess import (
    TransformSelector,
    VSMBuilder,
    make_transform,
)

from conftest import BENCH_SEED

COMBINATIONS = (
    ("count", "identity"),
    ("count", "l2"),
    ("binary", "identity"),
    ("binary", "l2"),
    ("log", "l2"),
    ("tfidf", "l2"),
)


@pytest.fixture(scope="module")
def truth(paper_log):
    return profile_labels(paper_log)


def evaluate(paper_log, weighting, scaling, truth):
    vsm = VSMBuilder(weighting).build(paper_log)
    matrix = make_transform(scaling).fit_transform(vsm.matrix)
    labels = KMeans(8, seed=BENCH_SEED, n_init=2).fit_predict(matrix)
    return (
        float(overall_similarity(matrix, labels)),
        float(purity(truth, labels)),
    )


def test_transform_ablation(paper_log, truth, benchmark):
    rows = []
    for weighting, scaling in COMBINATIONS:
        similarity, pure = evaluate(paper_log, weighting, scaling, truth)
        rows.append((weighting, scaling, similarity, pure))

    benchmark.pedantic(
        lambda: evaluate(paper_log, "binary", "l2", truth),
        rounds=1,
        iterations=1,
    )
    print()
    print("E8 — weighting x scaling -> K=8 clustering quality")
    print(f"{'weighting':>10} {'scaling':>9} {'overall sim':>12}"
          f" {'profile purity':>15}")
    for weighting, scaling, similarity, pure in rows:
        print(
            f"{weighting:>10} {scaling:>9} {similarity:>12.4f}"
            f" {pure:>15.3f}"
        )
    benchmark.extra_info["rows"] = rows


def test_presence_weighting_recovers_profiles_best(paper_log, truth):
    """Binary+L2 beats raw counts on planted-profile purity: magnitude
    noise from routine care hides the complication structure."""
    __, purity_binary = evaluate(paper_log, "binary", "l2", truth)
    __, purity_count = evaluate(paper_log, "count", "identity", truth)
    assert purity_binary > purity_count


def test_selector_picks_a_top_candidate(paper_log):
    """The automatic selector's choice is within the top half of the
    candidate field by its own pilot metric."""
    selector = TransformSelector(
        pilot_size=800, pilot_clusters=8, seed=BENCH_SEED
    )
    selection = selector.select(paper_log)
    print()
    print("automatic transform selection (pilot scores):")
    print(selection.report())
    scores = sorted(
        (c.score for c in selection.candidates), reverse=True
    )
    midpoint = scores[len(scores) // 2]
    assert selection.best.score >= midpoint
