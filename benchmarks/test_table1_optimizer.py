"""E1 — Table I: optimisation metrics of the K-means K sweep.

Regenerates the paper's Table I: for K in {6,7,8,9,10,12,15,20}, the SSE
of the K-means cluster set plus the 10-fold cross-validated accuracy /
average precision / average recall of the decision-tree robustness
classifier, followed by ADA-HEALTH's automatic K selection.

Paper shape being reproduced:
  * SSE decreases monotonically with K;
  * the classification metrics peak at small K (7-8 in the paper) and
    degrade markedly for large K (paper: precision 52.6, recall 33.4 at
    K = 20);
  * the combined rule selects K = 8.
"""

from __future__ import annotations

import pytest

from repro.core import KMeansOptimizer
from repro.core.optimizer import PAPER_K_VALUES

from conftest import BENCH_SEED

#: The paper's Table I, for side-by-side printing.
PAPER_TABLE_1 = {
    6: (3098.32, 87.79, 90.82, 77.30),
    7: (2805.00, 87.93, 86.93, 78.52),
    8: (2550.00, 90.41, 92.51, 79.72),
    9: (2482.36, 88.75, 71.03, 57.62),
    10: (2205.00, 87.49, 70.53, 51.06),
    12: (2101.60, 85.45, 64.29, 43.80),
    15: (1917.20, 75.18, 75.98, 55.93),
    20: (1534.00, 82.11, 52.59, 33.43),
}


@pytest.fixture(scope="module")
def report(paper_matrix):
    optimizer = KMeansOptimizer(
        k_values=PAPER_K_VALUES, n_folds=10, seed=BENCH_SEED
    )
    return optimizer.optimize(paper_matrix)


def test_table1(report, benchmark, paper_matrix):
    optimizer = KMeansOptimizer(
        k_values=(8,), n_folds=10, seed=BENCH_SEED
    )
    benchmark.pedantic(
        lambda: optimizer.evaluate_k(paper_matrix, 8),
        rounds=1,
        iterations=1,
    )

    print()
    print("TABLE I — optimisation metrics (measured vs paper)")
    header = (
        f"{'K':>4} | {'SSE':>9} {'Acc':>6} {'Prec':>6} {'Rec':>6}"
        f" | {'paper SSE':>9} {'Acc':>6} {'Prec':>6} {'Rec':>6}"
    )
    print(header)
    print("-" * len(header))
    for row in report.rows:
        paper = PAPER_TABLE_1[row.k]
        print(
            f"{row.k:>4} | {row.sse:>9.2f} {row.accuracy * 100:>6.2f}"
            f" {row.avg_precision * 100:>6.2f}"
            f" {row.avg_recall * 100:>6.2f}"
            f" | {paper[0]:>9.2f} {paper[1]:>6.2f} {paper[2]:>6.2f}"
            f" {paper[3]:>6.2f}"
        )
    print(f"measured selection: K = {report.best_k}   (paper: K = 8)")
    print(f"SSE plateau (paper: 'good values for K' band): "
          f"{report.sse_plateau}")

    benchmark.extra_info["best_k"] = report.best_k
    benchmark.extra_info["rows"] = [
        row.as_table_row() for row in report.rows
    ]

    # Shape assertions (also checked by the plain tests below, but kept
    # here so a --benchmark-only run still verifies the reproduction).
    sses = [row.sse for row in report.rows]
    assert all(a >= b - 1e-9 for a, b in zip(sses, sses[1:]))
    assert report.best_k in (7, 8, 9)


def test_table1_sse_monotone(report):
    sses = [row.sse for row in report.rows]
    assert all(a >= b - 1e-9 for a, b in zip(sses, sses[1:]))


def test_table1_quality_peaks_small_k(report):
    """Classification metrics best at K in 6..10, clearly worse at 20."""
    by_k = {row.k: row for row in report.rows}
    peak = max(row.combined for row in report.rows)
    assert max(by_k[k].combined for k in (6, 7, 8, 9, 10)) == peak
    assert by_k[20].combined < peak - 0.05


def test_table1_selects_k8(report):
    """The combined rule lands on the paper's K = 8 (+-1 tolerated for
    a different dataset realisation, but the shape must hold)."""
    assert report.best_k in (7, 8, 9)
