"""E5 — ablation: end-goal interest prediction vs. interaction count.

The paper claims (SSIII, "Identification of viable end-goals"):

    "The larger the number of previous user interactions, the more
    accurate the classification model will be."

This benchmark measures that learning curve directly: a simulated
expert with a fixed latent preference over end-goals supplies
interactions; after every batch the interest model's accuracy is
evaluated on held-out (goal, dataset) pairs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    DEFAULT_END_GOALS,
    EndGoalInterestModel,
    ViableEndGoalFinder,
)
from repro.data import small_dataset
from repro.preprocess import characterize_log

from conftest import BENCH_SEED

#: The simulated user's fixed latent preference.
PREFERRED = {"patient-segmentation", "care-pathway-rules"}

BATCHES = (2, 5, 10, 20, 40, 80)


@pytest.fixture(scope="module")
def profiles():
    """Dataset profiles of several differently-sized cohorts."""
    datasets = [
        small_dataset(
            n_patients=n, n_exam_types=40, target_records=15 * n,
            seed=BENCH_SEED + i,
        )
        for i, n in enumerate((200, 300, 400, 500))
    ]
    return [characterize_log(log) for log in datasets]


def learning_curve(profiles, noise, seed):
    rng = np.random.default_rng(seed)
    finder = ViableEndGoalFinder()
    goals = list(DEFAULT_END_GOALS)
    model = EndGoalInterestModel([g.name for g in goals], seed=seed)
    holdout = [
        (goal, profile, goal.name in PREFERRED)
        for goal in goals
        for profile in profiles
    ]
    curve = []
    recorded = 0
    for target in BATCHES:
        while recorded < target:
            goal = goals[int(rng.integers(len(goals)))]
            profile = profiles[int(rng.integers(len(profiles)))]
            interested = goal.name in PREFERRED
            if rng.random() < noise:
                interested = not interested
            model.record_interaction(goal, profile, interested)
            recorded += 1
        curve.append((target, model.accuracy_on(holdout)))
    return curve


def test_endgoal_learning_curve(profiles, benchmark):
    curve = benchmark.pedantic(
        lambda: learning_curve(profiles, noise=0.1, seed=BENCH_SEED),
        rounds=1,
        iterations=1,
    )
    print()
    print("E5 — interest-prediction accuracy vs #interactions"
          " (10% label noise)")
    print(f"{'interactions':>13} {'accuracy':>9}")
    for n, accuracy in curve:
        print(f"{n:>13} {accuracy:>9.3f}")
    print("paper claim: accuracy grows with the number of interactions")
    benchmark.extra_info["curve"] = curve


def test_accuracy_grows_with_interactions(profiles):
    """Late-curve accuracy beats early-curve accuracy (3-seed average)."""
    early, late = [], []
    for seed in (0, 1, 2):
        curve = dict(learning_curve(profiles, noise=0.1, seed=seed))
        early.append(curve[BATCHES[0]])
        late.append(curve[BATCHES[-1]])
    assert np.mean(late) > np.mean(early)
    assert np.mean(late) > 0.85


def test_noise_free_expert_is_learned_perfectly(profiles):
    curve = dict(learning_curve(profiles, noise=0.0, seed=3))
    assert curve[BATCHES[-1]] == pytest.approx(1.0)
