"""E13 — out-of-core analysis at 10x the paper's dataset.

The paper's scalability claim is that the methodology "can be applied
to large volumes of data"; its own cohort stops at 95,788 records. This
benchmark pushes the reproduction one order of magnitude past that:
a >= 957,880-record cohort is *streamed* through the engine's data
plane — :meth:`DiabeticExamLogGenerator.generate_blocks` emits
patient-partitioned blocks, K-means consumes them through
:meth:`KMeans.partial_fit`, and frequent-itemset mining runs blockwise
through :func:`apriori_blocks` — without the full record set, patient
matrix or transaction database ever being resident at once.

Recorded in ``benchmarks/BENCH_blocks.json``: wall time per stage,
block count, records processed, and the peak-block versus full-matrix
memory ratio that makes the out-of-core claim concrete.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from repro.data import GeneratorConfig, DiabeticExamLogGenerator
from repro.data.blocks import leaked_segments
from repro.mining.itemsets import apriori_blocks
from repro.mining.kmeans import KMeans
from repro.preprocess import VSMBuilder

from conftest import BENCH_SEED

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_blocks.json"

#: 10x the paper's 95,788 records is the floor this benchmark pins.
PAPER_RECORDS = 95_788
SCALE_FLOOR = 10 * PAPER_RECORDS

#: Patients per generated block (16 blocks over the 10x cohort).
BLOCK_PATIENTS = 4_000


def _record(section: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data[section] = payload
    data["host"] = {"cpu_count": os.cpu_count()}
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True))


def test_tenfold_scale_blocked_pipeline(benchmark):
    config = GeneratorConfig(
        n_patients=63_800,
        n_exam_types=159,
        target_records=1_053_668,  # 11x target, safely over the floor
    )
    generator = DiabeticExamLogGenerator(config, seed=BENCH_SEED)
    builder = VSMBuilder("binary", exam_codes=range(159))
    stats = {}

    def streamed_run():
        model = KMeans(n_clusters=8, seed=BENCH_SEED)
        total_records = 0
        n_blocks = 0
        peak_block_bytes = 0
        peak_block_records = 0

        def transaction_blocks():
            nonlocal total_records, n_blocks
            nonlocal peak_block_bytes, peak_block_records
            for block_log in generator.generate_blocks(
                block_rows=BLOCK_PATIENTS
            ):
                total_records += block_log.n_records
                n_blocks += 1
                peak_block_records = max(
                    peak_block_records, block_log.n_records
                )
                block_matrix = builder.build(block_log).matrix
                peak_block_bytes = max(
                    peak_block_bytes, block_matrix.nbytes
                )
                model.partial_fit(block_matrix)
                yield block_log.transactions(by="patient")

        itemsets = apriori_blocks(
            transaction_blocks(), min_support=0.3, max_length=3
        )
        stats.update(
            total_records=total_records,
            n_blocks=n_blocks,
            peak_block_bytes=peak_block_bytes,
            peak_block_records=peak_block_records,
            n_frequent_itemsets=len(itemsets),
            patients_clustered=model.n_seen_,
        )
        return itemsets

    start = time.perf_counter()
    benchmark.pedantic(streamed_run, rounds=1, iterations=1)
    wall_seconds = time.perf_counter() - start

    full_matrix_bytes = config.n_patients * config.n_exam_types * 8
    block_fraction = stats["peak_block_bytes"] / full_matrix_bytes

    print()
    print("E13 — blocked pipeline at 10x paper scale")
    print(f"records streamed:     {stats['total_records']:>12,}"
          f"   (paper: {PAPER_RECORDS:,})")
    print(f"blocks:               {stats['n_blocks']:>12}"
          f"   ({BLOCK_PATIENTS:,} patients each)")
    print(f"frequent itemsets:    {stats['n_frequent_itemsets']:>12}")
    print(f"peak block matrix:    {stats['peak_block_bytes']:>12,} B"
          f"   ({block_fraction:.1%} of the full matrix)")
    print(f"wall time:            {wall_seconds:>12.2f} s")

    _record(
        "tenfold_scale_pipeline",
        {
            "target_records": config.target_records,
            "records_streamed": stats["total_records"],
            "scale_over_paper": stats["total_records"] / PAPER_RECORDS,
            "n_blocks": stats["n_blocks"],
            "block_patients": BLOCK_PATIENTS,
            "patients_clustered": stats["patients_clustered"],
            "n_frequent_itemsets": stats["n_frequent_itemsets"],
            "peak_block_matrix_bytes": stats["peak_block_bytes"],
            "full_matrix_bytes": full_matrix_bytes,
            "peak_block_fraction": block_fraction,
            "wall_seconds": wall_seconds,
        },
    )
    benchmark.extra_info["records"] = stats["total_records"]

    assert stats["total_records"] >= SCALE_FLOOR
    assert stats["patients_clustered"] == config.n_patients
    assert stats["n_frequent_itemsets"] >= 1
    # out-of-core: no block ever holds more than a sliver of the data
    assert block_fraction <= 0.125
    assert leaked_segments() == []
