"""Shared fixtures for the reproduction benchmarks.

Every benchmark runs on the full-size synthetic dataset calibrated to
the paper's §IV statistics (6,380 patients, 159 exam types, ~95,788
records over one year). The dataset is generated once per session.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import paper_dataset
from repro.preprocess import L2Normalizer, VSMBuilder

#: One fixed seed for the whole benchmark session: every table in
#: EXPERIMENTS.md was produced with this seed.
BENCH_SEED = 0


@pytest.fixture(scope="session")
def paper_log():
    """The full-size calibrated diabetic examination log."""
    return paper_dataset(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def paper_matrix(paper_log):
    """Presence-weighted, L2-normalised VSM over the 40 % exam-type
    subset ADA-HEALTH's partial miner selects (the analogue of the
    paper's '85 % of the original row data')."""
    from repro.core import HorizontalPartialMiner

    miner = HorizontalPartialMiner(seed=BENCH_SEED)
    codes = miner.subset_codes(paper_log, 0.4)
    vsm = VSMBuilder("binary", exam_codes=codes).build(paper_log)
    return L2Normalizer().transform(vsm.matrix)
