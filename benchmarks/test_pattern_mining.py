"""E7 — ablation: pattern-based discovery (paper ref [2], MeTA-style).

Exercises the second exploratory algorithm family on the full dataset:
Apriori vs FP-growth runtime and equivalence across a support sweep,
association-rule generation, and generalised itemsets at the taxonomy's
abstraction levels ("Characterization of Medical Treatments at
Different Abstraction Levels").
"""

from __future__ import annotations

import time

import pytest

from repro.mining import (
    apriori,
    fpgrowth,
    generate_rules,
    level_summary,
    mine_generalized_itemsets,
)

from conftest import BENCH_SEED

SUPPORTS = (0.4, 0.3, 0.2, 0.15)


@pytest.fixture(scope="module")
def transactions(paper_log):
    return paper_log.transactions(by="patient")


def test_pattern_mining_sweep(transactions, benchmark):
    rows = []
    for min_support in SUPPORTS:
        start = time.perf_counter()
        via_fp = fpgrowth(transactions, min_support)
        fp_seconds = time.perf_counter() - start
        start = time.perf_counter()
        via_apriori = apriori(transactions, min_support)
        apriori_seconds = time.perf_counter() - start
        assert {s.items: s.count for s in via_fp} == {
            s.items: s.count for s in via_apriori
        }
        rows.append(
            (min_support, len(via_fp), fp_seconds, apriori_seconds)
        )

    benchmark.pedantic(
        lambda: fpgrowth(transactions, SUPPORTS[-1]),
        rounds=1,
        iterations=1,
    )
    print()
    print("E7 — frequent co-prescription mining, 6,380 patient baskets")
    print(f"{'support':>8} {'#itemsets':>10} {'fpgrowth(s)':>12}"
          f" {'apriori(s)':>11}")
    for min_support, count, fp_s, ap_s in rows:
        print(
            f"{min_support:>8.2f} {count:>10} {fp_s:>12.3f} {ap_s:>11.3f}"
        )
    benchmark.extra_info["rows"] = rows


def test_itemset_count_grows_as_support_drops(transactions):
    counts = [len(fpgrowth(transactions, s)) for s in SUPPORTS]
    assert counts == sorted(counts)


def test_rules_from_cooccurring_panels(transactions):
    """Routine-care panels co-occur: strong rules must exist."""
    itemsets = fpgrowth(transactions, 0.3)
    rules = generate_rules(itemsets, min_confidence=0.8)
    print()
    print(f"association rules (support >= 0.3, confidence >= 0.8):"
          f" {len(rules)}")
    for rule in rules[:5]:
        print(f"  {rule}")
    assert rules
    assert all(rule.confidence >= 0.8 for rule in rules)


def test_generalized_patterns_surface_category_knowledge(paper_log,
                                                         transactions):
    """Category-level patterns exist that no leaf-level pattern shows:
    complication exams are individually rare but frequent as a group."""
    generalized = mine_generalized_itemsets(
        transactions,
        paper_log.taxonomy.parent_map(),
        min_support=0.10,
        max_length=3,
    )
    summary = level_summary(generalized)
    print()
    print(f"generalized itemsets by abstraction level: {summary}")
    assert summary["category"] > 0
    # A complication category is frequent at category level even though
    # every individual complication exam is below the support threshold.
    leaf_items = {
        item
        for g in generalized
        if g.level == "leaf"
        for item in g.items
    }
    category_only = [
        g
        for g in generalized
        if g.level == "category" and len(g.items) == 1
    ]
    complication = [
        g
        for g in category_only
        if next(iter(g.items))
        in ("cardiovascular", "ophthalmic", "renal", "neurological")
    ]
    assert complication, "complication categories should be frequent"
    complication_exams = {
        exam.name
        for exam in paper_log.taxonomy
        if exam.category in ("cardiovascular", "ophthalmic", "renal")
    }
    assert not (complication_exams & leaf_items)
