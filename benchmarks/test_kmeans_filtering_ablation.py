"""E6 — ablation: Kanungo kd-tree filtering K-means vs Lloyd's.

The paper's preliminary implementation cites Kanungo et al. (TPAMI
2002) — the kd-tree *filtering* algorithm — as its K-means engine. This
benchmark (i) verifies our two engines produce identical SSE and
assignments, and (ii) quantifies the filtering algorithm's pruning
power: the fraction of points assigned in bulk at kd-tree internal
nodes and the point-centre distance evaluations saved versus Lloyd's
``n x K`` per pass.

Honest wall-clock note: in this pure-Python/numpy implementation the
vectorised Lloyd pass is faster in wall-clock time — BLAS evaluates all
``n x K`` distances faster than Python-level tree traversal prunes
them. The table therefore reports *distance evaluations* (the metric
Kanungo et al. optimise, and the one that matters when a distance is
expensive) alongside wall-clock for transparency.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.mining import KMeans, adjusted_rand_index
from repro.mining.kmeans import filtering_stats

from conftest import BENCH_SEED


def make_blobs(n, dims, k, seed):
    rng = np.random.default_rng(seed)
    centers = rng.uniform(-10, 10, size=(k, dims))
    return np.vstack(
        [
            rng.normal(center, 0.8, size=(n // k, dims))
            for center in centers
        ]
    )


SHAPES = (
    (6000, 2, 8),
    (6000, 4, 8),
    (6000, 16, 8),
)


def run_engine(data, k, algorithm):
    start = time.perf_counter()
    model = KMeans(
        k, algorithm=algorithm, seed=BENCH_SEED, n_init=1, max_iter=50
    ).fit(data)
    return model, time.perf_counter() - start


def test_filtering_ablation(benchmark):
    rows = []
    for n, dims, k in SHAPES:
        data = make_blobs(n, dims, k, seed=BENCH_SEED)
        lloyd, lloyd_s = run_engine(data, k, "lloyd")
        filtering, filtering_s = run_engine(data, k, "filtering")
        assert lloyd.inertia_ == pytest.approx(
            filtering.inertia_, rel=1e-6
        )
        stats = filtering_stats(data, lloyd.cluster_centers_)
        rows.append((n, dims, k, lloyd_s, filtering_s, stats))

    data = make_blobs(*SHAPES[0], seed=BENCH_SEED)
    benchmark.pedantic(
        lambda: KMeans(
            SHAPES[0][2], algorithm="filtering", seed=BENCH_SEED,
            n_init=1,
        ).fit(data),
        rounds=1,
        iterations=1,
    )

    print()
    print("E6 — Lloyd vs kd-tree filtering (identical SSE verified)")
    print(
        f"{'n':>6} {'dims':>5} {'K':>3} {'lloyd(s)':>9}"
        f" {'filter(s)':>10} {'bulk-assigned':>14}"
        f" {'dist evals saved':>17}"
    )
    for n, dims, k, lloyd_s, filtering_s, stats in rows:
        saved = 1.0 - (
            stats["distance_evaluations"]
            / stats["lloyd_distance_evaluations"]
        )
        print(
            f"{n:>6} {dims:>5} {k:>3} {lloyd_s:>9.3f}"
            f" {filtering_s:>10.3f} {stats['bulk_fraction']:>13.1%}"
            f" {saved:>16.1%}"
        )
        # Low-dimensional clustered data: most points assigned in bulk.
        if dims <= 4:
            assert stats["bulk_fraction"] > 0.5
            assert saved > 0.5
    benchmark.extra_info["rows"] = [
        (n, dims, k, lloyd_s, filtering_s, stats["bulk_fraction"])
        for n, dims, k, lloyd_s, filtering_s, stats in rows
    ]


def test_engines_agree_on_vsm(paper_matrix):
    """On the real (high-dimensional) VSM both engines coincide too."""
    sample = paper_matrix[:1500]
    lloyd = KMeans(6, algorithm="lloyd", seed=1, n_init=1).fit(sample)
    filtering = KMeans(6, algorithm="filtering", seed=1, n_init=1).fit(
        sample
    )
    assert lloyd.inertia_ == pytest.approx(filtering.inertia_, rel=1e-9)
    assert adjusted_rand_index(
        lloyd.labels_, filtering.labels_
    ) == pytest.approx(1.0)


def test_pruning_degrades_with_dimension():
    """On *unclustered* data the kd-tree filtering loses pruning power
    as dimension grows (cells stop being dominated by one centre) — the
    reason ADA-HEALTH keeps the vectorised Lloyd engine for wide VSMs.
    With well-separated blobs pruning stays strong in any dimension."""
    rng = np.random.default_rng(3)
    fractions = []
    for dims in (2, 8, 32):
        data = rng.uniform(0.0, 1.0, size=(3000, dims))
        model = KMeans(6, seed=3, n_init=1).fit(data)
        stats = filtering_stats(data, model.cluster_centers_)
        fractions.append(stats["bulk_fraction"])
    assert fractions[0] > fractions[-1]
