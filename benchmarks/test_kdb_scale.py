"""E14 — the K-DB at EHR scale: sharded storage + query planner.

The paper stores the Knowledge Base "on a cluster of MongoDBs"; the
EHR-mining survey in PAPERS.md puts real workloads at millions of
records. This benchmark drives the reproduction's substitute store to
that scale: knowledge-item documents are bulk-inserted into a
:class:`~repro.kdb.shards.ShardedDocumentStore`, point (``bucket``)
and range (``score``) queries are timed first as full scans and then
through the planner's hash/sorted indexes, and the shard files are
closed, replayed and compacted with every document verified across the
round trip.

Two tiers share one harness:

* the **smoke tier** (always, wired into ``scripts/check.sh``) runs the
  whole protocol at 20k documents — correctness on every gate, CI-safe
  wall time;
* the **full tier** (``REPRO_KDB_FULL=1``) runs 1,000,000 documents and
  records the headline numbers in ``benchmarks/BENCH_kdb.json``:
  indexed point and range latency versus scan, planner-vs-scan result
  identity, index build time, replay and compaction time.
"""

from __future__ import annotations

import json
import os
import random
import time
from pathlib import Path

import pytest

from repro.kdb.shards import ShardedDocumentStore

from conftest import BENCH_SEED

pytestmark = pytest.mark.kdb_scale

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_kdb.json"

KINDS = ("cluster", "itemset", "rule", "outlier")
GOALS = tuple(f"goal-{i:02d}" for i in range(50))

FULL = os.environ.get("REPRO_KDB_FULL") == "1"
N_SMOKE = 20_000
N_FULL = 1_000_000
N_SHARDS = 16


def _record(section: str, payload: dict) -> None:
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data[section] = payload
    data["host"] = {"cpu_count": os.cpu_count()}
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True))


def _items(n: int):
    rng = random.Random(BENCH_SEED)
    for i in range(n):
        yield {
            "_id": i,
            "kind": KINDS[i % len(KINDS)],
            "end_goal": GOALS[i % len(GOALS)],
            # ~100 documents per bucket at any n: the point-query target.
            "bucket": i % max(1, n // 100),
            "score": round(rng.random(), 6),
            "support": rng.randint(1, 500),
        }


def _timed(fn, repeats: int = 3):
    """(best wall seconds, last result) over ``repeats`` runs."""
    best, result = None, None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best, result


def _canonical(rows) -> str:
    return json.dumps(sorted(rows, key=lambda r: r["_id"]), sort_keys=True)


def _run_scale_protocol(n_items: int, tmp_path: Path, section: str):
    point_query = {"bucket": 7}
    range_query = {"score": {"$gte": 0.4995, "$lt": 0.5005}}
    stats: dict = {"n_items": n_items, "n_shards": N_SHARDS}

    store = ShardedDocumentStore(tmp_path / "kdb", n_shards=N_SHARDS)
    items = store.collection("discovered_knowledge")

    start = time.perf_counter()
    for document in _items(n_items):
        items.insert_one(document)
    stats["insert_wall_s"] = time.perf_counter() - start
    stats["insert_per_s"] = n_items / stats["insert_wall_s"]

    # -- scans first (no indexes yet) -----------------------------------
    scan_point_s, scan_point = _timed(
        lambda: items.find(point_query).to_list()
    )
    scan_range_s, scan_range = _timed(
        lambda: items.find(range_query).to_list()
    )
    assert items.explain(point_query).kind == "scan"
    assert items.explain(range_query).kind == "scan"

    # -- index build ----------------------------------------------------
    start = time.perf_counter()
    items.create_index("bucket")
    items.create_index("score", kind="sorted")
    items.find(range_query).to_list()  # warm the lazy sorted view
    stats["index_build_s"] = time.perf_counter() - start

    indexed_point_s, indexed_point = _timed(
        lambda: items.find(point_query).to_list()
    )
    indexed_range_s, indexed_range = _timed(
        lambda: items.find(range_query).to_list()
    )
    point_plan = items.explain(point_query)
    range_plan = items.explain(range_query)
    assert point_plan.kind == "point" and point_plan.index == "bucket_1"
    assert range_plan.kind == "range" and range_plan.index == "score_1"

    # planner-vs-scan: byte-identical result sets
    assert _canonical(indexed_point) == _canonical(scan_point)
    assert _canonical(indexed_range) == _canonical(scan_range)
    assert len(scan_point) > 0 and len(scan_range) > 0

    # indexed access must beat the scan it replaces
    assert indexed_point_s < scan_point_s
    assert indexed_range_s < scan_range_s

    # index-ordered top-k: resolves via the sorted index, same answer
    # as a full sort
    top_indexed_s, top_indexed = _timed(
        lambda: items.find({}).sort("score", -1).limit(10).to_list()
    )
    top_scores = [row["score"] for row in top_indexed]
    assert top_scores == sorted(top_scores, reverse=True)
    assert len(top_indexed) == 10

    stats.update(
        scan_point_s=scan_point_s,
        scan_range_s=scan_range_s,
        indexed_point_s=indexed_point_s,
        indexed_range_s=indexed_range_s,
        point_speedup=scan_point_s / indexed_point_s,
        range_speedup=scan_range_s / indexed_range_s,
        top10_sorted_s=top_indexed_s,
        point_rows=len(scan_point),
        range_rows=len(scan_range),
        planner_identical=True,
    )

    # -- shard round trip: close -> replay -> compact -> replay ----------
    originals = dict(items._documents)
    store.close()

    start = time.perf_counter()
    reopened = ShardedDocumentStore(tmp_path / "kdb", n_shards=N_SHARDS)
    stats["replay_s"] = time.perf_counter() - start
    replayed = reopened.collection("discovered_knowledge")
    assert len(replayed) == n_items
    assert replayed._documents == originals
    assert reopened.load_warnings == []

    start = time.perf_counter()
    reopened.compact()
    stats["compact_s"] = time.perf_counter() - start
    assert reopened.pending_ops() == 0
    disk = reopened.stats()["discovered_knowledge"]
    assert disk["log_bytes"] == 0
    stats["base_bytes"] = disk["base_bytes"]
    reopened.close()

    compacted = ShardedDocumentStore(tmp_path / "kdb", n_shards=N_SHARDS)
    assert (
        compacted.collection("discovered_knowledge")._documents
        == originals
    )
    assert compacted.load_warnings == []
    compacted.close()
    stats["round_trip_ok"] = True

    print()
    print(f"E14 — K-DB scale ({section}, {n_items:,} items)")
    print(f"insert throughput:   {stats['insert_per_s']:>12,.0f} docs/s")
    print(f"point query:         {scan_point_s * 1e3:>9.2f} ms scan"
          f" -> {indexed_point_s * 1e3:.3f} ms indexed"
          f" ({stats['point_speedup']:.0f}x)")
    print(f"range query:         {scan_range_s * 1e3:>9.2f} ms scan"
          f" -> {indexed_range_s * 1e3:.3f} ms indexed"
          f" ({stats['range_speedup']:.0f}x)")
    print(f"replay / compact:    {stats['replay_s']:>9.2f} s /"
          f" {stats['compact_s']:.2f} s")

    _record(section, stats)
    return stats


def test_kdb_scale_smoke(tmp_path):
    """CI tier: the full protocol, 20k documents."""
    _run_scale_protocol(N_SMOKE, tmp_path, "smoke")


@pytest.mark.skipif(
    not FULL, reason="full 1M-item tier runs with REPRO_KDB_FULL=1"
)
def test_kdb_scale_full_million(tmp_path):
    """Acceptance tier: 1,000,000 knowledge items (BENCH_kdb.json)."""
    stats = _run_scale_protocol(N_FULL, tmp_path, "full_1m")
    # sub-linear access at scale: orders of magnitude, not epsilon
    assert stats["point_speedup"] > 50
    assert stats["range_speedup"] > 50
