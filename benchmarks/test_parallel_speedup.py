"""E12 — process-parallel sweeps and the memoising analysis cache.

The paper's cloud vision: "a set of online cloud-based services for
automatic configuration of data analytics will exploit the computational
advantages of massively parallel cloud computing". Two measurements on
the paper-scale dataset stand in for that cloud:

* the Table I K sweep dispatched to local worker processes
  (:class:`ProcessPoolExecutorBackend`, 4 workers) against the serial
  baseline — results must be identical, and on a multi-core host the
  sweep must finish at least twice as fast;
* a repeated ``ADAHealth.analyze`` on an unchanged log with the
  analysis cache on — the warm run must cost at most 25 % of the cold
  run, with identical output.

Timings, speedups and host facts are appended to
``benchmarks/BENCH_parallel.json``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from repro.cloud import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    TaskSpec,
    payload_bytes,
)
from repro.core import ADAHealth, EngineConfig, KMeansOptimizer
from repro.core.optimizer import PAPER_K_VALUES, _evaluate_k_task
from repro.data import SharedMatrix

from conftest import BENCH_SEED

RESULT_PATH = Path(__file__).resolve().parent / "BENCH_parallel.json"
BLOCKS_RESULT_PATH = Path(__file__).resolve().parent / "BENCH_blocks.json"

#: The shared-memory transport must shrink per-task payloads by at
#: least this factor on the paper-scale matrix.
PAYLOAD_REDUCTION_FLOOR = 10.0

#: Workers for the process backend (the ISSUE's reference setting).
WORKERS = 4

#: Cores needed before a >= 2x speedup with 4 workers is physically
#: possible (pickling and result transport eat into a 2-core budget).
SPEEDUP_MIN_CORES = 4


def _record(section: str, payload: dict, path: Path = RESULT_PATH) -> None:
    data = {}
    if path.exists():
        data = json.loads(path.read_text())
    data[section] = payload
    data["host"] = {"cpu_count": os.cpu_count()}
    path.write_text(json.dumps(data, indent=2, sort_keys=True))


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def _assert_reports_identical(left, right):
    assert right.best_k == left.best_k
    assert right.sse_plateau == left.sse_plateau
    for a, b in zip(left.rows, right.rows):
        assert (a.k, a.sse, a.accuracy, a.avg_precision, a.avg_recall) == (
            b.k,
            b.sse,
            b.accuracy,
            b.avg_precision,
            b.avg_recall,
        )


def test_parallel_table1_sweep(paper_matrix, benchmark):
    def sweep(executor):
        return KMeansOptimizer(
            k_values=PAPER_K_VALUES,
            n_folds=10,
            seed=BENCH_SEED,
            executor=executor,
        ).optimize(paper_matrix)

    serial_report, serial_seconds = _timed(lambda: sweep(SerialExecutor()))
    parallel_report = None

    def run_parallel():
        nonlocal parallel_report
        parallel_report = sweep(ProcessPoolExecutorBackend(workers=WORKERS))

    benchmark.pedantic(run_parallel, rounds=1, iterations=1)
    parallel_seconds = benchmark.stats["mean"]

    _assert_reports_identical(serial_report, parallel_report)
    speedup = serial_seconds / parallel_seconds

    print()
    print(f"E12 — Table I sweep, {len(PAPER_K_VALUES)} K values")
    print(f"serial:              {serial_seconds:8.2f} s")
    print(f"process x{WORKERS}:          {parallel_seconds:8.2f} s")
    print(f"speedup:             {speedup:8.2f} x"
          f"   ({os.cpu_count()} cores on this host)")

    _record(
        "table1_sweep",
        {
            "k_values": list(PAPER_K_VALUES),
            "serial_seconds": serial_seconds,
            "process_seconds": parallel_seconds,
            "workers": WORKERS,
            "speedup": speedup,
            "identical_reports": True,
        },
    )
    benchmark.extra_info["speedup"] = speedup

    # Payload accounting: what one sweep task pickles with the matrix
    # inline (the pre-shared-memory transport) vs. with a ~100-byte
    # segment handle. This is the quantity the transport optimises and
    # the one a 1-core host can still measure honestly.
    matrix = np.ascontiguousarray(paper_matrix)
    probe = KMeansOptimizer(
        k_values=PAPER_K_VALUES, n_folds=10, seed=BENCH_SEED
    )
    inline_bytes = payload_bytes(
        TaskSpec(  # adalint: disable=ADA014,ADA019 - measuring the bad path; model_factory hole is by design
            _evaluate_k_task, (probe, matrix, PAPER_K_VALUES[0])
        )
    )
    with SharedMatrix.create(matrix) as segment:
        shared_bytes = payload_bytes(
            TaskSpec(  # adalint: disable=ADA019 - model_factory hole is by design
                _evaluate_k_task,
                (probe, segment.handle(), PAPER_K_VALUES[0]),
            )
        )
    reduction = inline_bytes / shared_bytes
    print(f"payload (pickled matrix):   {inline_bytes:>12,} B/task")
    print(f"payload (shared handle):    {shared_bytes:>12,} B/task")
    print(f"payload reduction:          {reduction:11.1f} x")

    _record(
        "table1_sweep_payload",
        {
            "matrix_shape": list(matrix.shape),
            "inline_bytes_per_task": inline_bytes,
            "shared_handle_bytes_per_task": shared_bytes,
            "reduction": reduction,
            "serial_seconds": serial_seconds,
            "process_seconds": parallel_seconds,
            "speedup": speedup,
            "workers": WORKERS,
        },
        path=BLOCKS_RESULT_PATH,
    )

    assert reduction >= PAYLOAD_REDUCTION_FLOOR
    cores = os.cpu_count() or 1
    if cores >= SPEEDUP_MIN_CORES:
        assert speedup >= 2.0
    else:
        # A single- or dual-core host cannot express the parallelism;
        # the payload-reduction assertion above is the meaningful
        # measurement there.
        print(f"speedup assertion skipped: only {cores} core(s)")


def test_warm_cache_analyze(paper_log, benchmark):
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(6, 8, 10), n_folds=5, use_cache=True
        ),
        seed=BENCH_SEED,
    )

    cold, cold_seconds = _timed(
        lambda: engine.analyze(paper_log, name="cold", user="bench")
    )
    warm = None

    def run_warm():
        nonlocal warm
        warm = engine.analyze(paper_log, name="warm", user="bench")

    benchmark.pedantic(run_warm, rounds=1, iterations=1)
    warm_seconds = benchmark.stats["mean"]
    ratio = warm_seconds / cold_seconds

    signature = lambda result: [  # noqa: E731
        (item.kind, item.title, item.score) for item in result.items
    ]
    assert signature(warm) == signature(cold)
    assert engine.cache.hits >= len(warm.runs)

    print()
    print("E12 — repeated analyze() with the analysis cache")
    print(f"cold: {cold_seconds:8.2f} s")
    print(f"warm: {warm_seconds:8.2f} s   ({ratio * 100:.1f} % of cold)")
    print(f"cache: {engine.cache.stats()}")

    _record(
        "warm_cache_analyze",
        {
            "cold_seconds": cold_seconds,
            "warm_seconds": warm_seconds,
            "ratio": ratio,
            "cache": engine.cache.stats(),
        },
    )
    benchmark.extra_info["warm_over_cold"] = ratio

    assert ratio <= 0.25
