"""E11 — end-to-end: the full engine on the paper-scale dataset.

The headline demonstration: one `analyze()` call on the 6,380-patient
log drives every architecture component — characterisation, end-goal
selection, partial mining, the K optimiser, all seven goal pipelines,
interestingness scoring, ranking and K-DB persistence — and returns a
manageable ranked knowledge set, "with minimal user intervention".
"""

from __future__ import annotations

import pytest

from repro.core import ADAHealth, EngineConfig

from conftest import BENCH_SEED


def test_full_engine_paper_scale(paper_log, benchmark):
    def run():
        engine = ADAHealth(
            config=EngineConfig(k_values=(6, 8, 10), n_folds=5),
            seed=BENCH_SEED,
        )
        return engine, engine.analyze(
            paper_log, name="paper-scale", user="bench"
        )

    engine, result = benchmark.pedantic(run, rounds=1, iterations=1)

    print()
    print("E11 — full automated analysis, 6,380 patients")
    print(result.summary())
    print()
    counts = engine.kdb.counts()
    print(f"K-DB: {counts}")
    stats = engine.kdb.statistics()
    print("items by kind:")
    for row in stats["items_by_kind"]:
        print(
            f"  {row['_id']:<18} {row['count']:>4}"
            f"  mean score {row['mean_score']:.3f}"
        )

    # Every viable goal ran; a manageable, fully-annotated item set.
    ran = {run_.goal.name for run_ in result.runs}
    viable = {a.goal.name for a in result.assessments if a.viable}
    assert ran == viable
    assert len(ran) == 7
    assert 10 <= len(result.items) <= 200
    assert all(item.degree is not None for item in result.items)
    assert counts["discovered_knowledge"] == len(result.items)
    benchmark.extra_info["n_items"] = len(result.items)
    benchmark.extra_info["goals"] = sorted(ran)
