#!/usr/bin/env sh
# The repository gate: adalint, then the tier-1 test suite.
# Usage: scripts/check.sh [extra pytest args...]
# Mirrors .github/workflows/check.yml so local runs and CI agree.
set -eu

cd "$(dirname "$0")/.."

echo "==> adalint (src/ benchmarks/ examples/)"
# Emit the SARIF log first (for the CI artifact upload) even when
# there are findings, then the human report with parse/cache stats;
# the gate fails afterwards if either run reported anything.
lint_status=0
PYTHONPATH=src python -m repro.lint --format sarif >adalint.sarif \
    || lint_status=$?
PYTHONPATH=src python -m repro.lint --stats || lint_status=$?
echo "==> lint stats: $(python - <<'EOF'
import json
doc = json.load(open("adalint.sarif"))
run = doc["runs"][0]
print(
    f"{len(run['results'])} findings across"
    f" {len(run['tool']['driver']['rules'])} rules"
    f" (SARIF {doc['version']} -> adalint.sarif)"
)
EOF
)"
[ "$lint_status" -eq 0 ]

echo "==> chaos suite (seeded fault injection)"
PYTHONPATH=src python -m pytest -x -q -m faults

echo "==> block-identity smoke (out-of-core data plane)"
PYTHONPATH=src python -m pytest -x -q -m blocks

echo "==> K-DB scale smoke (sharded store + planner)"
PYTHONPATH=src python -m pytest -x -q -m kdb_scale benchmarks/test_kdb_scale.py

echo "==> tier-1 tests"
PYTHONPATH=src python -m pytest -x -q "$@"
