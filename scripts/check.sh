#!/usr/bin/env sh
# The repository gate: adalint, then the tier-1 test suite.
# Usage: scripts/check.sh [extra pytest args...]
# Mirrors .github/workflows/check.yml so local runs and CI agree.
set -eu

cd "$(dirname "$0")/.."

echo "==> purity certificates (byte-stable reproduction)"
# Re-emit the adalint/certificates/v1 artifact and compare against the
# committed copy: any semantic drift in src/ must come with a
# re-emitted artifact in the same change.
PYTHONPATH=src python -m repro.lint --emit-certs \
    --certs-path certificates.regen.json >/dev/null
if ! cmp -s contracts/certificates.json certificates.regen.json; then
    echo "error: contracts/certificates.json is stale —" \
         "re-run: PYTHONPATH=src python -m repro.lint --emit-certs" >&2
    rm -f certificates.regen.json
    exit 1
fi
rm -f certificates.regen.json

echo "==> adalint (src/ benchmarks/ examples/)"
# Emit the SARIF log first (for the CI artifact upload) even when
# there are findings, then the human report with parse/cache stats;
# the gate fails afterwards if either run reported anything. The
# baseline diff (adalint.diff.sarif) carries only findings new since
# the committed baseline, when one exists.
lint_status=0
PYTHONPATH=src python -m repro.lint --format sarif >adalint.sarif \
    || lint_status=$?
if [ -f contracts/adalint.baseline.sarif ]; then
    PYTHONPATH=src python -m repro.lint --format sarif \
        --baseline contracts/adalint.baseline.sarif \
        >adalint.diff.sarif || true
fi
PYTHONPATH=src python -m repro.lint --stats || lint_status=$?
echo "==> lint stats: $(python - <<'EOF'
import json
doc = json.load(open("adalint.sarif"))
run = doc["runs"][0]
print(
    f"{len(run['results'])} findings across"
    f" {len(run['tool']['driver']['rules'])} rules"
    f" (SARIF {doc['version']} -> adalint.sarif)"
)
EOF
)"
[ "$lint_status" -eq 0 ]

echo "==> chaos suite (seeded fault injection)"
PYTHONPATH=src python -m pytest -x -q -m faults

echo "==> block-identity smoke (out-of-core data plane)"
PYTHONPATH=src python -m pytest -x -q -m blocks

echo "==> K-DB scale smoke (sharded store + planner)"
PYTHONPATH=src python -m pytest -x -q -m kdb_scale benchmarks/test_kdb_scale.py

echo "==> crash-consistency sweep (fault injection + fsck recovery)"
PYTHONPATH=src python -m pytest -x -q -m crash

echo "==> tier-1 tests"
PYTHONPATH=src python -m pytest -x -q "$@"
