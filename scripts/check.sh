#!/usr/bin/env sh
# The repository gate: adalint, then the tier-1 test suite.
# Usage: scripts/check.sh [extra pytest args...]
# Mirrors .github/workflows/check.yml so local runs and CI agree.
set -eu

cd "$(dirname "$0")/.."

echo "==> adalint (src/ benchmarks/ examples/)"
PYTHONPATH=src python -m repro.lint --stats

echo "==> chaos suite (seeded fault injection)"
PYTHONPATH=src python -m pytest -x -q -m faults

echo "==> block-identity smoke (out-of-core data plane)"
PYTHONPATH=src python -m pytest -x -q -m blocks

echo "==> K-DB scale smoke (sharded store + planner)"
PYTHONPATH=src python -m pytest -x -q -m kdb_scale benchmarks/test_kdb_scale.py

echo "==> tier-1 tests"
PYTHONPATH=src python -m pytest -x -q "$@"
