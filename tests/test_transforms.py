"""Tests for scaling transforms and pipelines."""

import numpy as np
import pytest

from repro.exceptions import NotFittedError, PreprocessError
from repro.preprocess import (
    IdentityTransform,
    L1Normalizer,
    L2Normalizer,
    MinMaxScaler,
    StandardScaler,
    TransformPipeline,
    make_transform,
)


@pytest.fixture()
def matrix():
    rng = np.random.default_rng(0)
    return np.abs(rng.normal(size=(20, 5))) * 10


def test_identity_copies(matrix):
    out = IdentityTransform().fit_transform(matrix)
    assert np.array_equal(out, matrix)
    out[0, 0] = -1
    assert matrix[0, 0] != -1


def test_l2_unit_rows(matrix):
    out = L2Normalizer().fit_transform(matrix)
    norms = np.linalg.norm(out, axis=1)
    assert np.allclose(norms, 1.0)


def test_l2_zero_rows_stay_zero():
    data = np.array([[0.0, 0.0], [3.0, 4.0]])
    out = L2Normalizer().transform(data)
    assert np.allclose(out[0], 0.0)
    assert np.allclose(out[1], [0.6, 0.8])


def test_l1_rows_sum_to_one(matrix):
    out = L1Normalizer().fit_transform(matrix)
    assert np.allclose(np.abs(out).sum(axis=1), 1.0)


def test_minmax_range(matrix):
    scaler = MinMaxScaler()
    out = scaler.fit_transform(matrix)
    assert out.min() == pytest.approx(0.0)
    assert out.max() == pytest.approx(1.0)
    assert np.allclose(out.min(axis=0), 0.0)
    assert np.allclose(out.max(axis=0), 1.0)


def test_minmax_constant_column_is_zero():
    data = np.array([[1.0, 5.0], [1.0, 7.0]])
    out = MinMaxScaler().fit_transform(data)
    assert np.allclose(out[:, 0], 0.0)


def test_minmax_uses_fitted_statistics():
    scaler = MinMaxScaler().fit(np.array([[0.0], [10.0]]))
    out = scaler.transform(np.array([[20.0]]))
    assert out[0, 0] == pytest.approx(2.0)


def test_zscore_standardises(matrix):
    out = StandardScaler().fit_transform(matrix)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-10)
    assert np.allclose(out.std(axis=0), 1.0)


def test_zscore_constant_column():
    data = np.array([[2.0], [2.0], [2.0]])
    out = StandardScaler().fit_transform(data)
    assert np.allclose(out, 0.0)


def test_unfitted_scalers_raise(matrix):
    with pytest.raises(NotFittedError):
        MinMaxScaler().transform(matrix)
    with pytest.raises(NotFittedError):
        StandardScaler().transform(matrix)


def test_make_transform_by_name():
    assert isinstance(make_transform("l2"), L2Normalizer)
    assert isinstance(make_transform("identity"), IdentityTransform)
    with pytest.raises(PreprocessError):
        make_transform("quantile")


def test_pipeline_applies_in_order(matrix):
    pipeline = TransformPipeline(["minmax", "l2"])
    out = pipeline.fit_transform(matrix)
    assert np.allclose(np.linalg.norm(out, axis=1), 1.0)
    assert pipeline.name == "minmax+l2"


def test_pipeline_accepts_instances(matrix):
    pipeline = TransformPipeline([MinMaxScaler(), L2Normalizer()])
    assert pipeline.fit_transform(matrix).shape == matrix.shape


def test_pipeline_transform_reuses_fit(matrix):
    pipeline = TransformPipeline(["minmax"])
    pipeline.fit(matrix)
    out = pipeline.transform(matrix * 2)
    # Max of doubled data exceeds the fitted max -> values above 1.
    assert out.max() > 1.0
