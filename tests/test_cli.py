"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.data import load_jsonl, save_jsonl, small_dataset


@pytest.fixture()
def dataset_path(tiny_log, tmp_path):
    path = tmp_path / "cohort.jsonl"
    save_jsonl(tiny_log, path)
    return str(path)


def run(capsys, *argv):
    code = main(list(argv))
    output = capsys.readouterr().out
    return code, output


def test_figure1(capsys):
    code, output = run(capsys, "figure1")
    assert code == 0
    assert "ADA-HEALTH architecture" in output
    assert "kdb" in output


def test_generate_jsonl(capsys, tmp_path):
    target = tmp_path / "out.jsonl"
    code, output = run(
        capsys,
        "generate",
        str(target),
        "--patients", "80",
        "--exam-types", "20",
        "--records", "1200",
        "--seed", "2",
    )
    assert code == 0
    assert "80 patients" in output
    log = load_jsonl(target)
    assert log.n_patients == 80
    assert log.n_exam_types == 20


def test_generate_csv(capsys, tmp_path):
    target = tmp_path / "csvdir"
    code, __ = run(
        capsys,
        "generate",
        str(target),
        "--patients", "60",
        "--exam-types", "20",
        "--records", "900",
        "--format", "csv",
    )
    assert code == 0
    assert (target / "records.csv").exists()
    assert (target / "exam_types.csv").exists()


def test_describe_file(capsys, dataset_path):
    code, output = run(capsys, "describe", dataset_path)
    assert code == 0
    assert "patients      : 60" in output
    assert "sparsity" in output
    assert "most frequent exams:" in output


def test_describe_synthetic(capsys):
    code, output = run(capsys, "describe", "--synthetic", "100")
    assert code == 0
    assert "patients      : 100" in output


def test_describe_without_dataset_errors(capsys):
    with pytest.raises(SystemExit):
        main(["describe"])


def test_analyze(capsys):
    code, output = run(
        capsys, "analyze", "--synthetic", "200", "--top", "4",
    )
    assert code == 0
    assert "end-goals:" in output
    assert "top 4 knowledge items:" in output
    assert "  1. [" in output


def test_analyze_restricted_goal(capsys):
    code, output = run(
        capsys,
        "analyze",
        "--synthetic", "200",
        "--goal", "co-prescription-patterns",
        "--top", "2",
    )
    assert code == 0
    assert "[itemset]" in output
    assert "[cluster" not in output


def test_table1_small(capsys, dataset_path):
    code, output = run(
        capsys, "table1", dataset_path, "--k", "3", "4", "--folds", "3",
    )
    assert code == 0
    assert "SSE" in output
    assert "selected K =" in output


def test_partial(capsys, dataset_path):
    code, output = run(capsys, "partial", dataset_path)
    assert code == 0
    assert "selected subset" in output


def test_kdb_stats_and_compact(capsys, tmp_path):
    import json

    from repro.kdb.shards import ShardedDocumentStore

    directory = tmp_path / "kdb"
    store = ShardedDocumentStore(directory, n_shards=2)
    store["c"].insert_many([{"x": i} for i in range(5)])
    store.close()

    code, output = run(capsys, "kdb", "stats", str(directory))
    assert code == 0
    stats = json.loads(output)
    assert stats["c"]["documents"] == 5
    assert stats["c"]["pending_ops"] == 5

    code, output = run(capsys, "kdb", "compact", str(directory))
    assert code == 0
    assert "folded 5 pending op(s)" in output

    code, output = run(capsys, "kdb", "stats", str(directory))
    assert code == 0
    assert json.loads(output)["c"]["pending_ops"] == 0


def test_kdb_stats_missing_directory(capsys, tmp_path):
    code = main(["kdb", "stats", str(tmp_path / "nowhere")])
    err = capsys.readouterr().err
    assert code == 1
    assert "no sharded K-DB" in err


def test_kdb_fsck_detects_and_repairs(capsys, tmp_path):
    import json

    from repro.kdb.shards import ShardedDocumentStore

    directory = tmp_path / "kdb"
    store = ShardedDocumentStore(directory, n_shards=2)
    store["c"].insert_many([{"x": i} for i in range(8)])
    store.close()

    code, output = run(capsys, "kdb", "fsck", str(directory))
    assert code == 0
    assert "clean" in output

    # tear the tail of a non-empty shard log
    victim = next(
        path
        for path in sorted(directory.glob("c.shard-*.log.jsonl"))
        if path.stat().st_size > 4
    )
    victim.write_bytes(victim.read_bytes()[:-4])

    code, output = run(capsys, "kdb", "fsck", str(directory))
    assert code == 1
    assert "torn" in output

    code, output = run(
        capsys, "kdb", "fsck", str(directory), "--repair", "--json"
    )
    assert code == 0
    report = json.loads(output)
    assert report["ok"] is True
    assert any(issue["repaired"] for issue in report["issues"])

    code, output = run(capsys, "kdb", "fsck", str(directory))
    assert code == 0


def test_shm_ls_and_reap(capsys):
    code, output = run(capsys, "shm", "ls")
    assert code == 0
    code, output = run(capsys, "shm", "reap")
    assert code == 0
    assert "reaped 0 segment(s)" in output
