"""Property-based tests for mining algorithms and metrics (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.mining import (
    KMeans,
    accuracy,
    adjusted_rand_index,
    apriori,
    confusion_matrix,
    cosine_similarity,
    fpgrowth,
    overall_similarity,
    precision_recall_f1,
    squared_euclidean,
    sse,
)
from repro.mining.kdtree import KDTree

matrices = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(4, 25), st.integers(1, 6)),
    elements=st.floats(-50, 50, allow_nan=False).map(
        lambda x: round(x, 3)
    ),
)


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_squared_euclidean_symmetry_and_diagonal(matrix):
    distances = squared_euclidean(matrix, matrix)
    assert np.allclose(distances, distances.T, atol=1e-6)
    assert np.allclose(np.diag(distances), 0.0, atol=1e-6)
    assert (distances >= 0).all()


@given(matrices)
@settings(max_examples=40, deadline=None)
def test_cosine_similarity_bounds(matrix):
    sims = cosine_similarity(matrix)
    assert (sims <= 1.0 + 1e-9).all()
    assert (sims >= -1.0 - 1e-9).all()
    assert np.allclose(sims, sims.T, atol=1e-9)


@given(matrices, st.integers(1, 4))
@settings(max_examples=25, deadline=None)
def test_kmeans_invariants(matrix, n_clusters):
    n_clusters = min(n_clusters, matrix.shape[0])
    model = KMeans(n_clusters, seed=0, n_init=1, max_iter=20).fit(matrix)
    # Every point assigned, labels in range, SSE consistent and finite.
    assert model.labels_.shape == (matrix.shape[0],)
    assert set(np.unique(model.labels_)) <= set(range(n_clusters))
    assert np.isfinite(model.inertia_)
    recomputed = sse(matrix, model.labels_, centers=model.cluster_centers_)
    assert np.isclose(model.inertia_, recomputed, rtol=1e-6, atol=1e-6)
    # Assignment is nearest-centre: no point is closer to another centre.
    distances = squared_euclidean(matrix, model.cluster_centers_)
    chosen = distances[np.arange(len(matrix)), model.labels_]
    assert (chosen <= distances.min(axis=1) + 1e-8).all()


@given(matrices)
@settings(max_examples=25, deadline=None)
def test_kdtree_nn_is_exact(matrix):
    tree = KDTree(matrix, leaf_size=4)
    for i in range(0, matrix.shape[0], 5):
        __, indexes = tree.query(matrix[i], k=1)
        brute = np.linalg.norm(matrix - matrix[i], axis=1)
        assert brute[indexes[0]] <= brute.min() + 1e-9


@given(
    npst.arrays(
        dtype=np.float64,
        shape=st.tuples(st.integers(3, 20), st.integers(1, 5)),
        elements=st.floats(0, 30, allow_nan=False).map(
            lambda x: round(x, 3)
        ),
    ),
    st.integers(1, 4),
)
@settings(max_examples=30, deadline=None)
def test_overall_similarity_bounds_nonnegative_data(matrix, k):
    labels = np.arange(matrix.shape[0]) % k
    value = overall_similarity(matrix, labels)
    assert -1e-9 <= value <= 1.0 + 1e-9
    exact = overall_similarity(matrix, labels, exact=True)
    assert np.isclose(value, exact, atol=1e-8)


@given(st.lists(st.integers(0, 4), min_size=2, max_size=40))
@settings(max_examples=40, deadline=None)
def test_ari_self_is_one_or_degenerate(labels):
    labels = np.array(labels)
    assert adjusted_rand_index(labels, labels) == 1.0


@given(
    st.lists(st.integers(0, 3), min_size=1, max_size=40),
    st.lists(st.integers(0, 3), min_size=1, max_size=40),
)
@settings(max_examples=40, deadline=None)
def test_classification_metric_bounds(y_true, y_pred):
    size = min(len(y_true), len(y_pred))
    y_true, y_pred = y_true[:size], y_pred[:size]
    assert 0.0 <= accuracy(y_true, y_pred) <= 1.0
    for average in ("macro", "micro", "weighted"):
        precision, recall, f1 = precision_recall_f1(
            y_true, y_pred, average
        )
        assert 0.0 <= precision <= 1.0
        assert 0.0 <= recall <= 1.0
        assert 0.0 <= f1 <= 1.0
    matrix, __ = confusion_matrix(y_true, y_pred)
    assert matrix.sum() == size


# ----------------------------------------------------------------------
# itemset miners
# ----------------------------------------------------------------------
item_pool = st.sampled_from(list("abcdef"))
transaction_dbs = st.lists(
    st.lists(item_pool, min_size=0, max_size=5),
    min_size=1,
    max_size=25,
)


@given(transaction_dbs, st.floats(0.1, 1.0))
@settings(max_examples=50, deadline=None)
def test_apriori_fpgrowth_equivalence(transactions, min_support):
    a = {s.items: s.count for s in apriori(transactions, min_support)}
    f = {s.items: s.count for s in fpgrowth(transactions, min_support)}
    assert a == f


@given(transaction_dbs, st.floats(0.1, 0.9))
@settings(max_examples=40, deadline=None)
def test_itemset_supports_are_true_counts(transactions, min_support):
    sets = [frozenset(t) for t in transactions]
    for itemset in fpgrowth(transactions, min_support):
        true_count = sum(1 for t in sets if itemset.items <= t)
        assert itemset.count == true_count
        assert itemset.count >= min_support * len(transactions) - 1e-9


@given(transaction_dbs)
@settings(max_examples=30, deadline=None)
def test_higher_support_yields_subset(transactions):
    low = {s.items for s in fpgrowth(transactions, 0.2)}
    high = {s.items for s in fpgrowth(transactions, 0.6)}
    assert high <= low
