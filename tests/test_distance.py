"""Tests for distance/similarity primitives."""

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining.distance import (
    as_matrix,
    cosine_distance,
    cosine_similarity,
    euclidean,
    manhattan,
    pairwise_distances,
    row_norms,
    squared_euclidean,
)


def test_as_matrix_validates_shape():
    with pytest.raises(MiningError):
        as_matrix(np.zeros(5))
    with pytest.raises(MiningError):
        as_matrix(np.zeros((0, 3)))
    with pytest.raises(MiningError):
        as_matrix([[np.nan, 1.0]])


def test_squared_euclidean_matches_naive():
    rng = np.random.default_rng(1)
    a = rng.normal(size=(10, 4))
    b = rng.normal(size=(7, 4))
    fast = squared_euclidean(a, b)
    naive = ((a[:, None, :] - b[None, :, :]) ** 2).sum(axis=2)
    assert np.allclose(fast, naive)


def test_squared_euclidean_never_negative():
    a = np.array([[1e8, 1e-8], [1e8, 1e-8]])
    distances = squared_euclidean(a, a)
    assert (distances >= 0).all()


def test_euclidean_zero_diagonal():
    rng = np.random.default_rng(2)
    a = rng.normal(size=(6, 3))
    assert np.allclose(np.diag(euclidean(a, a)), 0.0, atol=1e-6)


def test_manhattan_matches_naive():
    rng = np.random.default_rng(3)
    a = rng.normal(size=(5, 3))
    b = rng.normal(size=(4, 3))
    naive = np.abs(a[:, None, :] - b[None, :, :]).sum(axis=2)
    assert np.allclose(manhattan(a, b), naive)


def test_row_norms():
    a = np.array([[3.0, 4.0], [0.0, 0.0]])
    assert np.allclose(row_norms(a), [5.0, 0.0])


def test_cosine_similarity_bounds_and_self():
    rng = np.random.default_rng(4)
    a = rng.normal(size=(8, 5))
    sims = cosine_similarity(a)
    assert np.allclose(np.diag(sims), 1.0)
    assert (sims <= 1.0 + 1e-12).all()
    assert (sims >= -1.0 - 1e-12).all()


def test_cosine_similarity_zero_rows_are_zero():
    a = np.array([[0.0, 0.0], [1.0, 0.0]])
    sims = cosine_similarity(a)
    assert sims[0, 0] == 0.0
    assert sims[0, 1] == 0.0


def test_cosine_scale_invariance():
    a = np.array([[1.0, 2.0, 3.0]])
    b = np.array([[2.0, 4.0, 6.0]])
    assert np.allclose(cosine_similarity(a, b), 1.0)
    assert np.allclose(cosine_distance(a, b), 0.0)


def test_pairwise_dispatch_and_unknown_metric():
    a = np.ones((2, 2))
    for metric in ("euclidean", "sqeuclidean", "manhattan", "cosine"):
        result = pairwise_distances(a, metric=metric)
        assert result.shape == (2, 2)
    with pytest.raises(MiningError):
        pairwise_distances(a, metric="hamming")


def test_orthogonal_vectors_cosine():
    a = np.array([[1.0, 0.0], [0.0, 1.0]])
    sims = cosine_similarity(a)
    assert np.allclose(sims[0, 1], 0.0)
