"""Tests for the sharded K-DB persistence layer and query planner
round-trip properties: shard placement, journal replay, compaction
crash-safety, and Hypothesis identity properties (save/load/compact
round trips; planner-vs-scan result equality on randomized queries)."""

import json
import os
import subprocess
import sys
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StoreError
from repro.kdb.documentstore import DocumentStore
from repro.kdb.kdb import DISCOVERED_KNOWLEDGE, KnowledgeBase
from repro.kdb.shards import ShardedDocumentStore, shard_of


@pytest.fixture()
def sharded(tmp_path):
    return ShardedDocumentStore(tmp_path / "db", n_shards=4)


def _reopen(store: ShardedDocumentStore) -> ShardedDocumentStore:
    store.close()
    return ShardedDocumentStore(store.directory)


def _contents(store, name="c"):
    return {
        json.dumps(doc["_id"], sort_keys=True): doc
        for doc in store[name].find()
    }


# ----------------------------------------------------------------------
# shard placement
# ----------------------------------------------------------------------
def test_shard_of_is_stable_and_in_range():
    for doc_id in (0, 1, "abc", 3.5, True, None, [1, 2], {"k": "v"}):
        shard = shard_of(doc_id, 8)
        assert 0 <= shard < 8
        assert shard == shard_of(doc_id, 8)


def test_shard_of_spreads_ids():
    shards = {shard_of(i, 8) for i in range(200)}
    assert len(shards) == 8


def test_invalid_shard_count_rejected(tmp_path):
    with pytest.raises(StoreError):
        ShardedDocumentStore(tmp_path / "db", n_shards=0)


# ----------------------------------------------------------------------
# journal + replay
# ----------------------------------------------------------------------
def test_inserts_replay_after_reopen(sharded):
    sharded["c"].insert_many([{"x": i} for i in range(20)])
    reopened = _reopen(sharded)
    assert len(reopened["c"]) == 20
    assert _contents(reopened) == {
        json.dumps(i + 1): {"_id": i + 1, "x": i} for i in range(20)
    }
    assert reopened.load_warnings == []


def test_updates_and_deletes_replay(sharded):
    collection = sharded["c"]
    collection.insert_many([{"_id": i, "n": i} for i in range(10)])
    collection.update_many({"n": {"$gte": 5}}, {"$inc": {"n": 100}})
    collection.delete_many({"n": {"$lt": 3}})
    expected = _contents(sharded)
    reopened = _reopen(sharded)
    assert _contents(reopened) == expected


def test_clear_replays_across_all_shards(sharded):
    collection = sharded["c"]
    collection.insert_many([{"_id": i} for i in range(16)])
    collection.drop()
    collection.insert_one({"_id": 99, "after": True})
    reopened = _reopen(sharded)
    assert _contents(reopened) == {
        "99": {"_id": 99, "after": True}
    }


def test_indexes_persist_in_manifest(sharded):
    collection = sharded["c"]
    collection.insert_many([{"n": i} for i in range(5)])
    collection.create_index("n", kind="sorted")
    reopened = _reopen(sharded)
    assert reopened["c"].index_names() == ["n_1"]
    assert reopened["c"].explain({"n": {"$gt": 2}}).kind == "range"


def test_new_ids_continue_after_replay(sharded):
    sharded["c"].insert_many([{}, {}, {}])
    reopened = _reopen(sharded)
    assert reopened["c"].insert_one({}) == 4


def test_torn_log_tail_is_truncated_silently(sharded):
    sharded["c"].insert_many([{"_id": i} for i in range(8)])
    sharded.close()
    # chop bytes off one shard log, as a crash mid-append would
    logs = sorted(sharded.directory.glob("c.shard-*.log.jsonl"))
    victim = next(path for path in logs if path.stat().st_size > 0)
    victim.write_bytes(victim.read_bytes()[:-5])
    reopened = ShardedDocumentStore(sharded.directory)
    # exactly the in-flight record is lost — expected, silent, metered
    assert len(reopened["c"]) == 7
    assert reopened.load_warnings == []
    assert reopened.recovery_stats["torn_tail"] == 1
    assert reopened.degraded_collections == set()
    # the torn bytes were physically truncated away
    tail = victim.read_bytes()
    assert tail == b"" or tail.endswith(b"\n")
    reopened.close()


def test_interior_corruption_is_quarantined_not_dropped(sharded):
    # Regression for the PR 7 behavior where *any* undecodable line
    # was skipped into load_warnings: damage in the middle of a log
    # must be preserved and flagged, never silently shortened away.
    sharded["c"].insert_many([{"_id": i} for i in range(8)])
    sharded.close()
    logs = sorted(sharded.directory.glob("c.shard-*.log.jsonl"))
    victim = next(
        path
        for path in logs
        if len(path.read_bytes().splitlines()) >= 3
    )
    lines = victim.read_bytes().splitlines(True)
    lines[1] = b"XX" + lines[1][2:]  # flip bytes in an interior record
    victim.write_bytes(b"".join(lines))
    reopened = ShardedDocumentStore(sharded.directory)
    assert reopened.recovery_stats["quarantined"] >= 1
    assert "c" in reopened.degraded_collections
    assert any("quarantined" in w for w in reopened.load_warnings)
    sidecar = next(
        sharded.directory.glob("c.shard-*.quarantine.jsonl")
    )
    entries = [
        json.loads(line) for line in sidecar.read_text().splitlines()
    ]
    assert entries and entries[0]["source"] == victim.name
    assert reopened.stats()["c"]["degraded"] is True
    # reopening again must not duplicate sidecar entries
    reopened.close()
    again = ShardedDocumentStore(sharded.directory)
    assert len(sidecar.read_text().splitlines()) == len(entries)
    # compaction rewrites clean bases and clears the degraded flag
    again.compact()
    assert again.degraded_collections == set()
    again.close()
    clean = ShardedDocumentStore(sharded.directory)
    assert clean.recovery_stats["quarantined"] == 0
    clean.close()


# ----------------------------------------------------------------------
# compaction
# ----------------------------------------------------------------------
def test_compact_folds_logs_into_bases(sharded):
    collection = sharded["c"]
    collection.insert_many([{"_id": i, "n": i} for i in range(30)])
    collection.delete_many({"n": {"$lt": 10}})
    expected = _contents(sharded)
    assert sharded.pending_ops() > 0
    sharded.compact()
    assert sharded.pending_ops() == 0
    assert sharded.stats()["c"]["log_bytes"] == 0
    assert sharded.stats()["c"]["base_bytes"] > 0
    reopened = _reopen(sharded)
    assert _contents(reopened) == expected


def test_stale_log_replays_idempotently_over_compacted_base(sharded):
    """A crash window leaves both the new bases and the old logs: the
    replay of the full log over the compacted base must converge."""
    collection = sharded["c"]
    collection.insert_many([{"_id": i, "n": i} for i in range(12)])
    collection.drop()
    collection.insert_many([{"_id": i, "n": -i} for i in range(6)])
    collection.delete_one({"_id": 3})
    expected = _contents(sharded)
    sharded.close()
    # preserve the pre-compaction logs, compact, then put them back
    logs = {
        path.name: path.read_bytes()
        for path in sharded.directory.glob("c.shard-*.log.jsonl")
    }
    store = ShardedDocumentStore(sharded.directory)
    store.compact()
    store.close()
    for name, blob in logs.items():
        (sharded.directory / name).write_bytes(blob)
    recovered = ShardedDocumentStore(sharded.directory)
    assert _contents(recovered) == expected


def test_auto_compaction_threshold(tmp_path):
    store = ShardedDocumentStore(
        tmp_path / "db", n_shards=2, auto_compact_ops=10
    )
    store["c"].insert_many([{} for _ in range(25)])
    assert store.pending_ops() < 10
    reopened = _reopen(store)
    assert len(reopened["c"]) == 25


def test_background_compaction_thread(tmp_path):
    store = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    store["c"].insert_many([{} for _ in range(10)])
    store.start_background_compaction(interval_s=0.05, min_pending=1)
    deadline = threading.Event()
    for _ in range(100):
        if store.pending_ops() == 0:
            break
        deadline.wait(0.05)
    store.stop_background_compaction()
    assert store.pending_ops() == 0
    assert len(_reopen(store)["c"]) == 10


def test_compact_single_collection(sharded):
    sharded["a"].insert_one({})
    sharded["b"].insert_one({})
    sharded.compact("a")
    assert sharded.pending_ops("a") == 0
    assert sharded.pending_ops("b") > 0


# ----------------------------------------------------------------------
# single-writer pid lockfile
# ----------------------------------------------------------------------
def test_second_opener_gets_a_clear_store_error(tmp_path):
    with ShardedDocumentStore(tmp_path / "db") as store:
        store["c"].insert_one({"x": 1})
        with pytest.raises(StoreError, match="already open"):
            ShardedDocumentStore(tmp_path / "db")
    # released on close: reopening afterwards is fine
    assert len(ShardedDocumentStore(tmp_path / "db")["c"]) == 1


def test_lockfile_written_and_removed(tmp_path):
    lockfile = tmp_path / "db" / "_shards.lock"
    store = ShardedDocumentStore(tmp_path / "db")
    assert lockfile.exists()
    assert int(lockfile.read_text()) == os.getpid()
    store.close()
    assert not lockfile.exists()


def test_stale_lock_from_dead_process_is_broken(tmp_path):
    directory = tmp_path / "db"
    directory.mkdir()
    # A pid that cannot be alive: spawn-and-reap one so the id is
    # known-dead rather than guessed.
    probe = subprocess.run(
        [sys.executable, "-c", "import os; print(os.getpid())"],
        capture_output=True,
        text=True,
        check=True,
    )
    dead_pid = int(probe.stdout)
    (directory / "_shards.lock").write_text(f"{dead_pid}\n")
    store = ShardedDocumentStore(directory)  # stale lock broken
    store["c"].insert_one({"x": 1})
    store.close()


def test_garbage_lockfile_counts_as_stale(tmp_path):
    directory = tmp_path / "db"
    directory.mkdir()
    (directory / "_shards.lock").write_text("not-a-pid\n")
    store = ShardedDocumentStore(directory)
    store.close()


def test_live_foreign_holder_is_reported_by_pid(tmp_path):
    directory = tmp_path / "db"
    directory.mkdir()
    holder = subprocess.Popen([sys.executable, "-c", "input()"],
                              stdin=subprocess.PIPE)
    try:
        (directory / "_shards.lock").write_text(f"{holder.pid}\n")
        with pytest.raises(StoreError, match=str(holder.pid)):
            ShardedDocumentStore(directory)
    finally:
        holder.communicate(input=b"\n", timeout=10)


def test_failed_open_releases_the_lockfile(tmp_path):
    store = ShardedDocumentStore(tmp_path / "db")
    store.close()
    manifest_path = tmp_path / "db" / "_shards.json"
    layout = json.loads(manifest_path.read_text())
    layout["version"] = 999
    manifest_path.write_text(json.dumps(layout))
    with pytest.raises(StoreError):
        ShardedDocumentStore(tmp_path / "db")
    # the failed opener must not leave its lockfile behind
    assert not (tmp_path / "db" / "_shards.lock").exists()
    layout["version"] = 1
    manifest_path.write_text(json.dumps(layout))
    ShardedDocumentStore(tmp_path / "db").close()


# ----------------------------------------------------------------------
# close() vs the background compactor
# ----------------------------------------------------------------------
def test_close_stops_and_joins_the_compactor(tmp_path):
    store = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    store["c"].insert_many([{} for _ in range(5)])
    store.start_background_compaction(interval_s=0.01, min_pending=1)
    compactor = store._compactor
    assert compactor is not None and compactor.is_alive()
    store.close()
    assert store._compactor is None
    compactor.join(timeout=5.0)
    assert not compactor.is_alive()


def test_compaction_on_closed_store_raises(tmp_path):
    store = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    store["c"].insert_one({})
    store.close()
    with pytest.raises(StoreError):
        store.compact()
    with pytest.raises(StoreError):
        store.start_background_compaction(interval_s=0.01)


def test_close_then_reopen_never_races_compaction(tmp_path):
    # Regression: close() used to leave the daemon compactor running;
    # a reopen could then replay shards mid-rewrite. Hammer the
    # close/reopen cycle with an aggressive compactor and check every
    # reopen sees exactly the documents written so far.
    directory = tmp_path / "db"
    expected = {}
    store = ShardedDocumentStore(directory, n_shards=2)
    for round_no in range(5):
        docs = [{"_id": f"{round_no}-{i}", "r": round_no}
                for i in range(20)]
        store["c"].insert_many(docs)
        for doc in docs:
            expected[doc["_id"]] = doc["r"]
        store.start_background_compaction(
            interval_s=0.001, min_pending=1
        )
        # give the compactor a chance to be mid-flight at close
        store.pending_ops()
        store.close()
        store = ShardedDocumentStore(directory, n_shards=2)
        found = {
            doc["_id"]: doc["r"] for doc in store["c"].find()
        }
        assert found == expected
    store.close()


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def test_drop_collection_removes_files(sharded):
    sharded["c"].insert_many([{} for _ in range(5)])
    sharded.compact()
    assert list(sharded.directory.glob("c.shard-*"))
    sharded.drop_collection("c")
    assert not list(sharded.directory.glob("c.shard-*"))
    reopened = _reopen(sharded)
    assert "c" not in reopened.collection_names()


def test_closed_store_rejects_writes(sharded):
    sharded["c"].insert_one({})
    sharded.close()
    with pytest.raises(StoreError):
        sharded["c"].insert_one({})


def test_context_manager_closes(tmp_path):
    with ShardedDocumentStore(tmp_path / "db") as store:
        store["c"].insert_one({"x": 1})
    reopened = ShardedDocumentStore(tmp_path / "db")
    assert len(reopened["c"]) == 1


def test_unsupported_manifest_version_rejected(tmp_path):
    store = ShardedDocumentStore(tmp_path / "db")
    store.close()
    manifest_path = tmp_path / "db" / "_shards.json"
    layout = json.loads(manifest_path.read_text())
    layout["version"] = 999
    manifest_path.write_text(json.dumps(layout))
    with pytest.raises(StoreError):
        ShardedDocumentStore(tmp_path / "db")


# ----------------------------------------------------------------------
# KnowledgeBase on sharded storage
# ----------------------------------------------------------------------
def test_knowledge_base_open_sharded_round_trip(tmp_path):
    from repro.core.knowledge import KnowledgeItem

    kb = KnowledgeBase.open_sharded(tmp_path / "kdb", n_shards=4)
    item = KnowledgeItem(
        kind="cluster",
        end_goal="patient profiling",
        title="grp",
        score=0.9,
        payload={"k": 3},
    )
    kb.store_item(item)
    kb.compact()
    stats = kb.storage_stats()
    assert stats[DISCOVERED_KNOWLEDGE]["documents"] == 1
    assert stats[DISCOVERED_KNOWLEDGE]["pending_ops"] == 0
    kb.store.close()

    again = KnowledgeBase.open_sharded(tmp_path / "kdb", n_shards=4)
    assert [i.title for i in again.items()] == ["grp"]


def test_knowledge_base_storage_stats_in_memory():
    kb = KnowledgeBase()
    stats = kb.storage_stats()
    assert stats[DISCOVERED_KNOWLEDGE] == {"documents": 0}


# ----------------------------------------------------------------------
# property tests
# ----------------------------------------------------------------------
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**6), max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=8),
)

field_names = st.sampled_from(["a", "b", "c", "d"])

documents = st.dictionaries(
    field_names,
    st.one_of(scalars, st.lists(scalars, max_size=3)),
    max_size=4,
)


@given(st.lists(documents, max_size=15), st.integers(1, 5))
@settings(max_examples=25, deadline=None)
def test_property_shard_round_trip_identity(tmp_path_factory, docs, n):
    tmp = tmp_path_factory.mktemp("shards")
    store = ShardedDocumentStore(tmp / "db", n_shards=n)
    store["c"].insert_many(docs)
    expected = _contents(store)
    store.close()

    loaded = ShardedDocumentStore(tmp / "db")
    assert _contents(loaded) == expected
    loaded.compact()
    loaded.close()

    compacted = ShardedDocumentStore(tmp / "db")
    assert _contents(compacted) == expected
    assert compacted.load_warnings == []


operators = st.sampled_from(["$eq", "$gt", "$gte", "$lt", "$lte", "$in"])


@given(
    st.lists(documents, min_size=1, max_size=20),
    field_names,
    operators,
    scalars,
)
@settings(max_examples=60, deadline=None)
def test_property_planner_matches_scan(docs, path, operator, operand):
    """The same query answered with and without indexes is identical."""
    if operator == "$in":
        query = {path: {"$in": [operand]}}
    else:
        query = {path: {operator: operand}}

    scan_collection = DocumentStore()["c"]
    scan_collection.insert_many(docs)
    scanned = scan_collection.find(query).to_list()
    assert scan_collection.last_plan.kind == "scan"

    indexed_store = DocumentStore()
    indexed_collection = indexed_store["c"]
    indexed_collection.create_index(path, kind="sorted")
    indexed_collection.insert_many(docs)
    planned = indexed_collection.find(query).to_list()

    assert planned == scanned


@given(st.lists(documents, min_size=1, max_size=20), field_names)
@settings(max_examples=40, deadline=None)
def test_property_indexed_sort_matches_scan_sort(docs, path):
    scan_collection = DocumentStore()["c"]
    scan_collection.insert_many(docs)
    expected = scan_collection.find().sort(path, 1).to_list()

    indexed_collection = DocumentStore()["c"]
    indexed_collection.create_index(path, kind="sorted")
    indexed_collection.insert_many(docs)
    assert indexed_collection.find().sort(path, 1).to_list() == expected
    assert (
        indexed_collection.find().sort(path, -1).to_list()
        == scan_collection.find().sort(path, -1).to_list()
    )
