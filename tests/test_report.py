"""Tests for the Markdown report builder and new sequence items."""

import pytest

from repro.core import ADAHealth, EngineConfig, KnowledgeItem
from repro.core.extractors import extract_sequence_items
from repro.core.interestingness import score_sequence
from repro.core.report import render_report, save_report
from repro.mining.sequences import SequentialPattern


@pytest.fixture(scope="module")
def result(small_log):
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(4,),
            partial_fractions=(0.5, 1.0),
            partial_k_values=(4,),
            n_folds=3,
        ),
        seed=0,
    )
    return engine.analyze(small_log, name="report-test")


def test_report_has_all_sections(result):
    report = render_report(result)
    assert report.startswith("# ADA-HEALTH analysis report")
    assert "## Dataset" in report
    assert "## End-goal assessment" in report
    assert "## Ranked knowledge" in report
    for run in result.runs:
        assert f"## Goal: {run.goal.name}" in report


def test_report_embeds_optimisation_table(result):
    report = render_report(result)
    assert "### Parameter optimisation" in report
    assert "selected K =" in report
    assert "### Adaptive partial mining" in report
    assert "selected subset" in report


def test_report_lists_top_items(result):
    report = render_report(result, top_items=5)
    table_rows = [
        line for line in report.splitlines() if line.startswith("| ")
    ]
    # dataset table rows + knowledge header/sep + 5 items
    knowledge_rows = [
        line for line in table_rows if line.split("|")[1].strip().isdigit()
    ]
    assert len(knowledge_rows) == 5


def test_report_escapes_pipes(result):
    item = result.items[0]
    item.title = "weird | title"
    report = render_report(result, top_items=1)
    assert "weird \\| title" in report


def test_save_report(result, tmp_path):
    target = tmp_path / "report.md"
    save_report(result, target, title="Cohort X")
    content = target.read_text()
    assert content.startswith("# Cohort X")


def test_custom_title(result):
    assert render_report(result, title="T").startswith("# T")


# ----------------------------------------------------------------------
# sequence items and scoring
# ----------------------------------------------------------------------
def make_pattern(*elements, count=10, support=0.3):
    return SequentialPattern(
        elements=tuple(frozenset(e) for e in elements),
        count=count,
        support=support,
    )


def test_extract_sequence_items_filters_single_visits():
    patterns = [
        make_pattern(["a"]),
        make_pattern(["a"], ["b"]),
        make_pattern(["a"], ["b"], ["c"]),
    ]
    items = extract_sequence_items(patterns)
    assert len(items) == 2
    assert all(item.kind == "sequence" for item in items)
    assert items[0].quality["n_elements"] == 3.0  # longest first


def test_sequence_item_title_shows_order():
    items = extract_sequence_items([make_pattern(["x"], ["y", "z"])])
    assert items[0].title == "x -> y, z"
    assert items[0].payload["steps"] == [["x"], ["y", "z"]]


def test_score_sequence_prefers_longer():
    short = score_sequence({"support": 0.3, "n_elements": 2})
    long = score_sequence({"support": 0.3, "n_elements": 4})
    assert long > short


def test_score_sequence_support_sweet_spot():
    rare = score_sequence({"support": 0.01, "n_elements": 3})
    mid = score_sequence({"support": 0.3, "n_elements": 3})
    universal = score_sequence({"support": 0.99, "n_elements": 3})
    assert mid > rare
    assert mid > universal


def test_engine_produces_sequence_items(result):
    run = result.run_for("care-sequences")
    assert run.items
    assert all(item.kind == "sequence" for item in run.items)
    assert all("->" in item.title for item in run.items)
