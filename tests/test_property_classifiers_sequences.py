"""Property-based tests: classifiers, sequences, itemset summaries."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.mining import (
    DecisionTreeClassifier,
    GaussianNaiveBayes,
    KNeighborsClassifier,
    closed_itemsets,
    fpgrowth,
    maximal_itemsets,
    mine_sequences,
)
from repro.mining.sequences import SequentialPattern, pattern_contains

feature_matrices = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(8, 30), st.integers(1, 5)),
    elements=st.floats(-20, 20, allow_nan=False).map(
        lambda x: round(x, 3)
    ),
)

label_arrays = st.lists(st.integers(0, 2), min_size=8, max_size=30)


@given(feature_matrices, st.data())
@settings(max_examples=25, deadline=None)
def test_decision_tree_predicts_known_classes(matrix, data):
    labels = np.array(
        data.draw(
            st.lists(
                st.integers(0, 2),
                min_size=matrix.shape[0],
                max_size=matrix.shape[0],
            )
        )
    )
    tree = DecisionTreeClassifier(max_depth=4).fit(matrix, labels)
    predictions = tree.predict(matrix)
    assert set(predictions.tolist()) <= set(labels.tolist())
    # Probabilities are a distribution.
    probabilities = tree.predict_proba(matrix)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert (probabilities >= 0).all()


@given(feature_matrices, st.data())
@settings(max_examples=25, deadline=None)
def test_unbounded_tree_memorises_consistent_data(matrix, data):
    """If equal rows always share a label, a full tree fits exactly."""
    # Build labels as a function of the first feature's sign: a
    # deterministic labelling guarantees consistency.
    labels = (matrix[:, 0] > 0).astype(int)
    tree = DecisionTreeClassifier().fit(matrix, labels)
    assert tree.score(matrix, labels) == 1.0


@given(feature_matrices)
@settings(max_examples=25, deadline=None)
def test_gaussian_nb_predictions_are_fitted_classes(matrix):
    labels = np.arange(matrix.shape[0]) % 2
    model = GaussianNaiveBayes().fit(matrix, labels)
    predictions = model.predict(matrix)
    assert set(predictions.tolist()) <= {0, 1}
    probabilities = model.predict_proba(matrix)
    assert np.allclose(probabilities.sum(axis=1), 1.0)


@given(feature_matrices)
@settings(max_examples=20, deadline=None)
def test_knn_k1_memorises_distinct_rows(matrix):
    # Deduplicate rows so 1-NN is unambiguous.
    unique = np.unique(matrix, axis=0)
    if unique.shape[0] < 2:
        return
    labels = np.arange(unique.shape[0]) % 3
    model = KNeighborsClassifier(n_neighbors=1).fit(unique, labels)
    assert model.score(unique, labels) == 1.0


# ----------------------------------------------------------------------
# sequences
# ----------------------------------------------------------------------
items = st.sampled_from(list("abcd"))
sequence_dbs = st.lists(
    st.lists(
        st.frozensets(items, min_size=1, max_size=2),
        min_size=0,
        max_size=4,
    ),
    min_size=1,
    max_size=12,
)


@given(sequence_dbs, st.floats(0.2, 0.9))
@settings(max_examples=40, deadline=None)
def test_sequence_supports_match_brute_force(database, min_support):
    database = [list(sequence) for sequence in database]
    patterns = mine_sequences(database, min_support, max_length=3)
    for pattern in patterns:
        brute = sum(
            1
            for sequence in database
            if pattern_contains(pattern, sequence)
        )
        assert pattern.count == brute
        assert pattern.count >= min_support * len(database) - 1e-9


@given(sequence_dbs)
@settings(max_examples=30, deadline=None)
def test_sequence_patterns_unique(database):
    database = [list(sequence) for sequence in database]
    patterns = mine_sequences(database, 0.3, max_length=3)
    forms = [pattern.elements for pattern in patterns]
    assert len(forms) == len(set(forms))


@given(sequence_dbs)
@settings(max_examples=30, deadline=None)
def test_sequence_higher_support_subset(database):
    database = [list(sequence) for sequence in database]
    low = {p.elements for p in mine_sequences(database, 0.3, max_length=2)}
    high = {p.elements for p in mine_sequences(database, 0.7, max_length=2)}
    assert high <= low


# ----------------------------------------------------------------------
# itemset summaries
# ----------------------------------------------------------------------
transaction_dbs = st.lists(
    st.lists(items, min_size=0, max_size=4),
    min_size=1,
    max_size=20,
)


@given(transaction_dbs, st.floats(0.15, 0.9))
@settings(max_examples=40, deadline=None)
def test_summary_invariants(transactions, min_support):
    frequent = fpgrowth(transactions, min_support)
    closed = closed_itemsets(frequent)
    maximal = maximal_itemsets(frequent)
    closed_sets = {s.items for s in closed}
    maximal_sets = {s.items for s in maximal}
    # Maximal subset of closed subset of frequent.
    assert maximal_sets <= closed_sets
    assert closed_sets <= {s.items for s in frequent}
    # Every frequent itemset has a closed superset with equal support.
    for itemset in frequent:
        assert any(
            itemset.items <= c.items and c.count == itemset.count
            for c in closed
        )
    # No maximal itemset is contained in another frequent itemset.
    frequent_sets = {s.items for s in frequent}
    for itemset in maximal:
        assert not any(
            itemset.items < other for other in frequent_sets
        )
