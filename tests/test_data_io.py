"""Tests for CSV / JSON-lines dataset IO."""

import pytest

from repro.data import load_csv, load_jsonl, save_csv, save_jsonl
from repro.exceptions import DataError


def test_csv_roundtrip(tiny_log, tmp_path):
    save_csv(tiny_log, tmp_path / "ds")
    loaded = load_csv(tmp_path / "ds")
    assert loaded.records == tiny_log.records
    assert len(loaded.taxonomy) == len(tiny_log.taxonomy)
    assert loaded.patients.keys() == tiny_log.patients.keys()


def test_csv_preserves_taxonomy_metadata(tiny_log, tmp_path):
    save_csv(tiny_log, tmp_path / "ds")
    loaded = load_csv(tmp_path / "ds")
    for exam in tiny_log.taxonomy:
        twin = loaded.taxonomy.by_code(exam.code)
        assert twin.name == exam.name
        assert twin.category == exam.category
        assert twin.rank == exam.rank


def test_csv_missing_records_raises(tmp_path):
    with pytest.raises(DataError):
        load_csv(tmp_path / "nowhere")


def test_csv_missing_columns_raises(tiny_log, tmp_path):
    directory = tmp_path / "ds"
    save_csv(tiny_log, directory)
    (directory / "records.csv").write_text("foo,bar\n1,2\n")
    with pytest.raises(DataError):
        load_csv(directory)


def test_jsonl_roundtrip(tiny_log, tmp_path):
    path = tmp_path / "log.jsonl"
    save_jsonl(tiny_log, path)
    loaded = load_jsonl(path)
    assert loaded.records == tiny_log.records
    assert loaded.summary() == tiny_log.summary()


def test_jsonl_preserves_profiles(tiny_log, tmp_path):
    path = tmp_path / "log.jsonl"
    save_jsonl(tiny_log, path)
    loaded = load_jsonl(path)
    for pid, info in tiny_log.patients.items():
        assert loaded.patients[pid].profile == info.profile
        assert loaded.patients[pid].age == info.age


def test_jsonl_missing_file_raises(tmp_path):
    with pytest.raises(DataError):
        load_jsonl(tmp_path / "absent.jsonl")


def test_jsonl_empty_file_raises(tmp_path):
    path = tmp_path / "empty.jsonl"
    path.write_text("")
    with pytest.raises(DataError):
        load_jsonl(path)


def test_jsonl_wrong_kind_raises(tmp_path):
    path = tmp_path / "bad.jsonl"
    path.write_text('{"kind": "other"}\n')
    with pytest.raises(DataError):
        load_jsonl(path)


def test_csv_then_jsonl_equivalence(tiny_log, tmp_path):
    save_csv(tiny_log, tmp_path / "csv")
    from_csv = load_csv(tmp_path / "csv")
    save_jsonl(from_csv, tmp_path / "log.jsonl")
    from_jsonl = load_jsonl(tmp_path / "log.jsonl")
    assert from_jsonl.records == tiny_log.records
