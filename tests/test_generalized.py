"""Tests for taxonomy-generalised (multi-level) itemset mining."""

import pytest

from repro.exceptions import MiningError
from repro.mining import (
    extend_transactions,
    level_summary,
    mine_generalized_itemsets,
)

PARENT = {
    "ecg": "cardio",
    "echo": "cardio",
    "fundus": "eye",
    "oct": "eye",
    "hba1c": "lab",
}


def test_extend_transactions_adds_ancestors():
    extended = extend_transactions([["ecg", "echo", "hba1c"]], PARENT)
    assert set(extended[0]) == {"ecg", "echo", "hba1c", "cardio", "lab"}


def test_extend_keeps_unknown_items():
    extended = extend_transactions([["mystery", "ecg"]], PARENT)
    assert "mystery" in extended[0]
    assert "cardio" in extended[0]


def test_category_pattern_surfaces_when_leaves_are_rare():
    """Individually-rare sibling exams become frequent at category level."""
    transactions = (
        [["ecg", "hba1c"]] * 3
        + [["echo", "hba1c"]] * 3
        + [["fundus"]] * 2
    )
    result = mine_generalized_itemsets(transactions, PARENT, 0.5)
    items = {g.items for g in result}
    # Neither ecg nor echo reaches 50%, but 'cardio' does (6/8).
    assert frozenset(["ecg"]) not in items
    assert frozenset(["cardio"]) in items
    assert frozenset(["cardio", "hba1c"]) in items


def test_redundant_ancestor_combinations_removed():
    transactions = [["ecg", "hba1c"]] * 4
    result = mine_generalized_itemsets(transactions, PARENT, 0.5)
    items = {g.items for g in result}
    # {ecg, cardio} is redundant (same support as {ecg}).
    assert frozenset(["ecg", "cardio"]) not in items
    assert frozenset(["ecg"]) in items
    assert frozenset(["cardio"]) in items


def test_levels_assigned_correctly():
    transactions = [["ecg", "fundus"]] * 4
    result = mine_generalized_itemsets(transactions, PARENT, 0.5)
    by_items = {g.items: g.level for g in result}
    assert by_items[frozenset(["ecg"])] == "leaf"
    assert by_items[frozenset(["cardio"])] == "category"
    assert by_items[frozenset(["cardio", "eye"])] == "category"
    assert by_items[frozenset(["ecg", "eye"])] == "mixed"


def test_level_summary_counts():
    transactions = [["ecg", "fundus"]] * 4
    result = mine_generalized_itemsets(transactions, PARENT, 0.5)
    summary = level_summary(result)
    assert sum(summary.values()) == len(result)
    assert summary["category"] >= 1


def test_supports_respect_threshold():
    transactions = [["ecg"], ["echo"], ["fundus"], ["hba1c"]]
    result = mine_generalized_itemsets(transactions, PARENT, 0.5)
    assert all(g.support >= 0.5 for g in result)
    items = {g.items for g in result}
    assert frozenset(["cardio"]) in items  # 2/4


def test_empty_taxonomy_raises():
    with pytest.raises(MiningError):
        mine_generalized_itemsets([["a"]], {}, 0.5)


def test_non_two_level_taxonomy_raises():
    bad = {"a": "b", "b": "c"}
    with pytest.raises(MiningError):
        mine_generalized_itemsets([["a"]], bad, 0.5)


def test_on_synthetic_log(small_log):
    transactions = small_log.transactions(by="patient")
    result = mine_generalized_itemsets(
        transactions, small_log.taxonomy.parent_map(), 0.5, max_length=2
    )
    assert result
    summary = level_summary(result)
    # Routine care is universal: category-level patterns must exist.
    assert summary["category"] >= 1
