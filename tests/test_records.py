"""Tests for the examination-log data model."""

from datetime import date

import numpy as np
import pytest

from repro.data import ExamLog, ExamRecord, PatientInfo
from repro.data.taxonomy import build_default_taxonomy
from repro.exceptions import DataError, ValidationError


def test_record_validation_rejects_negative_fields():
    with pytest.raises(ValidationError):
        ExamRecord(patient_id=-1, day=0, exam_code=0)
    with pytest.raises(ValidationError):
        ExamRecord(patient_id=0, day=-1, exam_code=0)
    with pytest.raises(ValidationError):
        ExamRecord(patient_id=0, day=0, exam_code=-1)


def test_record_calendar_date():
    record = ExamRecord(patient_id=1, day=31, exam_code=0)
    assert record.calendar_date(date(2015, 1, 1)) == date(2015, 2, 1)


def test_patient_info_rejects_implausible_age():
    with pytest.raises(ValidationError):
        PatientInfo(patient_id=1, age=200)


def test_summary_counts(handmade_log):
    summary = handmade_log.summary()
    assert summary["n_patients"] == 3
    assert summary["n_records"] == 7
    assert summary["n_exam_types"] == 8
    assert summary["age_min"] == 45
    assert summary["age_max"] == 70
    assert summary["days_spanned"] == 21


def test_exam_frequency(handmade_log):
    frequency = handmade_log.exam_frequency()
    assert frequency[0] == 2
    assert frequency[1] == 2
    assert frequency[2] == 3
    assert frequency[3:].sum() == 0


def test_exam_codes_by_frequency_deterministic(handmade_log):
    order = handmade_log.exam_codes_by_frequency()
    # exam 2 (3 records) first; 0 and 1 tie at 2, broken by code.
    assert order[:3] == [2, 0, 1]


def test_count_matrix_values(handmade_log):
    matrix, patient_ids = handmade_log.count_matrix()
    assert patient_ids == [1, 2, 3]
    assert matrix.shape == (3, 8)
    assert matrix[0, 0] == 2 and matrix[0, 1] == 1
    assert matrix[1, 1] == 1
    assert matrix[2, 2] == 3
    assert matrix.sum() == 7


def test_transactions_by_patient(handmade_log):
    transactions = handmade_log.transactions(by="patient")
    assert len(transactions) == 3
    # Patient 1 underwent exams 0 and 1 -> two distinct names.
    assert len(transactions[0]) == 2
    # Patient 3 only exam 2 (three times -> one name).
    assert len(transactions[2]) == 1


def test_transactions_by_visit(handmade_log):
    transactions = handmade_log.transactions(by="visit")
    # Patient 1 has visits on days 1 (two exams) and 2 (one exam);
    # patient 2 one visit; patient 3 three visits.
    assert len(transactions) == 6
    sizes = sorted(len(t) for t in transactions)
    assert sizes == [1, 1, 1, 1, 1, 2]


def test_transactions_unknown_grouping(handmade_log):
    with pytest.raises(DataError):
        handmade_log.transactions(by="hospital")


def test_restrict_exams_keeps_all_patients(handmade_log):
    restricted = handmade_log.restrict_exams([0, 1])
    assert restricted.n_records == 4
    # Patient 3 loses every record but is still registered.
    assert 3 in restricted.patients
    assert restricted.n_exam_types == handmade_log.n_exam_types


def test_restrict_patients(handmade_log):
    restricted = handmade_log.restrict_patients([1, 3])
    assert restricted.n_patients == 2
    assert restricted.n_records == 6
    assert set(restricted.patients) == {1, 3}


def test_time_window(handmade_log):
    window = handmade_log.time_window(0, 5)
    assert window.n_records == 5
    with pytest.raises(DataError):
        handmade_log.time_window(10, 0)


def test_out_of_taxonomy_code_rejected():
    taxonomy = build_default_taxonomy(8)
    with pytest.raises(DataError):
        ExamLog(
            [ExamRecord(patient_id=0, day=0, exam_code=9)],
            taxonomy=taxonomy,
        )


def test_duplicate_patient_info_rejected():
    taxonomy = build_default_taxonomy(8)
    with pytest.raises(DataError):
        ExamLog(
            [],
            taxonomy=taxonomy,
            patients=[
                PatientInfo(patient_id=1, age=50),
                PatientInfo(patient_id=1, age=51),
            ],
        )


def test_records_sorted_on_construction():
    taxonomy = build_default_taxonomy(8)
    records = [
        ExamRecord(patient_id=2, day=0, exam_code=0),
        ExamRecord(patient_id=1, day=5, exam_code=1),
        ExamRecord(patient_id=1, day=1, exam_code=0),
    ]
    log = ExamLog(records, taxonomy=taxonomy)
    assert [r.patient_id for r in log.records] == [1, 1, 2]
    assert log.records[0].day == 1


def test_len_and_iter(handmade_log):
    assert len(handmade_log) == 7
    assert sum(1 for __ in handmade_log) == 7


def test_ages_only_known_patients(tiny_log):
    ages = tiny_log.ages()
    assert len(ages) == tiny_log.n_patients
    assert all(4 <= age <= 95 for age in ages)
