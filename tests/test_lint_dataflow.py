"""Tests for the inter-procedural rules ADA009–ADA012 and ADA014.

Each rule gets bad fixtures proving it fires (with the offence
arbitrarily deep below the reported site) and good fixtures proving it
stays quiet — including the PR-2 tracer cache-key hazard that ADA010
exists to catch. The ADA012 half covers suppression hygiene: unused
pragmas, unknown rule ids in pragmas and in ``[tool.adalint]``.
"""

import textwrap

import pytest

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.rules_dataflow import (
    CacheKeyCoverage,
    EffectFreeTasks,
    ExceptionTaxonomy,
    NoLargeArrayPickle,
    NoUnusedSuppressions,
)
from repro.lint.rules_robustness import NoBareAssert

pytestmark = pytest.mark.lint


def run_rule(rule_class, source):
    return lint_source(textwrap.dedent(source), rules=[rule_class])


# ----------------------------------------------------------------------
# ADA009 — tasks shipped to workers must be transitively effect-free
# ----------------------------------------------------------------------
def test_ada009_flags_wall_clock_task_given_to_taskspec():
    findings = run_rule(
        EffectFreeTasks,
        """
        import time

        from repro.cloud.executor import TaskSpec

        def task(x):
            return time.time() + x

        def build():
            return TaskSpec(task, (1,))
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA009"
    assert "not effect-free" in findings[0].message
    assert "task" in findings[0].message


def test_ada009_follows_the_call_graph_below_the_task():
    findings = run_rule(
        EffectFreeTasks,
        """
        from repro.cloud.executor import TaskSpec

        STATE = []

        def helper():
            STATE.append(1)

        def task(x):
            helper()
            return x

        def build():
            return TaskSpec(task, ())
        """,
    )
    assert len(findings) == 1
    # the finding cites the originating helper and the call chain
    assert "helper" in findings[0].message


def test_ada009_flags_process_pool_submit_but_not_threads():
    bad = run_rule(
        EffectFreeTasks,
        """
        import time
        from concurrent.futures import ProcessPoolExecutor

        def task():
            return time.time()

        def run():
            with ProcessPoolExecutor() as pool:
                return pool.submit(task)
        """,
    )
    good = run_rule(
        EffectFreeTasks,
        """
        import time
        from concurrent.futures import ThreadPoolExecutor

        def task():
            return time.time()

        def run():
            with ThreadPoolExecutor() as pool:
                return pool.submit(task)
        """,
    )
    assert len(bad) == 1
    assert good == []


def test_ada009_flags_run_chunked_function():
    findings = run_rule(
        EffectFreeTasks,
        """
        from repro.cloud.executor import make_executor, run_chunked

        def task(path):
            return open(path).read()

        def run(paths):
            executor = make_executor("serial")
            return run_chunked(executor, task, paths)
        """,
    )
    assert len(findings) == 1
    assert "run_chunked" in findings[0].message


def test_ada009_quiet_on_pure_task_and_mutation_of_locals():
    findings = run_rule(
        EffectFreeTasks,
        """
        from repro.cloud.executor import TaskSpec

        def task(values):
            totals = []
            totals.append(sum(values))
            return totals

        def build(values):
            return TaskSpec(task, (values,))
        """,
    )
    assert findings == []


# ----------------------------------------------------------------------
# ADA010 — cache keys must cover every config field goal paths read
# ----------------------------------------------------------------------
# The PR-2 hazard: `tracer` was excluded from the cache key (fine,
# telemetry) and the fix accidentally modelled excluding a *semantic*
# field too. Two configs differing only in min_support would then share
# one cache entry.
_TRACER_HAZARD = """
    class Engine:
        def __init__(self, config):
            self.config = config

        def _goal_params(self, goal):
            excluded = {"min_support", "tracer"}
            return {
                key: value
                for key, value in vars(self.config).items()
                if key not in excluded
            }

        def _run_goal(self, goal):
            cfg = self.config
            return goal, cfg.min_support
"""


def test_ada010_catches_the_tracer_cache_key_hazard():
    findings = run_rule(CacheKeyCoverage, _TRACER_HAZARD)
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA010"
    assert "min_support" in findings[0].message
    assert "cache key" in findings[0].message


def test_ada010_sees_reads_deep_in_the_goal_path():
    findings = run_rule(
        CacheKeyCoverage,
        """
        class Engine:
            def __init__(self, config):
                self.config = config

            def _goal_params(self, goal):
                excluded = {"n_folds", "tracer"}
                return {
                    key: value
                    for key, value in vars(self.config).items()
                    if key not in excluded
                }

            def _run_goal(self, goal):
                return self._score(goal)

            def _score(self, goal):
                return goal, self.config.n_folds
        """,
    )
    assert len(findings) == 1
    assert "n_folds" in findings[0].message


def test_ada010_allowlists_telemetry_fields():
    findings = run_rule(
        CacheKeyCoverage,
        """
        class Engine:
            def __init__(self, config):
                self.config = config

            def _goal_params(self, goal):
                excluded = {"tracer", "metrics"}
                return {
                    key: value
                    for key, value in vars(self.config).items()
                    if key not in excluded
                }

            def _run_goal(self, goal):
                if self.config.tracer is not None:
                    self.config.metrics.count("goal")
                return goal
        """,
    )
    assert findings == []


def test_ada010_quiet_when_read_field_is_in_the_key():
    findings = run_rule(
        CacheKeyCoverage,
        """
        class Engine:
            def __init__(self, config):
                self.config = config

            def _goal_params(self, goal):
                excluded = {"tracer"}
                return {
                    key: value
                    for key, value in vars(self.config).items()
                    if key not in excluded
                }

            def _run_goal(self, goal):
                return goal, self.config.min_support
        """,
    )
    assert findings == []


# ----------------------------------------------------------------------
# ADA011 — public APIs raise the documented taxonomy only
# ----------------------------------------------------------------------
def test_ada011_flags_raw_exception_in_public_function():
    findings = run_rule(
        ExceptionTaxonomy,
        """
        def mine(records):
            if not records:
                raise Exception("no records")
            return records
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA011"
    assert "Exception" in findings[0].message


def test_ada011_follows_calls_into_private_helpers():
    findings = run_rule(
        ExceptionTaxonomy,
        """
        def mine(records):
            return _validated(records)

        def _validated(records):
            if not records:
                raise Exception("no records")
            return records
        """,
    )
    assert len(findings) == 1
    assert "_validated" in findings[0].message


def test_ada011_unreached_private_helpers_are_not_public_surface():
    findings = run_rule(
        ExceptionTaxonomy,
        """
        def mine(records):
            return list(records)

        def _debug_probe():
            raise Exception("never part of the public surface")
        """,
    )
    assert findings == []


def test_ada011_accepts_taxonomy_builtins_and_subclasses():
    findings = run_rule(
        ExceptionTaxonomy,
        """
        from repro.exceptions import MiningError

        class ClusterError(MiningError):
            pass

        def mine(records):
            if not records:
                raise MiningError("no records")
            if records == "bad":
                raise ValueError("records must be a list")
            raise ClusterError("cannot cluster")
        """,
    )
    assert findings == []


def test_ada011_accepts_module_qualified_taxonomy_raises():
    findings = run_rule(
        ExceptionTaxonomy,
        """
        from repro import exceptions

        def mine(records):
            raise exceptions.MiningError("no records")
        """,
    )
    assert findings == []


# ----------------------------------------------------------------------
# ADA014 — large arrays must not ride the pickle path to workers
# ----------------------------------------------------------------------
def test_ada014_flags_ndarray_local_shipped_in_taskspec():
    findings = run_rule(
        NoLargeArrayPickle,
        """
        import numpy as np

        from repro.cloud.executor import TaskSpec

        def work(ref, k):
            return ref

        def sweep(k_values):
            matrix = np.asarray([[1.0, 2.0]])
            return [TaskSpec(work, (matrix, k)) for k in k_values]
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA014"
    assert "matrix" in findings[0].message
    assert "matrix_lease" in findings[0].message


def test_ada014_flags_annotated_parameter_in_pool_submit():
    findings = run_rule(
        NoLargeArrayPickle,
        """
        import numpy as np
        from concurrent.futures import ProcessPoolExecutor

        def work(chunk):
            return chunk.sum()

        def run_all(data: np.ndarray):
            folds = data[:10]
            with ProcessPoolExecutor() as pool:
                return pool.submit(work, folds)
        """,
    )
    assert len(findings) == 1
    assert "folds" in findings[0].message
    assert "pool.submit" in findings[0].message


def test_ada014_tracks_slices_and_method_chains():
    findings = run_rule(
        NoLargeArrayPickle,
        """
        import numpy as np

        from repro.cloud.executor import TaskSpec

        def work(x):
            return x

        def go():
            base = np.zeros((4, 4))
            view = base[1:].copy()
            return TaskSpec(work, (view,))
        """,
    )
    assert len(findings) == 1
    assert "view" in findings[0].message


def test_ada014_quiet_when_the_array_travels_by_lease():
    findings = run_rule(
        NoLargeArrayPickle,
        """
        import numpy as np

        from repro.cloud.executor import TaskSpec
        from repro.cloud.transport import matrix_lease

        def work(ref, k):
            return ref

        def sweep(executor, k_values):
            matrix = np.asarray([[1.0, 2.0]])
            with matrix_lease(executor, matrix) as (ref,):
                return executor.run(
                    [TaskSpec(work, (ref, k)) for k in k_values]
                )
        """,
    )
    assert findings == []


def test_ada014_quiet_on_local_array_use_and_unknown_types():
    findings = run_rule(
        NoLargeArrayPickle,
        """
        import numpy as np

        from repro.cloud.executor import TaskSpec

        def work(x):
            return x

        def local_only(data: np.ndarray):
            copy = data.copy()
            return copy.sum()

        def unknown(handle):
            return TaskSpec(work, (handle,))
        """,
    )
    assert findings == []


def test_ada014_nested_functions_are_their_own_scope():
    findings = run_rule(
        NoLargeArrayPickle,
        """
        import numpy as np

        from repro.cloud.executor import TaskSpec

        def work(x):
            return x

        def outer():
            matrix = np.ones((2, 2))

            def inner():
                return TaskSpec(work, (matrix,))

            return TaskSpec(work, (matrix,)), inner
        """,
    )
    # exactly one finding: the outer submission; the nested def is a
    # separate scope where ``matrix`` is an untracked closure variable
    assert len(findings) == 1


# ----------------------------------------------------------------------
# ADA012 — unused / unknown suppressions
# ----------------------------------------------------------------------
def test_ada012_flags_a_pragma_that_suppresses_nothing():
    findings = lint_source(
        textwrap.dedent(
            """
            def check(x):
                value = x + 1  # adalint: disable=ADA005
                return value
            """
        ),
        rules=[NoBareAssert, NoUnusedSuppressions],
    )
    assert [f.rule_id for f in findings] == ["ADA012"]
    assert findings[0].severity == "warning"
    assert "unused suppression" in findings[0].message
    assert findings[0].line == 3


def test_ada012_quiet_when_the_pragma_earns_its_keep():
    findings = lint_source(
        textwrap.dedent(
            """
            def check(x):
                assert x  # adalint: disable=ADA005
                return x
            """
        ),
        rules=[NoBareAssert, NoUnusedSuppressions],
    )
    assert findings == []


def test_ada012_flags_unused_file_level_pragma():
    findings = lint_source(
        textwrap.dedent(
            """
            # adalint: disable-file=ADA005
            def check(x):
                return x
            """
        ),
        rules=[NoBareAssert, NoUnusedSuppressions],
    )
    assert [f.rule_id for f in findings] == ["ADA012"]
    assert "this file" in findings[0].message


def test_ada012_dormant_pragma_for_rule_that_did_not_run():
    # ADA001 is not in the run's rule set: the pragma is dormant, not
    # dead, so only the bare assert is reported.
    findings = lint_source(
        textwrap.dedent(
            """
            def check(x):
                assert x  # adalint: disable=ADA001
                return x
            """
        ),
        rules=[NoBareAssert, NoUnusedSuppressions],
    )
    assert [f.rule_id for f in findings] == ["ADA005"]


def test_ada012_flags_unknown_rule_id_in_pragma():
    findings = lint_source(
        textwrap.dedent(
            """
            def check(x):
                return x  # adalint: disable=ADA999
            """
        ),
        rules=[NoUnusedSuppressions],
    )
    assert [f.rule_id for f in findings] == ["ADA012"]
    assert "unknown rule id 'ADA999'" in findings[0].message


def test_ada012_flags_unknown_rule_ids_in_config(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    report = lint_paths(
        [clean],
        config=LintConfig(
            select=["ADA005", "ADA042"],
            paths={"ADA01": ["src"]},
        ),
        root=tmp_path,
    )
    messages = [f.message for f in report.findings]
    assert any(
        "'ADA042'" in m and "select" in m for m in messages
    ), messages
    assert any(
        "'ADA01'" in m and "paths" in m for m in messages
    ), messages
    assert all(f.rule_id == "ADA012" for f in report.findings)


def test_ada012_quiet_on_known_config_ids(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    report = lint_paths(
        [clean],
        config=LintConfig(ignore=["ADA004"]),
        root=tmp_path,
    )
    assert report.findings == []
