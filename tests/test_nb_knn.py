"""Tests for Naive Bayes and k-NN classifiers."""

import numpy as np
import pytest

from repro.exceptions import MiningError, NotFittedError
from repro.mining.knn import KNeighborsClassifier
from repro.mining.naive_bayes import (
    GaussianNaiveBayes,
    MultinomialNaiveBayes,
)


# ----------------------------------------------------------------------
# Gaussian NB
# ----------------------------------------------------------------------
def test_gaussian_nb_separable(blobs):
    data, truth = blobs
    model = GaussianNaiveBayes().fit(data, truth)
    assert model.score(data, truth) > 0.99


def test_gaussian_nb_predict_proba_rows_sum_to_one(blobs):
    data, truth = blobs
    model = GaussianNaiveBayes().fit(data, truth)
    probabilities = model.predict_proba(data)
    assert probabilities.shape == (len(data), 3)
    assert np.allclose(probabilities.sum(axis=1), 1.0)
    assert (probabilities >= 0).all()


def test_gaussian_nb_respects_prior():
    """With identical likelihoods the prior decides."""
    rng = np.random.default_rng(0)
    data = rng.normal(0, 1, size=(100, 2))
    labels = np.array([0] * 90 + [1] * 10)
    model = GaussianNaiveBayes().fit(data, labels)
    predictions = model.predict(rng.normal(0, 1, size=(50, 2)))
    assert (predictions == 0).mean() > 0.8


def test_gaussian_nb_constant_feature_ok(blobs):
    data, truth = blobs
    padded = np.hstack([data, np.ones((len(data), 1))])
    model = GaussianNaiveBayes().fit(padded, truth)
    assert model.score(padded, truth) > 0.99


def test_gaussian_nb_string_labels(blobs):
    data, truth = blobs
    names = np.array(["x", "y", "z"])[truth]
    model = GaussianNaiveBayes().fit(data, names)
    assert set(model.predict(data)) <= {"x", "y", "z"}


def test_gaussian_nb_validation(blobs):
    data, truth = blobs
    with pytest.raises(MiningError):
        GaussianNaiveBayes(var_smoothing=0)
    with pytest.raises(NotFittedError):
        GaussianNaiveBayes().predict(data)
    with pytest.raises(MiningError):
        GaussianNaiveBayes().fit(data, truth[:-1])


# ----------------------------------------------------------------------
# Multinomial NB
# ----------------------------------------------------------------------
def test_multinomial_nb_on_count_profiles():
    """Distinct count profiles per class are recovered."""
    rng = np.random.default_rng(1)
    rates_a = np.array([5.0, 1.0, 0.2, 0.2])
    rates_b = np.array([0.2, 0.2, 4.0, 2.0])
    data = np.vstack(
        [rng.poisson(rates_a, size=(80, 4)),
         rng.poisson(rates_b, size=(80, 4))]
    ).astype(float)
    labels = np.array([0] * 80 + [1] * 80)
    model = MultinomialNaiveBayes().fit(data, labels)
    assert model.score(data, labels) > 0.95


def test_multinomial_nb_rejects_negative():
    with pytest.raises(MiningError):
        MultinomialNaiveBayes().fit(np.array([[-1.0, 2.0]]), [0])


def test_multinomial_nb_validation():
    with pytest.raises(MiningError):
        MultinomialNaiveBayes(alpha=0)
    with pytest.raises(NotFittedError):
        MultinomialNaiveBayes().predict(np.ones((2, 2)))


def test_multinomial_nb_on_vsm(small_log):
    """Classifies cluster labels on the raw count VSM decently."""
    from repro.mining import KMeans
    from repro.preprocess import VSMBuilder

    matrix = VSMBuilder("count").build(small_log).matrix
    labels = KMeans(4, seed=0).fit_predict(matrix)
    model = MultinomialNaiveBayes().fit(matrix, labels)
    assert model.score(matrix, labels) > 0.5


# ----------------------------------------------------------------------
# k-NN
# ----------------------------------------------------------------------
def test_knn_separable(blobs):
    data, truth = blobs
    model = KNeighborsClassifier(n_neighbors=5).fit(data, truth)
    assert model.score(data, truth) > 0.99


def test_knn_one_neighbor_memorises(blobs):
    data, truth = blobs
    model = KNeighborsClassifier(n_neighbors=1).fit(data, truth)
    assert model.score(data, truth) == 1.0


def test_knn_distance_weighting(blobs):
    data, truth = blobs
    uniform = KNeighborsClassifier(n_neighbors=7, weights="uniform")
    weighted = KNeighborsClassifier(n_neighbors=7, weights="distance")
    assert uniform.fit(data, truth).score(data, truth) > 0.95
    # Distance weighting makes the training points exact matches.
    assert weighted.fit(data, truth).score(data, truth) == 1.0


def test_knn_brute_force_matches_tree(blobs):
    data, truth = blobs
    tree = KNeighborsClassifier(n_neighbors=5, brute_force_dims=999)
    brute = KNeighborsClassifier(n_neighbors=5, brute_force_dims=1)
    probe = data[::7]
    a = tree.fit(data, truth).predict(probe)
    b = brute.fit(data, truth).predict(probe)
    assert np.array_equal(a, b)


def test_knn_validation(blobs):
    data, truth = blobs
    with pytest.raises(MiningError):
        KNeighborsClassifier(n_neighbors=0)
    with pytest.raises(MiningError):
        KNeighborsClassifier(weights="cosmic")
    with pytest.raises(NotFittedError):
        KNeighborsClassifier().predict(data)
    with pytest.raises(MiningError):
        KNeighborsClassifier(n_neighbors=500).fit(data[:10], truth[:10])
    model = KNeighborsClassifier().fit(data, truth)
    with pytest.raises(MiningError):
        model.predict(data[:, :2])


# ----------------------------------------------------------------------
# pluggable into the optimiser
# ----------------------------------------------------------------------
def test_optimizer_accepts_alternative_classifier(blobs):
    from repro.core import KMeansOptimizer

    data, __ = blobs
    optimizer = KMeansOptimizer(
        k_values=(2, 3),
        n_folds=3,
        classifier_factory=lambda: GaussianNaiveBayes(),
        seed=0,
    )
    report = optimizer.optimize(data)
    assert report.best_k in (2, 3)
    assert all(row.accuracy > 0.9 for row in report.rows)
