"""Tests for the kd-tree (NN queries and cell aggregates)."""

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining.kdtree import KDTree


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(7)
    return rng.normal(size=(200, 3))


def test_query_matches_brute_force(points):
    tree = KDTree(points, leaf_size=8)
    rng = np.random.default_rng(1)
    for __ in range(10):
        target = rng.normal(size=3)
        distances, indexes = tree.query(target, k=5)
        brute = np.linalg.norm(points - target, axis=1)
        expected = np.sort(brute)[:5]
        assert np.allclose(np.sort(distances), expected)
        assert set(indexes) == set(np.argsort(brute)[:5])


def test_query_k_one(points):
    tree = KDTree(points)
    distances, indexes = tree.query(points[13], k=1)
    assert indexes[0] == 13
    assert distances[0] == pytest.approx(0.0, abs=1e-12)


def test_query_invalid_k(points):
    tree = KDTree(points)
    with pytest.raises(MiningError):
        tree.query(points[0], k=0)
    with pytest.raises(MiningError):
        tree.query(points[0], k=len(points) + 1)


def test_query_wrong_dimension(points):
    tree = KDTree(points)
    with pytest.raises(MiningError):
        tree.query([1.0, 2.0], k=1)


def test_query_radius_matches_brute_force(points):
    tree = KDTree(points, leaf_size=4)
    target = points[0]
    brute = np.linalg.norm(points - target, axis=1)
    for radius in (0.1, 0.5, 1.5):
        hits = tree.query_radius(target, radius)
        expected = np.nonzero(brute <= radius)[0]
        assert np.array_equal(hits, expected)


def test_leaf_size_validation(points):
    with pytest.raises(MiningError):
        KDTree(points, leaf_size=0)


def test_leaves_partition_points(points):
    tree = KDTree(points, leaf_size=16)
    leaf_indexes = np.concatenate([leaf.indexes for leaf in tree.leaves()])
    assert sorted(leaf_indexes.tolist()) == list(range(len(points)))
    assert all(leaf.count <= 16 for leaf in tree.leaves())


def test_node_aggregates_consistent(points):
    tree = KDTree(points, leaf_size=16)

    def check(node):
        members = points[node.indexes]
        assert node.count == len(members)
        assert np.allclose(node.vector_sum, members.sum(axis=0))
        assert node.sq_sum == pytest.approx(
            float((members**2).sum()), rel=1e-9
        )
        assert (members >= node.lower - 1e-12).all()
        assert (members <= node.upper + 1e-12).all()
        assert np.allclose(node.centroid, members.mean(axis=0))
        if not node.is_leaf:
            check(node.left)
            check(node.right)

    check(tree.root)


def test_duplicate_points_build():
    data = np.ones((50, 2))
    tree = KDTree(data, leaf_size=4)
    # All identical points collapse into a single unsplittable node.
    distances, indexes = tree.query([1.0, 1.0], k=3)
    assert np.allclose(distances, 0.0)
    assert tree.root.count == 50


def test_depth_positive(points):
    tree = KDTree(points, leaf_size=8)
    assert tree.depth() >= 2
