"""Tests for adalint's incremental cache and parallel execution.

The contract under test (see repro/lint/runner.py): an unchanged tree
re-lints with zero parses and identical findings; touching one file
re-parses it plus its import-graph dependents only; bumping the
ruleset version or changing the config invalidates cached findings;
and serial, threaded and process-pool runs all report the same sorted
findings.
"""

import pytest

import repro.lint.runner as runner_module
from repro.lint import LintConfig, lint_paths
from repro.lint.cache import LintCache, content_hash, key_of

pytestmark = pytest.mark.lint


@pytest.fixture()
def project(tmp_path):
    """A three-module project: app -> helper, plus a findings magnet."""
    src = tmp_path / "src"
    src.mkdir()
    (src / "helper.py").write_text(
        "def add(x):\n    return x + 1\n", encoding="utf-8"
    )
    (src / "app.py").write_text(
        "from helper import add\n"
        "\n"
        "def run(values):\n"
        "    return [add(v) for v in values]\n",
        encoding="utf-8",
    )
    (src / "bad.py").write_text(
        "def f(x, bucket=[]):\n    assert x\n    return bucket\n",
        encoding="utf-8",
    )
    return tmp_path


def lint(project, cache, **kwargs):
    return lint_paths(
        [project / "src"],
        config=LintConfig(),
        root=project,
        cache=cache,
        **kwargs,
    )


def stable_document(report):
    """The JSON document minus per-run telemetry (rule wall times)."""
    document = report.to_document()
    document.pop("rule_stats", None)
    return document


# ----------------------------------------------------------------------
# Cold / warm
# ----------------------------------------------------------------------
def test_warm_run_parses_nothing_and_reports_identically(project):
    cache = LintCache(project / ".cache")
    cold = lint(project, cache)
    assert cold.files_checked == 3
    assert cold.files_parsed == 3
    assert cold.cache_hits == 0
    assert cold.findings  # bad.py: mutable default + bare assert

    warm = lint(project, cache)
    assert warm.files_parsed == 0
    assert warm.cache_hits == 3
    assert warm.findings == cold.findings
    # rule_stats is per-run telemetry (wall time over the files
    # actually linted; a fully cached run lints none) — everything
    # else must be byte-identical.
    assert stable_document(warm) == stable_document(cold)


def test_touching_a_file_relints_it_and_its_dependents(project):
    cache = LintCache(project / ".cache")
    cold = lint(project, cache)
    (project / "src" / "helper.py").write_text(
        "def add(x):\n    return x + 2\n", encoding="utf-8"
    )
    warm = lint(project, cache)
    # helper changed; app imports helper, so its closure fingerprint
    # moved too. bad.py is untouched and served from cache.
    assert warm.files_parsed == 2
    assert warm.cache_hits == 1
    assert warm.findings == cold.findings


def test_ruleset_version_bump_invalidates_findings(
    project, monkeypatch
):
    cache = LintCache(project / ".cache")
    cold = lint(project, cache)
    monkeypatch.setattr(
        runner_module, "RULESET_VERSION", "adalint/test-bump"
    )
    warm = lint(project, cache)
    assert warm.cache_hits == 0
    assert warm.findings == cold.findings


def test_config_change_invalidates_findings(project):
    cache = LintCache(project / ".cache")
    cold = lint(project, cache)
    narrowed = lint_paths(
        [project / "src"],
        config=LintConfig(ignore=["ADA004"]),
        root=project,
        cache=cache,
    )
    assert narrowed.cache_hits == 0
    assert "ADA004" not in [f.rule_id for f in narrowed.findings]
    assert len(narrowed.findings) < len(cold.findings)

    # returning to the original config still hits the original entries
    warm = lint(project, cache)
    assert warm.cache_hits == 3
    assert warm.findings == cold.findings


def test_corrupt_cache_entries_degrade_to_misses(project):
    cache = LintCache(project / ".cache")
    lint(project, cache)
    for entry in (project / ".cache").rglob("*.json"):
        entry.write_text("{ not json", encoding="utf-8")
    rerun = lint(project, LintCache(project / ".cache"))
    assert rerun.cache_hits == 0
    assert rerun.files_parsed == 3


# ----------------------------------------------------------------------
# Parallel execution: identical findings on every backend
# ----------------------------------------------------------------------
def test_threaded_run_matches_serial(project):
    serial = lint(project, cache=None)
    threaded = lint(
        project, cache=None, jobs=4, backend="threads"
    )
    assert stable_document(threaded) == stable_document(serial)


def test_process_run_matches_serial(project):
    serial = lint(project, cache=None)
    fanned = lint(project, cache=None, jobs=2, backend="process")
    assert stable_document(fanned) == stable_document(serial)


def test_parallel_warm_run_uses_the_cache(project):
    cache = LintCache(project / ".cache")
    cold = lint(project, cache, jobs=4, backend="threads")
    warm = lint(project, cache, jobs=4, backend="threads")
    assert warm.files_parsed == 0
    assert warm.cache_hits == 3
    assert warm.findings == cold.findings


# ----------------------------------------------------------------------
# Cache primitives
# ----------------------------------------------------------------------
def test_content_hash_and_key_are_stable():
    assert content_hash("x = 1\n") == content_hash("x = 1\n")
    assert content_hash("x = 1\n") != content_hash("x = 2\n")
    assert key_of("a", "b") == key_of("a", "b")
    assert key_of("a", "b") != key_of("ab")
    assert key_of("a", "b") != key_of("b", "a")
