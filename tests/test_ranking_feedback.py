"""Tests for the adaptive ranker, navigation session and simulated expert."""

import pytest

from repro.core import (
    KnowledgeItem,
    KnowledgeRanker,
    NavigationSession,
    SimulatedExpert,
    administrator_profile,
    clinician_profile,
    researcher_profile,
)
from repro.exceptions import EngineError
from repro.kdb import KnowledgeBase


def make_items():
    items = []
    for i in range(12):
        kind = ["cluster", "itemset", "association_rule"][i % 3]
        item = KnowledgeItem(
            kind=kind,
            end_goal="patient-segmentation" if i % 2 else "care-pathway-rules",
            title=f"item-{i}",
        )
        item.score = (i + 1) / 12.0
        items.append(item)
    return items


# ----------------------------------------------------------------------
# ranker
# ----------------------------------------------------------------------
def test_neutral_ranker_orders_by_score():
    ranker = KnowledgeRanker()
    ranked = ranker.rank(make_items())
    scores = [item.score for item in ranked]
    assert scores == sorted(scores, reverse=True)


def test_positive_feedback_promotes_kind():
    ranker = KnowledgeRanker(learning_rate=0.8)
    items = make_items()
    cluster_item = next(i for i in items if i.kind == "cluster")
    for __ in range(4):
        ranker.record_feedback(cluster_item, "high")
    ranked = ranker.rank(items)
    # The top items should now be clusters even with lower base scores.
    assert ranked[0].kind == "cluster"


def test_negative_feedback_demotes_kind():
    ranker = KnowledgeRanker(learning_rate=0.8)
    items = make_items()
    rule_item = next(i for i in items if i.kind == "association_rule")
    for __ in range(4):
        ranker.record_feedback(rule_item, "low")
    ranked = ranker.rank(items)
    assert ranked[-1].kind == "association_rule"


def test_medium_feedback_is_neutral():
    ranker = KnowledgeRanker()
    before = dict(ranker.kind_weights)
    ranker.record_feedback(make_items()[0], "medium")
    assert ranker.kind_weights == before


def test_weights_clipped():
    ranker = KnowledgeRanker(learning_rate=2.0)
    item = make_items()[0]
    for __ in range(20):
        ranker.record_feedback(item, "high")
    assert ranker.kind_weights[item.kind] <= 4.0
    for __ in range(40):
        ranker.record_feedback(item, "low")
    assert ranker.kind_weights[item.kind] >= 0.25


def test_unknown_degree_raises():
    ranker = KnowledgeRanker()
    with pytest.raises(EngineError):
        ranker.record_feedback(make_items()[0], "superb")
    with pytest.raises(EngineError):
        KnowledgeRanker(learning_rate=0)


def test_rank_deterministic_tiebreak():
    a = KnowledgeItem(kind="cluster", end_goal="g", title="aaa")
    b = KnowledgeItem(kind="cluster", end_goal="g", title="bbb")
    a.score = b.score = 0.5
    assert [i.title for i in KnowledgeRanker().rank([b, a])] == [
        "aaa",
        "bbb",
    ]


# ----------------------------------------------------------------------
# navigation session
# ----------------------------------------------------------------------
def test_paging():
    session = NavigationSession(items=make_items(), page_size=5)
    assert session.n_pages() == 3
    assert len(session.page(0)) == 5
    assert len(session.page(2)) == 2
    assert session.seen_count() == 7


def test_page_validation():
    session = NavigationSession(items=make_items())
    with pytest.raises(EngineError):
        session.page(-1)
    with pytest.raises(EngineError):
        NavigationSession(items=[], page_size=0)


def test_kind_filter():
    session = NavigationSession(items=make_items(), page_size=20)
    session.filter_kind("itemset")
    page = session.page(0)
    assert page and all(item.kind == "itemset" for item in page)
    session.filter_kind(None)
    assert len(session.page(0)) == 12
    with pytest.raises(EngineError):
        session.filter_kind("vibes")


def test_goal_filter():
    session = NavigationSession(items=make_items(), page_size=20)
    session.filter_goal("care-pathway-rules")
    page = session.page(0)
    assert page
    assert all(item.end_goal == "care-pathway-rules" for item in page)


def test_feedback_adapts_ranking_and_persists():
    kdb = KnowledgeBase()
    items = make_items()
    kdb.store_items(items)
    session = NavigationSession(
        items=items, page_size=4, kdb=kdb, user="dr-x"
    )
    target = items[0]
    session.give_feedback(target, "high")
    assert target.degree == "high"
    assert kdb.feedback_count("dr-x") == 1
    with pytest.raises(EngineError):
        session.give_feedback(target, "wow")


def test_summary_mentions_counts():
    session = NavigationSession(items=make_items(), page_size=6)
    session.page(0)
    text = session.summary()
    assert "12 items" in text and "2 pages" in text


# ----------------------------------------------------------------------
# simulated expert
# ----------------------------------------------------------------------
def test_expert_labels_are_valid_degrees():
    expert = SimulatedExpert(seed=0)
    labels = expert.label_items(make_items())
    assert set(labels) <= {"high", "medium", "low"}


def test_expert_attach():
    expert = SimulatedExpert(seed=0)
    items = make_items()
    expert.label_items(items, attach=True)
    assert all(item.degree is not None for item in items)


def test_expert_prefers_higher_utility():
    expert = SimulatedExpert(clinician_profile(), seed=0)
    strong = make_items()[-1]  # highest score
    weak = make_items()[0]
    assert expert.prefers(strong, weak)


def test_expert_profiles_disagree():
    """Different specialisations order kinds differently."""
    item = KnowledgeItem(kind="outlier_set", end_goal="outlier-screening",
                         title="outliers")
    item.score = 0.5
    clinician = SimulatedExpert(clinician_profile(), seed=0)
    researcher = SimulatedExpert(researcher_profile(), seed=0)
    assert researcher.utility(item) > clinician.utility(item)


def test_expert_determinism():
    a = SimulatedExpert(administrator_profile(), seed=5)
    b = SimulatedExpert(administrator_profile(), seed=5)
    items = make_items()
    assert a.label_items(items) == b.label_items(items)
