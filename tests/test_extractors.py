"""Tests for knowledge-item extractors."""

import numpy as np
import pytest

from repro.core import (
    extract_cluster_items,
    extract_generalized_items,
    extract_itemset_items,
    extract_outlier_item,
    extract_rule_items,
)
from repro.exceptions import EngineError
from repro.mining import (
    KMeans,
    fpgrowth,
    generate_rules,
    mine_generalized_itemsets,
)
from repro.preprocess import VSMBuilder


@pytest.fixture(scope="module")
def clustered(small_log):
    vsm = VSMBuilder("binary").build(small_log)
    model = KMeans(4, seed=0).fit(vsm.matrix)
    return vsm, model


def test_cluster_items_structure(clustered, small_log):
    vsm, model = clustered
    items = extract_cluster_items(
        vsm.matrix,
        model.labels_,
        model.cluster_centers_,
        small_log,
        vsm.exam_codes,
    )
    assert items[0].kind == "cluster_set"
    cluster_items = items[1:]
    assert len(cluster_items) == 4
    total_size = sum(item.payload["size"] for item in cluster_items)
    assert total_size == vsm.matrix.shape[0]
    for item in cluster_items:
        assert 0.0 <= item.quality["cohesion"] <= 1.0
        assert 0.0 <= item.quality["size_share"] <= 1.0
        assert 0.0 <= item.quality["distinctiveness"] <= 1.0
        assert item.payload["top_exams"]


def test_cluster_items_top_exams_are_real_names(clustered, small_log):
    vsm, model = clustered
    items = extract_cluster_items(
        vsm.matrix, model.labels_, model.cluster_centers_, small_log,
        vsm.exam_codes,
    )
    names = {exam.name for exam in small_log.taxonomy}
    for item in items[1:]:
        assert set(item.payload["top_exams"]) <= names


def test_cluster_items_misaligned_labels_raise(clustered, small_log):
    vsm, model = clustered
    with pytest.raises(EngineError):
        extract_cluster_items(
            vsm.matrix, model.labels_[:-1], model.cluster_centers_,
            small_log, vsm.exam_codes,
        )


def test_cluster_set_quality_passthrough(clustered, small_log):
    vsm, model = clustered
    items = extract_cluster_items(
        vsm.matrix, model.labels_, model.cluster_centers_, small_log,
        vsm.exam_codes, run_quality={"accuracy": 0.9},
    )
    assert items[0].quality["accuracy"] == 0.9
    assert "overall_similarity" in items[0].quality


def test_itemset_items(transactions):
    itemsets = fpgrowth(transactions, 2 / 9)
    items = extract_itemset_items(itemsets, top=5)
    assert 0 < len(items) <= 5
    for item in items:
        assert item.kind == "itemset"
        assert len(item.payload["items"]) >= 2
        assert item.quality["length"] >= 2


def test_itemset_items_respect_min_length(transactions):
    itemsets = fpgrowth(transactions, 2 / 9)
    items = extract_itemset_items(itemsets, min_length=3)
    assert all(item.quality["length"] >= 3 for item in items)


def test_rule_items(transactions):
    itemsets = fpgrowth(transactions, 2 / 9)
    rules = generate_rules(itemsets, min_confidence=0.5)
    items = extract_rule_items(rules, top=10)
    assert items
    for item in items:
        assert item.kind == "association_rule"
        assert "=>" in item.title
        assert 0.0 < item.quality["confidence"] <= 1.0
        assert item.payload["antecedent"]
        assert item.payload["consequent"]


def test_generalized_items(small_log):
    generalized = mine_generalized_itemsets(
        small_log.transactions(),
        small_log.taxonomy.parent_map(),
        0.4,
        max_length=3,
    )
    items = extract_generalized_items(generalized, top=10)
    for item in items:
        assert item.payload["level"] in ("category", "mixed")
        assert item.title.startswith("[")


def test_outlier_item():
    labels = np.array([0, 0, 1, -1, -1, 1])
    item = extract_outlier_item(labels, [10, 11, 12, 13, 14, 15])
    assert item.kind == "outlier_set"
    assert item.payload["patient_ids"] == [13, 14]
    assert item.quality["noise_ratio"] == pytest.approx(2 / 6)
    assert "2 patients" in item.title


def test_outlier_item_truncates_long_lists():
    labels = np.full(500, -1)
    item = extract_outlier_item(labels, list(range(500)))
    assert len(item.payload["patient_ids"]) == 200
    assert item.payload["truncated"]


def test_provenance_propagates(transactions):
    itemsets = fpgrowth(transactions, 2 / 9)
    items = extract_itemset_items(
        itemsets, provenance={"algorithm": "fpgrowth"}
    )
    assert all(
        item.provenance["algorithm"] == "fpgrowth" for item in items
    )
