"""Tests for the K-selection optimiser (Table I machinery)."""

import numpy as np
import pytest

from repro.core import KMeansOptimizer, OptimizationRow, sse_plateau
from repro.core.optimizer import PAPER_K_VALUES
from repro.exceptions import MiningError
from repro.preprocess import L2Normalizer, VSMBuilder


@pytest.fixture(scope="module")
def matrix(small_log):
    vsm = VSMBuilder("binary").build(small_log)
    return L2Normalizer().transform(vsm.matrix)


@pytest.fixture(scope="module")
def report(matrix):
    optimizer = KMeansOptimizer(
        k_values=(3, 5, 7, 9), n_folds=4, seed=0,
        kmeans_params={"n_init": 2},
    )
    return optimizer.optimize(matrix)


def test_paper_k_values_constant():
    assert PAPER_K_VALUES == (6, 7, 8, 9, 10, 12, 15, 20)


def test_rows_sorted_by_k(report):
    ks = [row.k for row in report.rows]
    assert ks == [3, 5, 7, 9]


def test_sse_decreases_with_k(report):
    sses = [row.sse for row in report.rows]
    assert all(a >= b - 1e-9 for a, b in zip(sses, sses[1:]))


def test_metrics_in_unit_interval(report):
    for row in report.rows:
        assert 0.0 <= row.accuracy <= 1.0
        assert 0.0 <= row.avg_precision <= 1.0
        assert 0.0 <= row.avg_recall <= 1.0
        assert 0.0 <= row.overall_similarity <= 1.0


def test_best_k_maximises_combined(report):
    best = max(report.rows, key=lambda row: row.combined)
    assert report.best_k == best.k
    assert report.best_row.k == best.k


def test_best_row_carries_labels_and_centers(report, matrix):
    row = report.best_row
    assert row.labels is not None and len(row.labels) == matrix.shape[0]
    assert row.centers is not None and row.centers.shape[0] == row.k


def test_format_table_layout(report):
    table = report.format_table()
    assert "SSE" in table and "Accuracy" in table
    assert f"selected K = {report.best_k}" in table
    # Metrics rendered as percentages.
    best = report.best_row
    assert f"{best.accuracy * 100:.2f}" in table


def test_as_table_row_keys(report):
    row = report.rows[0].as_table_row()
    assert set(row) == {"K", "SSE", "Accuracy", "AVG Precision", "AVG Recall"}


def test_combined_formula():
    row = OptimizationRow(
        k=5, sse=1.0, accuracy=0.9, avg_precision=0.6, avg_recall=0.3,
        overall_similarity=0.5,
    )
    assert row.combined == pytest.approx(0.6)


def test_validation_errors():
    with pytest.raises(MiningError):
        KMeansOptimizer(k_values=())
    with pytest.raises(MiningError):
        KMeansOptimizer(k_values=(1, 2))


def test_deterministic(matrix):
    a = KMeansOptimizer(k_values=(3, 5), n_folds=3, seed=4).optimize(matrix)
    b = KMeansOptimizer(k_values=(3, 5), n_folds=3, seed=4).optimize(matrix)
    assert a.best_k == b.best_k
    assert [row.sse for row in a.rows] == [row.sse for row in b.rows]


def test_executor_injection(matrix):
    from repro.cloud import ThreadPoolExecutorBackend

    optimizer = KMeansOptimizer(
        k_values=(3, 5), n_folds=3, seed=0,
        executor=ThreadPoolExecutorBackend(2),
    )
    report = optimizer.optimize(matrix)
    assert [row.k for row in report.rows] == [3, 5]


def test_sse_plateau_detects_flat_tail():
    rows = [
        OptimizationRow(k=k, sse=sse, accuracy=0, avg_precision=0,
                        avg_recall=0, overall_similarity=0)
        for k, sse in [(2, 100.0), (4, 40.0), (6, 35.0), (8, 33.0)]
    ]
    plateau = sse_plateau(rows)
    assert 6 in plateau and 8 in plateau and 4 not in plateau


def test_sse_plateau_short_input():
    rows = [
        OptimizationRow(k=2, sse=10.0, accuracy=0, avg_precision=0,
                        avg_recall=0, overall_similarity=0)
    ]
    assert sse_plateau(rows) == [2]


def test_separable_data_small_k_wins(blobs):
    """On 3 clean blobs small K dominates: cluster boundaries align with
    real structure, so the robustness classifier is perfect; large K
    splits blobs arbitrarily and degrades."""
    data, __ = blobs
    optimizer = KMeansOptimizer(k_values=(2, 3, 6, 9), n_folds=4, seed=0)
    report = optimizer.optimize(data)
    assert report.best_k in (2, 3)
    assert report.best_row.combined == pytest.approx(1.0, abs=0.02)
    worst = max(report.rows, key=lambda row: row.k)
    assert worst.combined < report.best_row.combined
