"""Tests for clustering and classification quality metrics."""

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining import (
    accuracy,
    adjusted_rand_index,
    calinski_harabasz_index,
    classification_report,
    confusion_matrix,
    davies_bouldin_index,
    normalized_mutual_information,
    overall_similarity,
    precision_recall_f1,
    purity,
    silhouette_score,
    sse,
)


# ----------------------------------------------------------------------
# SSE
# ----------------------------------------------------------------------
def test_sse_hand_computed():
    data = np.array([[0.0], [2.0], [10.0], [12.0]])
    labels = np.array([0, 0, 1, 1])
    # Centroids 1 and 11; each point at distance 1 -> SSE = 4.
    assert sse(data, labels) == pytest.approx(4.0)


def test_sse_with_explicit_centers():
    data = np.array([[0.0], [2.0]])
    labels = np.array([0, 0])
    assert sse(data, labels, centers=np.array([[0.0]])) == pytest.approx(
        4.0
    )


def test_sse_zero_for_singletons():
    data = np.array([[1.0, 2.0], [3.0, 4.0]])
    assert sse(data, np.array([0, 1])) == pytest.approx(0.0)


def test_sse_misaligned_labels_raise():
    with pytest.raises(MiningError):
        sse(np.zeros((3, 2)), np.array([0, 1]))


# ----------------------------------------------------------------------
# overall similarity (the paper's interestingness metric)
# ----------------------------------------------------------------------
def test_overall_similarity_identical_vectors():
    data = np.tile([1.0, 2.0, 3.0], (5, 1))
    assert overall_similarity(data, np.zeros(5, dtype=int)) == pytest.approx(
        1.0
    )


def test_overall_similarity_orthogonal_pairs():
    data = np.array(
        [[1.0, 0.0], [0.0, 1.0], [1.0, 0.0], [0.0, 1.0]]
    )
    mixed = overall_similarity(data, np.array([0, 0, 1, 1]))
    separated = overall_similarity(data, np.array([0, 1, 0, 1]))
    # Orthogonal members: internal similarity 0.5 (self pairs only).
    assert mixed == pytest.approx(0.5)
    assert separated == pytest.approx(1.0)
    assert separated > mixed


def test_overall_similarity_exact_matches_fast(blobs):
    data, truth = blobs
    data = np.abs(data)  # non-negative, like exam counts
    fast = overall_similarity(data, truth)
    exact = overall_similarity(data, truth, exact=True)
    assert fast == pytest.approx(exact, abs=1e-10)


def test_overall_similarity_better_clustering_scores_higher(blobs):
    data, truth = blobs
    data = np.abs(data) + 0.1
    rng = np.random.default_rng(0)
    random_labels = rng.integers(0, 3, size=len(truth))
    assert overall_similarity(data, truth) > overall_similarity(
        data, random_labels
    )


def test_overall_similarity_in_unit_interval(small_log):
    matrix, __ = small_log.count_matrix()
    labels = np.arange(matrix.shape[0]) % 7
    value = overall_similarity(matrix, labels)
    assert 0.0 <= value <= 1.0


# ----------------------------------------------------------------------
# silhouette / DB / CH
# ----------------------------------------------------------------------
def test_silhouette_high_for_separated(blobs):
    data, truth = blobs
    assert silhouette_score(data, truth) > 0.8


def test_silhouette_poor_for_random(blobs):
    data, truth = blobs
    rng = np.random.default_rng(1)
    random_labels = rng.integers(0, 3, size=len(truth))
    assert silhouette_score(data, random_labels) < 0.1


def test_silhouette_requires_two_clusters(blobs):
    data, __ = blobs
    with pytest.raises(MiningError):
        silhouette_score(data, np.zeros(len(data), dtype=int))


def test_davies_bouldin_lower_is_better(blobs):
    data, truth = blobs
    rng = np.random.default_rng(2)
    random_labels = rng.integers(0, 3, size=len(truth))
    assert davies_bouldin_index(data, truth) < davies_bouldin_index(
        data, random_labels
    )


def test_calinski_harabasz_higher_is_better(blobs):
    data, truth = blobs
    rng = np.random.default_rng(3)
    random_labels = rng.integers(0, 3, size=len(truth))
    assert calinski_harabasz_index(data, truth) > calinski_harabasz_index(
        data, random_labels
    )


# ----------------------------------------------------------------------
# external cluster validation
# ----------------------------------------------------------------------
def test_ari_identical_and_permuted():
    labels = np.array([0, 0, 1, 1, 2, 2])
    permuted = np.array([2, 2, 0, 0, 1, 1])
    assert adjusted_rand_index(labels, labels) == pytest.approx(1.0)
    assert adjusted_rand_index(labels, permuted) == pytest.approx(1.0)


def test_ari_near_zero_for_random():
    rng = np.random.default_rng(4)
    a = rng.integers(0, 4, size=2000)
    b = rng.integers(0, 4, size=2000)
    assert abs(adjusted_rand_index(a, b)) < 0.05


def test_nmi_bounds_and_permutation_invariance():
    labels = np.array([0, 0, 1, 1])
    assert normalized_mutual_information(labels, labels) == pytest.approx(
        1.0
    )
    assert normalized_mutual_information(
        labels, np.array([1, 1, 0, 0])
    ) == pytest.approx(1.0)
    independent = normalized_mutual_information(
        np.array([0, 0, 1, 1]), np.array([0, 1, 0, 1])
    )
    assert independent == pytest.approx(0.0, abs=1e-9)


def test_purity_values():
    truth = np.array([0, 0, 1, 1])
    assert purity(truth, np.array([0, 0, 1, 1])) == 1.0
    assert purity(truth, np.array([0, 0, 0, 0])) == 0.5


# ----------------------------------------------------------------------
# classification metrics
# ----------------------------------------------------------------------
def test_confusion_matrix_layout():
    matrix, classes = confusion_matrix(
        ["a", "a", "b"], ["a", "b", "b"]
    )
    assert classes == ["a", "b"]
    assert matrix.tolist() == [[1, 1], [0, 1]]


def test_accuracy_simple():
    assert accuracy([1, 0, 1, 1], [1, 1, 1, 0]) == pytest.approx(0.5)
    with pytest.raises(MiningError):
        accuracy([], [])


def test_precision_recall_hand_computed():
    # One class perfectly predicted, the other never predicted.
    y_true = [0, 0, 1, 1]
    y_pred = [0, 0, 0, 0]
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, "macro")
    assert precision == pytest.approx((0.5 + 0.0) / 2)
    assert recall == pytest.approx((1.0 + 0.0) / 2)


def test_micro_average_equals_accuracy():
    y_true = [0, 1, 2, 2, 1]
    y_pred = [0, 2, 2, 2, 1]
    precision, recall, f1 = precision_recall_f1(y_true, y_pred, "micro")
    assert precision == recall == f1 == pytest.approx(
        accuracy(y_true, y_pred)
    )


def test_weighted_average_reflects_support():
    y_true = [0] * 9 + [1]
    y_pred = [0] * 10
    __, weighted_recall, __ = precision_recall_f1(
        y_true, y_pred, "weighted"
    )
    __, macro_recall, __ = precision_recall_f1(y_true, y_pred, "macro")
    assert weighted_recall == pytest.approx(0.9)
    assert macro_recall == pytest.approx(0.5)


def test_unknown_average_raises():
    with pytest.raises(MiningError):
        precision_recall_f1([0], [0], "harmonic")


def test_classification_report_structure():
    report = classification_report([0, 1, 1], [0, 1, 0])
    assert set(report) == {"0", "1", "macro avg", "accuracy"}
    assert report["1"]["support"] == 2.0
    assert 0.0 <= report["macro avg"]["f1"] <= 1.0


def test_perfect_prediction_metrics():
    y = [0, 1, 2, 0, 1, 2]
    precision, recall, f1 = precision_recall_f1(y, y, "macro")
    assert precision == recall == f1 == 1.0
