"""Tests for closed/maximal itemsets, kNN outliers, bootstrap stability."""

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining import (
    bootstrap_stability,
    closed_itemsets,
    fpgrowth,
    knn_outlier_scores,
    maximal_itemsets,
    stability_profile,
    top_outliers,
)


# ----------------------------------------------------------------------
# closed / maximal itemsets
# ----------------------------------------------------------------------
@pytest.fixture()
def frequent(transactions):
    return fpgrowth(transactions, 2 / 9)


def brute_closed(itemsets):
    return [
        s
        for s in itemsets
        if not any(
            s.items < t.items and t.count == s.count for t in itemsets
        )
    ]


def brute_maximal(itemsets):
    return [
        s
        for s in itemsets
        if not any(s.items < t.items for t in itemsets)
    ]


def test_closed_matches_brute_force(frequent):
    got = {s.items for s in closed_itemsets(frequent)}
    expected = {s.items for s in brute_closed(frequent)}
    assert got == expected


def test_maximal_matches_brute_force(frequent):
    got = {s.items for s in maximal_itemsets(frequent)}
    expected = {s.items for s in brute_maximal(frequent)}
    assert got == expected


def test_maximal_subset_of_closed(frequent):
    closed = {s.items for s in closed_itemsets(frequent)}
    maximal = {s.items for s in maximal_itemsets(frequent)}
    assert maximal <= closed


def test_closed_is_lossless_compression(frequent):
    """Every frequent itemset's support equals the support of its
    smallest closed superset."""
    closed = closed_itemsets(frequent)
    for itemset in frequent:
        supersets = [
            c for c in closed if itemset.items <= c.items
        ]
        assert supersets
        assert max(c.count for c in supersets) == itemset.count


def test_summaries_shrink_output(small_log):
    itemsets = fpgrowth(small_log.transactions(), 0.2)
    closed = closed_itemsets(itemsets)
    maximal = maximal_itemsets(itemsets)
    assert len(maximal) <= len(closed) <= len(itemsets)
    assert len(maximal) < len(itemsets)


def test_closed_on_equal_support_chain():
    """{a} always with {a, b}: only the larger one is closed."""
    itemsets = fpgrowth([["a", "b"], ["a", "b"], ["c"]], 1 / 3)
    closed = {s.items for s in closed_itemsets(itemsets)}
    assert frozenset(["a", "b"]) in closed
    assert frozenset(["a"]) not in closed


# ----------------------------------------------------------------------
# kNN outlier scores
# ----------------------------------------------------------------------
def test_isolated_point_scores_highest(blobs):
    data, __ = blobs
    spiked = np.vstack([data, [[50.0] * data.shape[1]]])
    scores = knn_outlier_scores(spiked, n_neighbors=4)
    assert int(np.argmax(scores)) == len(spiked) - 1


def test_top_outliers_ordering(blobs):
    data, __ = blobs
    spiked = np.vstack(
        [data, [[50.0] * data.shape[1]], [[-40.0] * data.shape[1]]]
    )
    indexes, scores = top_outliers(spiked, n_outliers=2, n_neighbors=4)
    assert set(indexes.tolist()) == {len(spiked) - 2, len(spiked) - 1}
    assert scores[0] >= scores[1]


def test_brute_force_matches_tree(blobs):
    data, __ = blobs
    tree_scores = knn_outlier_scores(
        data, n_neighbors=3, brute_force_dims=999
    )
    brute_scores = knn_outlier_scores(
        data, n_neighbors=3, brute_force_dims=1
    )
    assert np.allclose(tree_scores, brute_scores, atol=1e-9)


def test_duplicates_score_zero():
    data = np.vstack([np.zeros((6, 2)), np.ones((1, 2)) * 9])
    scores = knn_outlier_scores(data, n_neighbors=2)
    assert np.allclose(scores[:6], 0.0)
    assert scores[6] > 0


def test_outlier_validation(blobs):
    data, __ = blobs
    with pytest.raises(MiningError):
        knn_outlier_scores(data, n_neighbors=0)
    with pytest.raises(MiningError):
        knn_outlier_scores(data, n_neighbors=len(data))
    with pytest.raises(MiningError):
        top_outliers(data, n_outliers=0)


# ----------------------------------------------------------------------
# bootstrap stability
# ----------------------------------------------------------------------
def test_true_k_is_stable(blobs):
    data, __ = blobs
    score = bootstrap_stability(data, 3, n_replicates=6, seed=0)
    assert score > 0.9


def test_wrong_k_less_stable(blobs):
    data, __ = blobs
    right = bootstrap_stability(data, 3, n_replicates=6, seed=0)
    wrong = bootstrap_stability(data, 7, n_replicates=6, seed=0)
    assert right > wrong


def test_pure_noise_is_unstable():
    rng = np.random.default_rng(0)
    noise = rng.uniform(size=(150, 4))
    score = bootstrap_stability(noise, 4, n_replicates=6, seed=0)
    assert score < 0.6


def test_stability_profile_keys(blobs):
    data, __ = blobs
    profile = stability_profile(data, (2, 3), n_replicates=4, seed=0)
    assert set(profile) == {2, 3}
    assert all(-1.0 <= value <= 1.0 for value in profile.values())


def test_stability_custom_model(blobs):
    from repro.mining.kmedoids import KMedoids

    data, __ = blobs
    score = bootstrap_stability(
        data,
        3,
        n_replicates=4,
        seed=0,
        model_factory=lambda s: KMedoids(3, seed=s, n_init=1),
    )
    assert score > 0.8


def test_stability_validation(blobs):
    data, __ = blobs
    with pytest.raises(MiningError):
        bootstrap_stability(data, 3, n_replicates=1)
    with pytest.raises(MiningError):
        bootstrap_stability(data, 3, sample_fraction=0.01)
