"""Tests for k-fold splitters and cross-validation."""

import numpy as np
import pytest

from repro.exceptions import MiningError
from repro.mining import (
    DecisionTreeClassifier,
    KFold,
    MajorityClassifier,
    StratifiedKFold,
    cross_val_score,
    cross_validate,
    train_test_split,
)


def test_kfold_partitions_everything():
    splitter = KFold(n_splits=5, seed=0)
    seen = []
    for train, test in splitter.split(53):
        assert len(np.intersect1d(train, test)) == 0
        assert len(train) + len(test) == 53
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(53))


def test_kfold_unshuffled_contiguous():
    splitter = KFold(n_splits=2, shuffle=False)
    folds = [test for __, test in splitter.split(10)]
    assert folds[0].tolist() == [0, 1, 2, 3, 4]
    assert folds[1].tolist() == [5, 6, 7, 8, 9]


def test_kfold_validation():
    with pytest.raises(MiningError):
        KFold(n_splits=1)
    with pytest.raises(MiningError):
        list(KFold(n_splits=10).split(5))


def test_stratified_preserves_class_ratio():
    labels = np.array([0] * 80 + [1] * 20)
    for train, test in StratifiedKFold(n_splits=5, seed=1).split(labels):
        ratio = labels[test].mean()
        assert ratio == pytest.approx(0.2, abs=0.05)


def test_stratified_partitions_everything():
    labels = np.array([0, 1] * 25)
    seen = []
    for __, test in StratifiedKFold(n_splits=5, seed=0).split(labels):
        seen.extend(test.tolist())
    assert sorted(seen) == list(range(50))


def test_stratified_too_few_samples_raises():
    with pytest.raises(MiningError):
        list(StratifiedKFold(n_splits=5).split(np.array([0, 1])))


def test_train_test_split_sizes(blobs):
    data, labels = blobs
    X_train, X_test, y_train, y_test = train_test_split(
        data, labels, test_size=0.25, seed=0
    )
    assert len(X_test) == pytest.approx(0.25 * len(data), abs=1)
    assert len(X_train) + len(X_test) == len(data)
    assert len(y_train) == len(X_train)


def test_train_test_split_stratified_keeps_ratio():
    data = np.zeros((100, 2))
    labels = np.array([0] * 90 + [1] * 10)
    __, __, __, y_test = train_test_split(
        data, labels, test_size=0.2, stratify=True, seed=0
    )
    assert 0.05 <= y_test.mean() <= 0.2


def test_train_test_split_validation(blobs):
    data, labels = blobs
    with pytest.raises(MiningError):
        train_test_split(data, labels[:-1])
    with pytest.raises(MiningError):
        train_test_split(data, labels, test_size=0.0)


def test_cross_validate_default_metrics(blobs):
    data, labels = blobs
    result = cross_validate(
        lambda: DecisionTreeClassifier(max_depth=4),
        data,
        labels,
        n_splits=5,
    )
    assert set(result) == {"accuracy", "avg_precision", "avg_recall"}
    assert all(0.9 <= value <= 1.0 for value in result.values())


def test_cross_validate_custom_metric(blobs):
    data, labels = blobs
    result = cross_validate(
        lambda: MajorityClassifier(),
        data,
        labels,
        n_splits=5,
        metrics={"acc": lambda t, p: float((t == p).mean())},
    )
    # Majority class on 3 balanced blobs -> ~1/3 accuracy.
    assert result["acc"] == pytest.approx(1 / 3, abs=0.05)


def test_cross_validate_unstratified(blobs):
    data, labels = blobs
    result = cross_validate(
        lambda: DecisionTreeClassifier(max_depth=4),
        data,
        labels,
        n_splits=5,
        stratified=False,
    )
    assert result["accuracy"] > 0.9


def test_cross_val_score_per_fold(blobs):
    data, labels = blobs
    scores = cross_val_score(
        lambda: DecisionTreeClassifier(max_depth=4), data, labels, n_splits=5
    )
    assert scores.shape == (5,)
    assert scores.mean() > 0.9


def test_cross_validate_deterministic(blobs):
    data, labels = blobs
    factory = lambda: DecisionTreeClassifier(max_depth=3, seed=0)
    a = cross_validate(factory, data, labels, n_splits=4, seed=7)
    b = cross_validate(factory, data, labels, n_splits=4, seed=7)
    assert a == b
