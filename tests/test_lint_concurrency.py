"""Tests for the concurrency & resource-lifecycle rules ADA015–ADA018.

Each rule gets bad fixtures proving it fires — including the seeded
two-class A→B / B→A lock inversion that ADA015 exists to catch, with
the full call chain in the message — and good fixtures proving the
under-approximation stays quiet on correct code (consistent global
order, guarded writes, with/try-finally custody, blocking calls moved
outside the critical section).
"""

import textwrap

import pytest

from repro.lint import lint_source
from repro.lint.rules_concurrency import (
    GuardedStateWrites,
    LockOrderCycles,
    MustReleaseResources,
    NoBlockingUnderLock,
)

pytestmark = pytest.mark.lint


def run_rule(rule_class, source):
    return lint_source(textwrap.dedent(source), rules=[rule_class])


# ----------------------------------------------------------------------
# ADA015 — the project lock-order graph must be acyclic
# ----------------------------------------------------------------------
def test_ada015_reports_the_seeded_two_class_inversion():
    # The seeded A→B / B→A inversion: A.ping holds A._lock and calls
    # into B (which takes B._lock); B.ping does the mirror image.
    findings = run_rule(
        LockOrderCycles,
        """
        import threading


        class A:
            def __init__(self):
                self._lock = threading.Lock()

            def ping(self, other: "B"):
                with self._lock:
                    other.poke()

            def poke(self):
                with self._lock:
                    return 1


        class B:
            def __init__(self):
                self._lock = threading.Lock()

            def ping(self, other: A):
                with self._lock:
                    other.poke()

            def poke(self):
                with self._lock:
                    return 2
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA015"
    message = findings[0].message
    assert "lock-order cycle" in message
    assert "A._lock" in message and "B._lock" in message
    # the full call chain is in the message, both directions
    assert "A.ping" in message and "B.ping" in message
    assert "calls B.poke, which acquires" in message
    assert "calls A.poke, which acquires" in message


def test_ada015_cycle_via_nested_acquisitions():
    findings = run_rule(
        LockOrderCycles,
        """
        import threading

        LOCK_A = threading.Lock()
        LOCK_B = threading.Lock()


        def forward():
            with LOCK_A:
                with LOCK_B:
                    return 1


        def backward():
            with LOCK_B:
                with LOCK_A:
                    return 2
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA015"
    message = findings[0].message
    assert "lock-order cycle" in message
    assert "LOCK_A" in message and "LOCK_B" in message
    assert "deadlock" in message
    # full evidence chain: both acquisition sites are cited
    assert "forward" in message and "backward" in message


def test_ada015_cycle_through_the_call_graph():
    findings = run_rule(
        LockOrderCycles,
        """
        import threading

        LOCK_A = threading.Lock()
        LOCK_B = threading.Lock()


        def take_b():
            with LOCK_B:
                return 1


        def take_a():
            with LOCK_A:
                return 2


        def forward():
            with LOCK_A:
                return take_b()


        def backward():
            with LOCK_B:
                return take_a()
        """,
    )
    assert len(findings) == 1
    message = findings[0].message
    # the call chain is spelled out, not just the token pair
    assert "calls take_b, which acquires" in message
    assert "calls take_a, which acquires" in message


def test_ada015_quiet_on_globally_consistent_order():
    findings = run_rule(
        LockOrderCycles,
        """
        import threading

        LOCK_A = threading.Lock()
        LOCK_B = threading.Lock()


        def one():
            with LOCK_A:
                with LOCK_B:
                    return 1


        def two():
            with LOCK_A:
                with LOCK_B:
                    return 2
        """,
    )
    assert findings == []


def test_ada015_reentrant_self_nesting_is_not_a_cycle():
    findings = run_rule(
        LockOrderCycles,
        """
        import threading


        class Store:
            def __init__(self):
                self._lock = threading.RLock()

            def outer(self):
                with self._lock:
                    return self.inner()

            def inner(self):
                with self._lock:
                    return 1
        """,
    )
    assert findings == []


# ----------------------------------------------------------------------
# ADA016 — guarded attributes must be written under their lock
# ----------------------------------------------------------------------
def test_ada016_flags_unguarded_write_of_guarded_attribute():
    findings = run_rule(
        GuardedStateWrites,
        """
        import threading


        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1

            def reset(self):
                self.count = 0
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA016"
    assert "Counter.reset" in findings[0].message
    assert "self.count" in findings[0].message
    assert "_lock" in findings[0].message


def test_ada016_init_writes_are_exempt():
    findings = run_rule(
        GuardedStateWrites,
        """
        import threading


        class Counter:
            def __init__(self):
                self._lock = threading.Lock()
                self.count = 0

            def bump(self):
                with self._lock:
                    self.count += 1
        """,
    )
    assert findings == []


def test_ada016_strict_mode_for_thread_spawning_classes():
    findings = run_rule(
        GuardedStateWrites,
        """
        import threading


        class Worker:
            def __init__(self):
                self._lock = threading.Lock()
                self.results = None

            def start(self):
                thread = threading.Thread(target=self._run)
                thread.start()

            def _run(self):
                self.results = [1, 2, 3]
        """,
    )
    assert len(findings) == 1
    assert "thread-spawning class" in findings[0].message
    assert "self.results" in findings[0].message


def test_ada016_entry_held_clears_private_helpers():
    # _store is written without a lexical lock, but the only caller
    # holds it — the entry-context analysis must prove that.
    findings = run_rule(
        GuardedStateWrites,
        """
        import threading


        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self.data = {}

            def put(self, key, value):
                with self._lock:
                    self._store(key, value)

            def _store(self, key, value):
                self.data = dict(self.data, **{key: value})
        """,
    )
    assert findings == []


def test_ada016_public_method_does_not_inherit_entry_context():
    # Same shape but the helper is public: callers outside the project
    # are possible, so the write is still flagged.
    findings = run_rule(
        GuardedStateWrites,
        """
        import threading


        class Cache:
            def __init__(self):
                self._lock = threading.Lock()
                self.data = {}

            def put(self, key, value):
                with self._lock:
                    self.data = {}
                    self.store(key, value)

            def store(self, key, value):
                self.data = dict(self.data, **{key: value})
        """,
    )
    assert len(findings) == 1
    assert "Cache.store" in findings[0].message


# ----------------------------------------------------------------------
# ADA017 — resources with a release protocol released on all paths
# ----------------------------------------------------------------------
def test_ada017_flags_never_released_shared_memory():
    findings = run_rule(
        MustReleaseResources,
        """
        from multiprocessing import shared_memory

        def attach(name):
            segment = shared_memory.SharedMemory(name=name)
            size = segment.size
            return size
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA017"
    assert "segment" in findings[0].message
    assert "never released" in findings[0].message
    assert "close" in findings[0].message


def test_ada017_flags_happy_path_only_release():
    findings = run_rule(
        MustReleaseResources,
        """
        from multiprocessing import shared_memory

        def read(name):
            segment = shared_memory.SharedMemory(name=name)
            data = segment.buf[0]
            segment.close()
            return data
        """,
    )
    assert len(findings) == 1
    assert "happy path" in findings[0].message


def test_ada017_flags_temporary_released_via_wrong_method():
    # The blocks.py bug class: unlink() destroys the segment but the
    # caller's own mapping (created by the constructor) leaks.
    findings = run_rule(
        MustReleaseResources,
        """
        from multiprocessing import shared_memory

        def destroy(name):
            shared_memory.SharedMemory(name=name).unlink()
        """,
    )
    assert len(findings) == 1
    assert ".unlink()" in findings[0].message
    assert "does not discharge" in findings[0].message


def test_ada017_quiet_on_with_try_finally_and_custody_transfer():
    findings = run_rule(
        MustReleaseResources,
        """
        from multiprocessing import shared_memory

        def with_block(name):
            with shared_memory.SharedMemory(name=name) as segment:
                return bytes(segment.buf)

        def try_finally(name):
            segment = shared_memory.SharedMemory(name=name)
            try:
                return bytes(segment.buf)
            finally:
                segment.close()

        def handed_over(name, registry):
            segment = shared_memory.SharedMemory(name=name)
            registry.track(segment)

        def returned(name):
            segment = shared_memory.SharedMemory(name=name)
            return segment
        """,
    )
    assert findings == []


def test_ada017_flags_executor_without_shutdown():
    findings = run_rule(
        MustReleaseResources,
        """
        from concurrent.futures import ThreadPoolExecutor

        def fan_out(tasks):
            pool = ThreadPoolExecutor(max_workers=4)
            futures = [pool.submit(task) for task in tasks]
            return len(futures)
        """,
    )
    assert len(findings) == 1
    assert "shutdown" in findings[0].message


# ----------------------------------------------------------------------
# ADA018 — no blocking operations while holding a lock
# ----------------------------------------------------------------------
def test_ada018_flags_sleep_under_lock():
    findings = run_rule(
        NoBlockingUnderLock,
        """
        import threading
        import time


        class Poller:
            def __init__(self):
                self._lock = threading.Lock()

            def poll(self):
                with self._lock:
                    time.sleep(0.1)
        """,
    )
    assert len(findings) == 1
    assert findings[0].rule_id == "ADA018"
    assert "time.sleep" in findings[0].message
    assert "_lock" in findings[0].message


def test_ada018_transitive_blocking_reported_at_the_call_site():
    findings = run_rule(
        NoBlockingUnderLock,
        """
        import threading
        import time

        LOCK = threading.Lock()


        def settle():
            time.sleep(0.5)


        def update():
            with LOCK:
                settle()
        """,
    )
    assert len(findings) == 1
    message = findings[0].message
    assert "update" in message
    assert "settle" in message
    assert "time.sleep" in message  # originating evidence is cited


def test_ada018_helper_expected_to_hold_the_lock_reports_once():
    # The private helper is always entered with the lock held: the
    # blocking op is reported inside the helper (where the fix lives),
    # not duplicated at every call site.
    findings = run_rule(
        NoBlockingUnderLock,
        """
        import threading
        import os


        class Journal:
            def __init__(self):
                self._lock = threading.Lock()
                self.fd = 0

            def append(self, record):
                with self._lock:
                    self._flush()

            def _flush(self):
                os.fsync(self.fd)
        """,
    )
    assert len(findings) == 1
    assert "Journal._flush" in findings[0].message
    assert "os.fsync" in findings[0].message


def test_ada018_quiet_when_blocking_moved_outside_the_lock():
    findings = run_rule(
        NoBlockingUnderLock,
        """
        import threading
        import time


        class Poller:
            def __init__(self):
                self._lock = threading.Lock()
                self.due = False

            def poll(self):
                with self._lock:
                    due = self.due
                if due:
                    time.sleep(0.1)
        """,
    )
    assert findings == []
