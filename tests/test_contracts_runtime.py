"""Runtime consumption of purity certificates (repro.core.contracts).

Covers the degrading loader, certificate-stamped analysis-cache
entries (a fingerprint mismatch is a metered ``cache.cert_miss`` that
evicts), the ``executor="auto"`` fan-out gate, and the seeded
end-to-end proof: an engine re-run hits the cache under matching
certificates and meters cert misses after a (simulated) semantic edit
of the goal pipeline.
"""

import json
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.core import ADAHealth, EngineConfig
from repro.core.cache import AnalysisCache
from repro.core.contracts import (
    CERTS_RELPATH,
    CertificateSet,
    ContractError,
    default_certificates_path,
    load_certificates,
    validate_certificates,
)
from repro.obs.metrics import Metrics

REPO_ROOT = Path(__file__).resolve().parents[1]


def _document(fingerprint="fp-1", functions=None):
    return {
        "schema": "adalint/certificates/v1",
        "ruleset": "adalint/5",
        "functions": functions or {},
        "phases": {
            "run-goal": {
                "entry": "repro.core.engine:ADAHealth._run_goal",
                "exists": True,
                "fingerprint": fingerprint,
                "members": 3,
            },
            "rank": {
                "entry": "repro.core.ranking:KnowledgeRanker.rank",
                "exists": False,
                "fingerprint": "",
                "members": 0,
            },
        },
        "artifact_hash": "abc",
    }


def _cert_set(fingerprint="fp-1", functions=None):
    return CertificateSet.from_document(
        _document(fingerprint, functions)
    )


# ----------------------------------------------------------------------
# Validation and loading
# ----------------------------------------------------------------------
def test_validate_certificates_accepts_well_formed():
    assert validate_certificates(_document()) == _document()


@pytest.mark.parametrize(
    "mutate",
    [
        lambda d: d.pop("schema"),
        lambda d: d.update(schema="adalint/certificates/v99"),
        lambda d: d.pop("functions"),
        lambda d: d.update(functions=[]),
        lambda d: d.pop("artifact_hash"),
    ],
)
def test_validate_certificates_rejects_malformed(mutate):
    document = _document()
    mutate(document)
    with pytest.raises(ContractError):
        validate_certificates(document)


def test_certificate_set_lookups():
    certs = _cert_set(
        functions={
            "repro.core.engine:_run_goal_task": {
                "effect_free": True, "determinism": "seeded",
            }
        }
    )
    assert len(certs) == 1
    assert certs.effect_free(
        "repro.core.engine:_run_goal_task"
    ) is True
    assert certs.effect_free("repro.core.engine:unknown") is None
    assert certs.phase_fingerprint("run-goal") == "fp-1"
    assert certs.phase_fingerprint("rank") is None  # exists: false
    assert certs.phase_fingerprint("persist") is None  # absent


def test_load_certificates_explicit_path(tmp_path):
    artifact = tmp_path / "certs.json"
    artifact.write_text(json.dumps(_document()), encoding="utf-8")
    certs = load_certificates(artifact)
    assert certs is not None
    assert certs.path == artifact
    assert certs.ruleset == "adalint/5"


def test_load_certificates_warns_and_degrades_on_corruption(tmp_path):
    corrupt = tmp_path / "certs.json"
    corrupt.write_text("{broken", encoding="utf-8")
    with pytest.warns(UserWarning, match="running without contracts"):
        assert load_certificates(corrupt) is None
    wrong_schema = tmp_path / "wrong.json"
    wrong_schema.write_text(
        json.dumps({"schema": "nope"}), encoding="utf-8"
    )
    with pytest.warns(UserWarning):
        assert load_certificates(wrong_schema) is None


def test_checkout_artifact_loads_by_default():
    path = default_certificates_path()
    assert path is not None
    assert path == REPO_ROOT / CERTS_RELPATH
    certs = load_certificates()
    assert certs is not None
    assert len(certs) > 500
    assert certs.phase_fingerprint("run-goal")
    # the engine's goal task is certified effect-free, so "auto" may
    # fan out; this pin breaks if someone adds an effect to the task
    assert certs.effect_free(
        "repro.core.engine:_run_goal_task"
    ) is True


# ----------------------------------------------------------------------
# Certificate-stamped cache entries
# ----------------------------------------------------------------------
def test_cache_cert_mismatch_is_metered_miss_and_evicts():
    metrics = Metrics()
    cache = AnalysisCache(metrics=metrics, certificate="fp-old")
    cache.put("ds", "alg", {"k": 1}, {"value": 1})
    assert cache.get("ds", "alg", {"k": 1}) == {"value": 1}
    assert cache.cert_misses == 0

    cache.bind_certificate("fp-new")  # the producing code "changed"
    assert cache.get("ds", "alg", {"k": 1}) is None
    assert cache.cert_misses == 1
    assert metrics.counter_value("cache.cert_miss") == 1

    # eviction matters: put is idempotent on the key, so the stale
    # entry must be gone for the recomputed payload to stick
    cache.put("ds", "alg", {"k": 1}, {"value": 2})
    assert cache.get("ds", "alg", {"k": 1}) == {"value": 2}
    assert cache.stats()["cert_misses"] == 1


def test_cache_unstamped_entries_degrade_to_hits():
    cache = AnalysisCache()  # pre-certificate cache
    cache.put("ds", "alg", {"k": 1}, {"value": 1})
    cache.bind_certificate("fp-new")
    # entries without a stamp predate certificates; still served
    assert cache.get("ds", "alg", {"k": 1}) == {"value": 1}
    assert cache.cert_misses == 0


def test_cache_unbound_certificate_ignores_stamps():
    stamped = AnalysisCache(certificate="fp-1")
    stamped.put("ds", "alg", {"k": 1}, {"value": 1})
    stamped.bind_certificate(None)
    assert stamped.get("ds", "alg", {"k": 1}) == {"value": 1}
    assert stamped.cert_misses == 0


# ----------------------------------------------------------------------
# The executor="auto" fan-out gate
# ----------------------------------------------------------------------
def _auto_engine(certificates):
    return ADAHealth(
        config=EngineConfig(
            executor="auto", certificates=certificates
        )
    )


def test_fanout_gate_degrades_without_certificates():
    assert _auto_engine(False)._certified_for_fanout() is True
    # a set that does not cover the task: pre-certificate behaviour
    assert _auto_engine(_cert_set())._certified_for_fanout() is True


def test_fanout_gate_blocks_uncertified_effects():
    tainted = _cert_set(
        functions={
            "repro.core.engine:_run_goal_task": {
                "effect_free": False, "determinism": "wall-clock",
            }
        }
    )
    engine = _auto_engine(tainted)
    assert engine._certified_for_fanout() is False
    big_log = SimpleNamespace(n_records=10 ** 9)
    resolved = engine._resolved_executor(big_log)
    assert resolved == "serial"
    # multi-core hosts reach the certificate gate and meter the
    # fallback; single-core hosts resolve serial before it
    import os

    if (os.cpu_count() or 1) > 1:
        assert (
            engine.metrics.counter_value(
                "contracts.auto_serial_fallback"
            )
            == 1
        )


def test_fanout_gate_allows_certified_effect_free():
    clean = _cert_set(
        functions={
            "repro.core.engine:_run_goal_task": {
                "effect_free": True, "determinism": "seeded",
            }
        }
    )
    assert _auto_engine(clean)._certified_for_fanout() is True


# ----------------------------------------------------------------------
# Seeded end-to-end: cache hits under matching certs, metered misses
# after a semantic edit
# ----------------------------------------------------------------------
def _engine_with(cache, certificates, seed=7):
    return ADAHealth(
        config=EngineConfig(
            k_values=(2, 3),
            n_folds=2,
            use_cache=True,
            certificates=certificates,
        ),
        seed=seed,
        cache=cache,
    )


def _signature(result):
    return [
        (item.kind, item.title, round(item.score, 12))
        for item in result.items
    ]


def test_engine_cache_certified_hit_then_metered_cert_miss(tiny_log):
    cache = AnalysisCache()
    cold = _engine_with(cache, _cert_set("fp-a"))
    cold_result = cold.analyze(tiny_log, name="cold", user="t")
    assert cache.stores > 0

    # same certificates: the second engine's run is served from cache
    warm = _engine_with(cache, _cert_set("fp-a"))
    warm_result = warm.analyze(tiny_log, name="warm", user="t")
    assert _signature(warm_result) == _signature(cold_result)
    assert warm.cache.hits > 0
    assert warm.cache.cert_misses == 0

    # a different run-goal closure fingerprint simulates a semantic
    # edit of the pipeline: stamped entries become metered cert
    # misses, are evicted, and the recomputation is stored again
    edited = _engine_with(cache, _cert_set("fp-b"))
    stores_before = cache.stores
    edited_result = edited.analyze(tiny_log, name="edited", user="t")
    assert cache.cert_misses > 0
    assert (
        edited.metrics.counter_value("cache.cert_miss")
        == cache.cert_misses
    )
    assert cache.stores > stores_before
    assert _signature(edited_result) == _signature(cold_result)
