"""Tests for the telemetry subsystem: tracer, metrics, run manifests."""

import json
import logging
import pickle
import time

import pytest

from repro.core.engine import ADAHealth, EngineConfig
from repro.core.guidelines import past_experience
from repro.data.synthetic import small_dataset
from repro.exceptions import EngineError
from repro.kdb.kdb import COLLECTIONS, KnowledgeBase
from repro.obs import (
    MANIFEST_FIELDS,
    MANIFEST_SCHEMA,
    NULL_TRACER,
    InMemorySink,
    JsonlSink,
    LoggingSink,
    ManifestError,
    Metrics,
    NullTracer,
    RunManifestBuilder,
    Tracer,
    read_spans,
    validate_manifest,
)

pytestmark = pytest.mark.obs


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
def test_spans_nest_and_link():
    tracer = Tracer()
    with tracer.span("outer", goal="g") as outer:
        with tracer.span("inner") as inner:
            pass
    assert inner.parent_id == outer.span_id
    assert inner.trace_id == outer.trace_id == outer.span_id
    assert inner.depth == outer.depth + 1
    documents = tracer.finished()
    assert [d["name"] for d in documents] == ["inner", "outer"]
    assert documents[1]["attrs"] == {"goal": "g"}


def test_sibling_spans_share_parent():
    tracer = Tracer()
    with tracer.span("root") as root:
        with tracer.span("a") as a:
            pass
        with tracer.span("b") as b:
            pass
    assert a.parent_id == root.span_id
    assert b.parent_id == root.span_id
    assert a.span_id != b.span_id


def test_span_measures_time_and_attrs():
    tracer = Tracer()
    with tracer.span("work") as span:
        time.sleep(0.01)
        span.set(found=3)
    document = tracer.finished()[0]
    assert document["wall_s"] >= 0.01
    assert document["cpu_s"] >= 0.0
    assert document["status"] == "ok"
    assert document["attrs"] == {"found": 3}


def test_span_captures_exception_without_swallowing():
    tracer = Tracer()
    with pytest.raises(ValueError, match="boom"):
        with tracer.span("explodes"):
            raise ValueError("boom")
    document = tracer.finished()[0]
    assert document["status"] == "error"
    assert document["error"] == "ValueError: boom"


def test_record_span_parents_to_live_span():
    tracer = Tracer()
    with tracer.span("parent") as parent:
        document = tracer.record_span("worker-task", 1.25, k=8)
    assert document["parent_id"] == parent.span_id
    assert document["wall_s"] == 1.25
    assert document["attrs"] == {"k": 8}
    orphan = tracer.record_span("rootless", 0.5)
    assert orphan["parent_id"] is None
    assert orphan["trace_id"] == orphan["span_id"]


def test_null_tracer_is_inert():
    span = NULL_TRACER.span("anything", k=1)
    with span as inner:
        inner.set(more=2)
    assert NULL_TRACER.finished() == []
    assert NULL_TRACER.record_span("x", 1.0) is None
    assert NullTracer.enabled is False and Tracer.enabled is True


def test_jsonl_sink_writes_valid_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    with tracer.span("a"):
        with tracer.span("b"):
            pass
    lines = path.read_text().splitlines()
    documents = [json.loads(line) for line in lines]
    assert [d["name"] for d in documents] == ["b", "a"]
    assert documents[0]["parent_id"] == documents[1]["span_id"]


def test_jsonl_sink_durable_fsyncs_and_pickles(tmp_path):
    path = tmp_path / "trace.jsonl"
    sink = JsonlSink(path, durable=True)
    tracer = Tracer(sinks=[sink])
    with tracer.span("durable"):
        pass
    assert json.loads(path.read_text())["name"] == "durable"
    clone = pickle.loads(pickle.dumps(sink))
    assert clone.durable is True


def test_read_spans_tolerates_torn_final_line(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    # a crash mid-append tears the final line
    content = path.read_bytes()
    path.write_bytes(content[:-7])
    spans = read_spans(path)
    assert [span["name"] for span in spans] == ["a"]


def test_read_spans_rejects_interior_corruption(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    lines = path.read_bytes().splitlines(True)
    lines[0] = b"XX" + lines[0][2:]
    path.write_bytes(b"".join(lines))
    with pytest.raises(ValueError, match="corrupt"):
        read_spans(path)


def test_logging_sink_emits_records(caplog):
    tracer = Tracer(sinks=[LoggingSink(logger="obs-test")])
    with caplog.at_level(logging.INFO, logger="obs-test"):
        with tracer.span("logged"):
            pass
    assert any("logged" in message for message in caplog.messages)


def test_tracer_pickles_with_jsonl_sink(tmp_path):
    path = tmp_path / "trace.jsonl"
    tracer = Tracer(sinks=[JsonlSink(path)])
    with tracer.span("before-pickle"):
        pass
    clone = pickle.loads(pickle.dumps(tracer))
    with clone.span("after-pickle"):
        pass
    names = [
        json.loads(line)["name"] for line in path.read_text().splitlines()
    ]
    assert names == ["before-pickle", "after-pickle"]


def test_null_tracer_overhead_is_small():
    """Generous smoke bound: a no-op span must stay trivially cheap."""
    rounds = 10_000
    t0 = time.perf_counter()
    for _ in range(rounds):
        with NULL_TRACER.span("hot"):
            pass
    per_span = (time.perf_counter() - t0) / rounds
    assert per_span < 50e-6  # 50µs is ~100x the observed cost


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
def test_counter_and_gauge():
    metrics = Metrics()
    metrics.counter("jobs").inc()
    metrics.counter("jobs").inc(4)
    metrics.gauge("depth").set(3.5)
    metrics.gauge("depth").inc(0.5)
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["jobs"] == 5
    assert snapshot["gauges"]["depth"] == 4.0


def test_counter_rejects_negative():
    metrics = Metrics()
    with pytest.raises(ValueError):
        metrics.counter("jobs").inc(-1)


def test_registry_returns_same_instrument():
    metrics = Metrics()
    assert metrics.counter("c") is metrics.counter("c")
    assert metrics.histogram("h") is metrics.histogram("h")


def test_histogram_percentiles():
    metrics = Metrics()
    histogram = metrics.histogram("latency", bounds=[1.0, 2.0, 4.0])
    for value in (0.5, 1.5, 1.5, 3.0):
        histogram.observe(value)
    snapshot = histogram.snapshot()
    assert snapshot["count"] == 4
    assert snapshot["min"] == 0.5
    assert snapshot["max"] == 3.0
    assert 1.0 <= snapshot["p50"] <= 2.0
    assert snapshot["p90"] <= 4.0


def test_histogram_overflow_bucket_reports_observed_max():
    metrics = Metrics()
    histogram = metrics.histogram("big", bounds=[1.0])
    histogram.observe(100.0)
    assert histogram.percentile(0.99) == 100.0


def test_empty_histogram_percentile_is_none():
    metrics = Metrics()
    assert metrics.histogram("empty").percentile(0.5) is None


def test_metrics_snapshot_is_json_serialisable():
    metrics = Metrics()
    metrics.counter("c").inc()
    metrics.histogram("h").observe(1e9)  # lands in the +inf bucket
    encoded = json.dumps(metrics.snapshot())
    assert "inf" in encoded


def test_metrics_pickles():
    metrics = Metrics()
    metrics.counter("c").inc(2)
    metrics.histogram("h").observe(0.5)
    clone = pickle.loads(pickle.dumps(metrics))
    clone.counter("c").inc()
    assert clone.snapshot()["counters"]["c"] == 3


# ----------------------------------------------------------------------
# manifests
# ----------------------------------------------------------------------
def _built_manifest(status="completed"):
    builder = RunManifestBuilder(
        dataset_fingerprint="abc123",
        dataset_name="cohort",
        user="tester",
        seed=7,
    )
    builder.assess_goal("patient-segmentation", True, "dense enough")
    builder.add_goal(
        "patient-segmentation",
        wall_s=1.5,
        n_items=12,
        algorithms=["kmeans"],
    )
    builder.record_cache(True, hits=2, misses=1, stores=1)
    builder.record_executor("process", workers=4, task_failures=0)
    if status == "completed":
        return builder.finish(12, {"counters": {}})
    return builder.fail("EngineError: bad", {"counters": {}})


def test_manifest_builder_produces_valid_document():
    document = _built_manifest()
    assert validate_manifest(document) is document
    assert document["schema"] == MANIFEST_SCHEMA
    assert document["status"] == "completed"
    assert document["dataset"]["fingerprint"] == "abc123"
    assert document["goals"][0]["algorithms"] == ["kmeans"]
    assert document["cache"]["hits"] == 2
    assert document["executor"]["backend"] == "process"
    assert document["wall_s"] >= 0.0


def test_failed_manifest_carries_error():
    document = _built_manifest(status="failed")
    assert document["status"] == "failed"
    assert document["error"] == "EngineError: bad"
    assert document["n_items"] == 0


def test_validate_manifest_rejects_malformed():
    document = _built_manifest()
    for breakage in (
        lambda d: d.pop("cache"),
        lambda d: d.update(schema="bogus/v9"),
        lambda d: d.update(status="maybe"),
        lambda d: d.update(goals="not-a-list"),
        lambda d: d.update(goals=[{"name": "x"}]),
    ):
        broken = {
            key: (value.copy() if isinstance(value, (dict, list)) else value)
            for key, value in document.items()
        }
        breakage(broken)
        with pytest.raises(ManifestError):
            validate_manifest(broken)


def test_manifest_fields_constant_matches_builder():
    document = _built_manifest()
    assert set(MANIFEST_FIELDS) <= set(document)


# ----------------------------------------------------------------------
# K-DB runs collection
# ----------------------------------------------------------------------
def test_runs_collection_exists_but_not_in_paper_collections():
    kdb = KnowledgeBase()
    assert "runs" in kdb.store.collection_names()
    assert "runs" not in COLLECTIONS


def test_record_run_validates_and_queries():
    kdb = KnowledgeBase()
    kdb.record_run(_built_manifest())
    with pytest.raises(ManifestError):
        kdb.record_run({"schema": "nope"})
    assert kdb.run_count() == 1
    assert len(kdb.run_history(dataset_fingerprint="abc123")) == 1
    assert len(kdb.run_history(dataset_fingerprint="zzz")) == 0
    assert len(kdb.run_history(goal="patient-segmentation")) == 1
    assert len(kdb.run_history(goal="unknown-goal")) == 0


def test_run_history_most_recent_first():
    kdb = KnowledgeBase()
    first = _built_manifest()
    second = _built_manifest()
    second["started_at"] = first["started_at"] + 100.0
    kdb.record_run(first)
    kdb.record_run(second)
    history = kdb.run_history()
    assert history[0]["started_at"] > history[1]["started_at"]
    assert len(kdb.run_history(limit=1)) == 1


# ----------------------------------------------------------------------
# end to end: one analyze() -> one manifest + trace + metrics
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def traced_analysis(tmp_path_factory):
    trace_path = tmp_path_factory.mktemp("obs") / "trace.jsonl"
    sink = InMemorySink()
    tracer = Tracer(sinks=[sink, JsonlSink(trace_path)])
    metrics = Metrics()
    config = EngineConfig(
        use_cache=True,
        max_goals=3,
        min_support=0.35,  # keep dense synthetic transactions tractable
        min_confidence=0.6,
        sequence_min_support=0.5,
        sequence_max_length=2,
        tracer=tracer,
        metrics=metrics,
    )
    engine = ADAHealth(config=config, seed=11)
    log = small_dataset(n_patients=40, seed=11)
    result = engine.analyze(log, name="obs-e2e", user="tester")
    return engine, result, sink, metrics, trace_path


def test_analyze_writes_exactly_one_manifest(traced_analysis):
    engine, result, __, __, __ = traced_analysis
    assert engine.kdb.run_count() == 1
    manifest = engine.kdb.run_history()[0]
    validate_manifest(manifest)
    assert manifest["status"] == "completed"
    assert manifest["dataset"]["name"] == "obs-e2e"
    assert manifest["dataset"]["id"] == result.dataset_id
    assert manifest["user"] == "tester"
    assert manifest["n_items"] == len(result.items)
    assert len(manifest["goals"]) == len(result.runs)
    for goal in manifest["goals"]:
        assert goal["status"] == "completed"
        assert goal["wall_s"] >= 0.0
        assert goal["algorithms"]
    assert manifest["cache"]["enabled"] is True
    assert manifest["cache"]["misses"] > 0


def test_analyze_emits_nested_goal_spans(traced_analysis):
    __, result, sink, __, trace_path = traced_analysis
    spans = {span["name"]: span for span in sink.spans}
    for phase in ("analyze", "characterize", "run-goals", "score-and-rank"):
        assert phase in spans, f"missing {phase} span"
    analyze = spans["analyze"]
    assert spans["run-goals"]["parent_id"] == analyze["span_id"]
    goal_spans = [s for s in sink.spans if s["name"] == "goal"]
    assert len(goal_spans) == len(result.runs)
    assert all(
        span["parent_id"] == spans["run-goals"]["span_id"]
        for span in goal_spans
    )
    # The JSONL sink saw the same stream, one valid object per line.
    lines = trace_path.read_text().splitlines()
    assert [json.loads(line)["name"] for line in lines] == [
        span["name"] for span in sink.spans
    ]


def test_analyze_metrics_include_cache_counters(traced_analysis):
    __, __, __, metrics, __ = traced_analysis
    counters = metrics.snapshot()["counters"]
    assert "cache.hits" in counters
    assert "cache.misses" in counters
    assert "cache.stores" in counters
    assert counters["cache.misses"] > 0


def test_cached_rerun_manifest_marks_goals_cached(traced_analysis):
    engine, __, __, __, __ = traced_analysis
    log = small_dataset(n_patients=40, seed=11)
    engine.analyze(log, name="obs-e2e", user="tester")
    assert engine.kdb.run_count() == 2
    manifest = engine.kdb.run_history()[0]
    assert all(goal["cached"] for goal in manifest["goals"])
    assert manifest["cache"]["hits"] > 0
    assert manifest["cache"]["misses"] == 0


def test_past_experience_aggregates_runs(traced_analysis):
    engine, result, __, __, __ = traced_analysis
    experience = past_experience(engine.kdb)
    ran = {run.goal.name for run in result.runs}
    assert ran <= set(experience)
    for name in ran:
        entry = experience[name]
        assert entry["runs"] >= 1
        assert entry["failures"] == 0
        assert entry["algorithms"]
    only = past_experience(engine.kdb, goal_name=sorted(ran)[0])
    assert set(only) == {sorted(ran)[0]}


def test_failed_analysis_records_failed_manifest():
    config = EngineConfig(tracer=Tracer(), metrics=Metrics())
    engine = ADAHealth(config=config, seed=0)
    log = small_dataset(n_patients=30, seed=0)
    with pytest.raises(EngineError):
        engine.analyze(log, goals=["no-such-goal"], name="boom")
    assert engine.kdb.run_count() == 1
    manifest = engine.kdb.run_history()[0]
    validate_manifest(manifest)
    assert manifest["status"] == "failed"
    assert "no-such-goal" in manifest["error"]
    assert manifest["n_items"] == 0
    assert manifest["goals"] == []
    # Phases that ran before the failure are still traced.
    names = {span["name"] for span in engine.tracer.finished()}
    assert {"characterize", "assess-goals", "analyze"} <= names


def test_untraced_analysis_still_records_manifest():
    engine = ADAHealth(
        config=EngineConfig(
            max_goals=1, min_support=0.35, min_confidence=0.6
        ),
        seed=5,
    )
    log = small_dataset(n_patients=30, seed=5)
    result = engine.analyze(log, name="plain")
    assert engine.tracer is NULL_TRACER
    assert engine.kdb.run_count() == 1
    manifest = engine.kdb.run_history()[0]
    assert manifest["status"] == "completed"
    assert manifest["n_items"] == len(result.items)


def test_counts_keys_unchanged_by_runs_collection():
    engine = ADAHealth(seed=1)
    assert set(engine.kdb.counts()) == set(COLLECTIONS)
