"""Tests for K-medoids (PAM)."""

import numpy as np
import pytest

from repro.exceptions import MiningError, NotFittedError
from repro.mining import adjusted_rand_index
from repro.mining.kmedoids import KMedoids


def test_recovers_blobs(blobs):
    data, truth = blobs
    model = KMedoids(3, seed=0).fit(data)
    assert adjusted_rand_index(truth, model.labels_) == pytest.approx(1.0)


def test_medoids_are_data_points(blobs):
    data, __ = blobs
    model = KMedoids(3, seed=0).fit(data)
    for exemplar in model.medoids():
        assert any(np.allclose(exemplar, row) for row in data)
    assert len(set(model.medoid_indices_.tolist())) == 3


def test_labels_point_to_nearest_medoid(blobs):
    data, __ = blobs
    model = KMedoids(3, seed=0).fit(data)
    exemplars = model.medoids()
    distances = np.linalg.norm(
        data[:, None, :] - exemplars[None, :, :], axis=2
    )
    assert np.array_equal(model.labels_, np.argmin(distances, axis=1))


def test_inertia_is_total_distance(blobs):
    data, __ = blobs
    model = KMedoids(3, seed=0).fit(data)
    exemplars = model.medoids()
    expected = sum(
        np.linalg.norm(row - exemplars[label])
        for row, label in zip(data, model.labels_)
    )
    assert model.inertia_ == pytest.approx(expected, rel=1e-9)


def test_cosine_metric_on_vsm(small_log):
    from repro.preprocess import VSMBuilder

    matrix = VSMBuilder("count").build(small_log).matrix
    model = KMedoids(5, metric="cosine", seed=0).fit(matrix)
    assert len(np.unique(model.labels_)) == 5
    assert model.inertia_ >= 0


def test_manhattan_metric(blobs):
    data, truth = blobs
    model = KMedoids(3, metric="manhattan", seed=0).fit(data)
    assert adjusted_rand_index(truth, model.labels_) > 0.95


def test_predict_matches_fit(blobs):
    data, __ = blobs
    model = KMedoids(3, seed=0).fit(data)
    assert np.array_equal(model.predict(data), model.labels_)


def test_robust_to_moderate_outlier(blobs):
    """A moderate outlier joins a cluster without dragging the medoid
    (a mean-based centre would shift; the medoid stays on the blob).
    Splitting off the outlier would cost more than absorbing it."""
    data, truth = blobs
    outlier = np.full((1, data.shape[1]), 14.0)
    spiked = np.vstack([data, outlier])
    model = KMedoids(3, seed=0, n_init=5).fit(spiked)
    core_labels = model.labels_[:-1]
    assert adjusted_rand_index(truth, core_labels) > 0.95
    # No medoid is the outlier itself.
    assert len(spiked) - 1 not in set(model.medoid_indices_.tolist())


def test_duplicate_points():
    data = np.vstack([np.zeros((10, 2)), np.ones((10, 2))])
    model = KMedoids(2, seed=0).fit(data)
    assert model.inertia_ == pytest.approx(0.0)
    assert len(np.unique(model.labels_)) == 2


def test_deterministic(blobs):
    data, __ = blobs
    a = KMedoids(3, seed=5).fit(data)
    b = KMedoids(3, seed=5).fit(data)
    assert np.array_equal(a.labels_, b.labels_)
    assert a.inertia_ == b.inertia_


def test_validation(blobs):
    data, __ = blobs
    with pytest.raises(MiningError):
        KMedoids(0)
    with pytest.raises(MiningError):
        KMedoids(2, max_iter=0)
    with pytest.raises(MiningError):
        KMedoids(999).fit(data)
    with pytest.raises(NotFittedError):
        KMedoids(2).predict(data)
    with pytest.raises(NotFittedError):
        KMedoids(2).medoids()


def test_k_equals_one(blobs):
    data, __ = blobs
    model = KMedoids(1, seed=0).fit(data)
    assert len(np.unique(model.labels_)) == 1
