"""Tests for the architecture graph (paper Figure 1)."""

import pytest

from repro.core import COMPONENTS, INTERACTIONS, adjacency, render_text
from repro.core.architecture import component_by_key, validate
from repro.exceptions import EngineError


def test_validate_passes():
    validate()


def test_all_paper_blocks_present():
    keys = {component.key for component in COMPONENTS}
    assert {
        "user",
        "characterization",
        "optimization",
        "endgoals",
        "mining",
        "kdb",
        "navigation",
    } <= keys


def test_component_lookup():
    assert component_by_key("kdb").title.startswith("Knowledge Base")
    with pytest.raises(EngineError):
        component_by_key("blockchain")


def test_modules_exist():
    """Every block's implementing module actually imports."""
    import importlib

    for component in COMPONENTS:
        if component.module.startswith("("):
            continue  # human actor, not a module
        for module in component.module.split(","):
            importlib.import_module(module.strip())


def test_interactions_reference_known_components():
    keys = {component.key for component in COMPONENTS}
    for source, target, label in INTERACTIONS:
        assert source in keys
        assert target in keys
        assert label


def test_self_learning_loop_closed():
    """The feedback loop user -> kdb -> endgoals exists (paper SSIII)."""
    graph = adjacency()
    assert "kdb" in graph["user"]
    assert "endgoals" in graph["kdb"]
    assert "user" in graph["navigation"]


def test_render_mentions_every_component():
    text = render_text()
    for component in COMPONENTS:
        assert component.key in text
    assert "Figure 1" in text


def test_adjacency_covers_all_nodes():
    graph = adjacency()
    assert set(graph) == {component.key for component in COMPONENTS}
