"""Tests for automatic transform selection."""

import numpy as np
import pytest

from repro.exceptions import PreprocessError
from repro.preprocess import TransformSelector
from repro.preprocess.autoselect import DEFAULT_CANDIDATES


def test_selects_best_scoring_candidate(small_log):
    selector = TransformSelector(pilot_size=150, pilot_clusters=4, seed=0)
    selection = selector.select(small_log)
    best_score = max(c.score for c in selection.candidates)
    assert selection.best.score == best_score
    assert len(selection.candidates) == len(DEFAULT_CANDIDATES)


def test_output_matrix_matches_selection(small_log):
    selector = TransformSelector(
        candidates=[("count", "l2")], pilot_size=100, pilot_clusters=3
    )
    selection = selector.select(small_log)
    assert selection.best.weighting == "count"
    norms = np.linalg.norm(selection.transformed, axis=1)
    nonzero = norms > 0
    assert np.allclose(norms[nonzero], 1.0)
    assert selection.vsm.weighting == "count"


def test_report_lists_all_candidates(small_log):
    selector = TransformSelector(pilot_size=100, pilot_clusters=3, seed=1)
    selection = selector.select(small_log)
    report = selection.report()
    assert "<- selected" in report
    for candidate in selection.candidates:
        assert candidate.name in report


def test_deterministic_given_seed(small_log):
    a = TransformSelector(pilot_size=100, pilot_clusters=3, seed=5).select(
        small_log
    )
    b = TransformSelector(pilot_size=100, pilot_clusters=3, seed=5).select(
        small_log
    )
    assert a.best.name == b.best.name
    assert [c.score for c in a.candidates] == [
        c.score for c in b.candidates
    ]


def test_custom_metric_callable(small_log):
    # A metric preferring many small clusters: constant -> first wins.
    selector = TransformSelector(
        candidates=[("count", "identity"), ("binary", "identity")],
        pilot_size=80,
        pilot_clusters=3,
        metric=lambda matrix, labels: 1.0,
    )
    selection = selector.select(small_log)
    assert selection.best.weighting == "count"


def test_silhouette_metric(small_log):
    selector = TransformSelector(
        candidates=[("count", "l2"), ("binary", "l2")],
        pilot_size=80,
        pilot_clusters=3,
        metric="silhouette",
    )
    selection = selector.select(small_log)
    assert selection.best is not None


def test_validation_errors():
    with pytest.raises(PreprocessError):
        TransformSelector(candidates=[])
    with pytest.raises(PreprocessError):
        TransformSelector(candidates=[("bm25", "l2")])
    with pytest.raises(PreprocessError):
        TransformSelector(metric="mystery")
