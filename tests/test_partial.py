"""Tests for adaptive partial mining (horizontal and vertical)."""

import numpy as np
import pytest

from repro.core import (
    PAPER_FRACTIONS,
    PAPER_TOLERANCE,
    HorizontalPartialMiner,
    VerticalPartialMiner,
)
from repro.exceptions import MiningError


@pytest.fixture(scope="module")
def result(small_log):
    miner = HorizontalPartialMiner(
        fractions=(0.2, 0.5, 1.0), k_values=(4, 6), seed=0
    )
    return miner.mine(small_log)


def test_paper_constants():
    assert PAPER_FRACTIONS == (0.2, 0.4, 1.0)
    assert PAPER_TOLERANCE == 0.05


def test_subset_codes_are_most_frequent(small_log):
    miner = HorizontalPartialMiner(seed=0)
    codes = miner.subset_codes(small_log, 0.2)
    assert len(codes) == round(0.2 * small_log.n_exam_types)
    frequency = small_log.exam_frequency()
    chosen = min(frequency[c] for c in codes)
    excluded = [c for c in range(small_log.n_exam_types) if c not in codes]
    assert chosen >= max(frequency[c] for c in excluded)


def test_row_coverage_increases_with_fraction(small_log):
    miner = HorizontalPartialMiner(seed=0)
    coverages = [
        miner.row_coverage(small_log, miner.subset_codes(small_log, f))
        for f in (0.2, 0.5, 1.0)
    ]
    assert coverages[0] < coverages[1] < coverages[2]
    assert coverages[2] == pytest.approx(1.0)


def test_every_fraction_and_k_evaluated(result):
    assert len(result.runs) == 3 * 2
    assert result.fractions() == [0.2, 0.5, 1.0]
    for k in (4, 6):
        assert len(result.runs_for_k(k)) == 3


def test_full_fraction_zero_difference(result):
    for run in result.runs:
        if run.fraction_features == 1.0:
            assert run.pct_difference == pytest.approx(0.0)
            assert run.fraction_rows == pytest.approx(1.0)


def test_differences_nonnegative(result):
    assert all(run.pct_difference >= 0 for run in result.runs)


def test_similarities_in_unit_interval(result):
    assert all(0.0 <= run.similarity <= 1.0 for run in result.runs)


def test_selection_within_tolerance(result, small_log):
    if result.selected_fraction < 1.0:
        selected_runs = [
            run
            for run in result.runs
            if run.fraction_features == result.selected_fraction
        ]
        mean_diff = np.mean([run.pct_difference for run in selected_runs])
        assert mean_diff <= result.tolerance
    assert len(result.selected_codes) == round(
        result.selected_fraction * small_log.n_exam_types
    )


def test_tight_tolerance_selects_full_data(small_log):
    miner = HorizontalPartialMiner(
        fractions=(0.2, 1.0), k_values=(4,), tolerance=1e-9, seed=0
    )
    result = miner.mine(small_log)
    assert result.selected_fraction == 1.0


def test_loose_tolerance_selects_smallest(small_log):
    miner = HorizontalPartialMiner(
        fractions=(0.2, 1.0), k_values=(4,), tolerance=10.0, seed=0
    )
    result = miner.mine(small_log)
    assert result.selected_fraction == 0.2


def test_format_table_contains_selection(result):
    table = result.format_table()
    assert "% types" in table
    assert "selected subset" in table


def test_validation_errors():
    with pytest.raises(MiningError):
        HorizontalPartialMiner(fractions=(0.2, 0.4))  # must end at 1.0
    with pytest.raises(MiningError):
        HorizontalPartialMiner(fractions=())
    with pytest.raises(MiningError):
        HorizontalPartialMiner(fractions=(-0.5, 1.0))
    with pytest.raises(MiningError):
        HorizontalPartialMiner(k_values=(1,))
    with pytest.raises(MiningError):
        HorizontalPartialMiner(tolerance=0.0)


def test_count_weighting_also_runs(small_log):
    miner = HorizontalPartialMiner(
        fractions=(0.5, 1.0), k_values=(4,), weighting="count",
        normalize=False, seed=0,
    )
    result = miner.mine(small_log)
    assert result.runs


# ----------------------------------------------------------------------
# vertical
# ----------------------------------------------------------------------
def test_vertical_runs_and_selects(small_log):
    miner = VerticalPartialMiner(
        fractions=(0.3, 0.6, 1.0), k=4, seed=0
    )
    result = miner.mine(small_log)
    assert len(result.runs) == 3
    fractions = sorted(run.fraction_rows for run in result.runs)
    assert fractions == [0.3, 0.6, 1.0]
    assert 0.3 <= result.selected_fraction <= 1.0


def test_vertical_full_sample_zero_diff(small_log):
    miner = VerticalPartialMiner(fractions=(0.5, 1.0), k=4, seed=0)
    result = miner.mine(small_log)
    full = [r for r in result.runs if r.fraction_rows == 1.0][0]
    assert full.pct_difference == pytest.approx(0.0)


def test_vertical_validation():
    with pytest.raises(MiningError):
        VerticalPartialMiner(fractions=(0.5,))
    with pytest.raises(MiningError):
        VerticalPartialMiner(k=1)
