"""Tests for the pluggable storage layer: LocalStorage semantics and
the determinism, event accounting and partial-effect model of
FaultyStorage (torn appends, torn atomic writes, ENOSPC, crash points,
lose-unsynced rollback)."""

import errno

import pytest

from repro.kdb.storage import (
    FaultyStorage,
    LocalStorage,
    SimulatedCrash,
)

pytestmark = pytest.mark.crash


# ----------------------------------------------------------------------
# LocalStorage
# ----------------------------------------------------------------------
def test_append_handle_round_trip(tmp_path):
    storage = LocalStorage()
    path = tmp_path / "log.jsonl"
    handle = storage.open_append(path)
    handle.write_line("one")
    handle.write_line("two")
    handle.close(sync=True)
    assert path.read_text() == "one\ntwo\n"
    # append mode: a second handle continues, never truncates
    handle = storage.open_append(path)
    handle.write_line("three")
    handle.close()
    assert path.read_text() == "one\ntwo\nthree\n"


def test_atomic_write_replaces_whole_file(tmp_path):
    storage = LocalStorage()
    path = tmp_path / "file.json"
    storage.atomic_write(path, "old")
    storage.atomic_write(path, "new")
    assert path.read_text() == "new"
    assert not path.with_name("file.json.tmp").exists()


def test_create_exclusive_is_exclusive(tmp_path):
    storage = LocalStorage()
    path = tmp_path / "lock"
    storage.create_exclusive(path, "123")
    assert path.read_text() == "123"
    with pytest.raises(FileExistsError):
        storage.create_exclusive(path, "456")


def test_remove_tolerates_missing(tmp_path):
    LocalStorage().remove(tmp_path / "nope")


def test_truncate(tmp_path):
    storage = LocalStorage()
    path = tmp_path / "f"
    path.write_text("abcdef")
    storage.truncate(path, 3)
    assert path.read_text() == "abc"


# ----------------------------------------------------------------------
# FaultyStorage: event accounting
# ----------------------------------------------------------------------
def _workload(storage, root):
    handle = storage.open_append(root / "log")
    handle.write_line("r1")  # event 1: append
    handle.write_line("r2")  # event 2: append
    handle.sync()  # event 3: sync
    handle.close()
    storage.atomic_write(root / "base", "data\n")  # event 4
    storage.create_exclusive(root / "lock", "pid")  # event 5
    storage.remove(root / "lock")  # event 6
    storage.truncate(root / "log", 3)  # event 7


def test_clean_pass_counts_events(tmp_path):
    storage = FaultyStorage(seed=7)
    _workload(storage, tmp_path)
    assert storage.events == 7
    assert [op for _, op, _ in storage.log] == [
        "append",
        "append",
        "sync",
        "atomic_write",
        "create_exclusive",
        "remove",
        "truncate",
    ]
    assert not storage.crashed


def test_crash_point_kills_and_stays_dead(tmp_path):
    storage = FaultyStorage(seed=7, crash_at=2)
    with pytest.raises(SimulatedCrash):
        _workload(storage, tmp_path)
    assert storage.crashed
    with pytest.raises(SimulatedCrash):
        storage.atomic_write(tmp_path / "x", "y")
    with pytest.raises(SimulatedCrash):
        storage.open_append(tmp_path / "x")


def test_simulated_crash_is_not_an_exception():
    # a crash models SIGKILL: no `except Exception` may absorb it
    assert not issubclass(SimulatedCrash, Exception)
    assert issubclass(SimulatedCrash, BaseException)


def test_torn_append_leaves_a_strict_prefix(tmp_path):
    storage = FaultyStorage(seed=3, crash_at=2)
    with pytest.raises(SimulatedCrash):
        _workload(storage, tmp_path)
    content = (tmp_path / "log").read_bytes()
    assert content.startswith(b"r1\n")
    # the torn second record is a strict prefix of "r2\n"
    tail = content[len(b"r1\n"):]
    assert tail != b"r2\n"
    assert b"r2\n".startswith(tail)


def test_torn_atomic_write_never_touches_target(tmp_path):
    (tmp_path / "base").write_text("old")
    storage = FaultyStorage(seed=1, crash_at=4)
    with pytest.raises(SimulatedCrash):
        _workload(storage, tmp_path)
    assert (tmp_path / "base").read_text() == "old"
    assert (tmp_path / "base.tmp").exists()


def test_same_seed_same_crash_same_bytes(tmp_path):
    states = []
    for attempt in ("a", "b"):
        root = tmp_path / attempt
        root.mkdir()
        storage = FaultyStorage(seed=11, crash_at=2)
        with pytest.raises(SimulatedCrash):
            _workload(storage, root)
        states.append((root / "log").read_bytes())
    assert states[0] == states[1]


def test_enospc_fails_once_without_crashing(tmp_path):
    storage = FaultyStorage(seed=0, enospc_at=2)
    handle = storage.open_append(tmp_path / "log")
    handle.write_line("ok")
    with pytest.raises(OSError) as info:
        handle.write_line("fails")
    assert info.value.errno == errno.ENOSPC
    assert not storage.crashed
    handle.write_line("recovers")  # space freed: later writes succeed
    handle.close()
    assert (tmp_path / "log").read_text() == "ok\nrecovers\n"


def test_lose_unsynced_rolls_back_to_last_fsync(tmp_path):
    storage = FaultyStorage(seed=5, crash_at=5, lose_unsynced=True)
    handle = storage.open_append(tmp_path / "log")
    handle.write_line("durable")  # event 1
    handle.sync()  # event 2: fsync landed
    handle.write_line("flushed-only")  # event 3
    handle.write_line("flushed-only-2")  # event 4
    with pytest.raises(SimulatedCrash):
        handle.write_line("in-flight")  # event 5: crash
    # everything after the last sync vanished with the page cache
    assert (tmp_path / "log").read_text() == "durable\n"


def test_completed_faulty_run_is_byte_identical_to_clean(tmp_path):
    clean_root = tmp_path / "clean"
    faulty_root = tmp_path / "faulty"
    clean_root.mkdir()
    faulty_root.mkdir()
    _workload(LocalStorage(), clean_root)
    _workload(FaultyStorage(seed=9), faulty_root)  # no crash scheduled
    for name in ("log", "base"):
        assert (clean_root / name).read_bytes() == (
            faulty_root / name
        ).read_bytes()
