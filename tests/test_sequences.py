"""Tests for sequential-pattern mining (PrefixSpan)."""

import pytest

from repro.exceptions import MiningError
from repro.mining.sequences import (
    SequentialPattern,
    mine_log_sequences,
    mine_sequences,
    pattern_contains,
    sequences_from_log,
)


def seq(*elements):
    return [frozenset(element) for element in elements]


@pytest.fixture()
def toy_db():
    """Classic PrefixSpan example-style database (4 sequences)."""
    return [
        seq(["a"], ["a", "b", "c"], ["a", "c"], ["d"], ["c", "f"]),
        seq(["a", "d"], ["c"], ["b", "c"], ["a", "e"]),
        seq(["e", "f"], ["a", "b"], ["d", "f"], ["c"], ["b"]),
        seq(["e"], ["g"], ["a", "f"], ["c"], ["b"], ["c"]),
    ]


def brute_force_support(pattern_elements, database):
    pattern = SequentialPattern(
        elements=tuple(pattern_elements), count=0, support=0.0
    )
    return sum(
        1 for sequence in database if pattern_contains(pattern, sequence)
    )


def test_single_item_supports(toy_db):
    patterns = mine_sequences(toy_db, min_support=0.5, max_length=1)
    by_form = {p.elements: p.count for p in patterns}
    assert by_form[(frozenset(["a"]),)] == 4
    assert by_form[(frozenset(["b"]),)] == 4
    assert by_form[(frozenset(["c"]),)] == 4
    assert by_form[(frozenset(["d"]),)] == 3
    assert by_form[(frozenset(["e"]),)] == 3
    assert by_form[(frozenset(["f"]),)] == 3
    assert (frozenset(["g"]),) not in by_form  # support 1 < 2


def test_counts_match_brute_force(toy_db):
    patterns = mine_sequences(toy_db, min_support=0.5, max_length=3)
    for pattern in patterns:
        expected = brute_force_support(pattern.elements, toy_db)
        assert pattern.count == expected, str(pattern)


def test_no_duplicate_patterns(toy_db):
    patterns = mine_sequences(toy_db, min_support=0.25, max_length=3)
    forms = [pattern.elements for pattern in patterns]
    assert len(forms) == len(set(forms))


def test_supports_meet_threshold(toy_db):
    patterns = mine_sequences(toy_db, min_support=0.75, max_length=3)
    assert patterns
    assert all(pattern.count >= 3 for pattern in patterns)


def test_known_two_element_pattern(toy_db):
    """<{a} {c}> is supported by all four sequences."""
    patterns = mine_sequences(toy_db, min_support=0.9, max_length=2)
    forms = {p.elements for p in patterns}
    assert (frozenset(["a"]), frozenset(["c"])) in forms


def test_itemset_extension_found():
    database = [
        seq(["a"], ["b", "c"]),
        seq(["a"], ["b", "c"], ["d"]),
        seq(["b", "c"],),
    ]
    patterns = mine_sequences(database, min_support=0.6, max_length=2)
    forms = {p.elements: p.count for p in patterns}
    assert forms[(frozenset(["b", "c"]),)] == 3
    assert forms[(frozenset(["a"]), frozenset(["b", "c"]))] == 2


def test_ordering_matters():
    database = [
        seq(["a"], ["b"]),
        seq(["a"], ["b"]),
        seq(["b"], ["a"]),
    ]
    patterns = mine_sequences(database, min_support=0.6, max_length=2)
    forms = {p.elements: p.count for p in patterns}
    assert forms[(frozenset(["a"]), frozenset(["b"]))] == 2
    assert (frozenset(["b"]), frozenset(["a"])) not in forms


def test_max_length_respected(toy_db):
    patterns = mine_sequences(toy_db, min_support=0.5, max_length=2)
    assert all(len(pattern) <= 2 for pattern in patterns)


def test_validation():
    with pytest.raises(MiningError):
        mine_sequences([], 0.5)
    with pytest.raises(MiningError):
        mine_sequences([seq(["a"])], 0.0)
    with pytest.raises(MiningError):
        mine_sequences([seq(["a"])], 1.5)


def test_pattern_contains():
    pattern = SequentialPattern(
        elements=(frozenset(["a"]), frozenset(["b", "c"])),
        count=0,
        support=0.0,
    )
    assert pattern_contains(pattern, seq(["a"], ["x"], ["b", "c", "d"]))
    assert not pattern_contains(pattern, seq(["b", "c"], ["a"]))
    assert not pattern_contains(pattern, seq(["a"], ["b"], ["c"]))


def test_sequences_from_log(handmade_log):
    sequences = sequences_from_log(handmade_log)
    # Patient 1: day 1 {exam0, exam1}, day 2 {exam0}; patient 2 one
    # visit; patient 3 three single-exam visits.
    assert len(sequences) == 3
    assert len(sequences[0]) == 2
    assert len(sequences[0][0]) == 2
    assert len(sequences[2]) == 3


def test_mine_log_sequences_runs(tiny_log):
    patterns = mine_log_sequences(tiny_log, min_support=0.3, max_length=2)
    assert patterns
    database = sequences_from_log(tiny_log)
    for pattern in patterns[:10]:
        assert pattern.count == brute_force_support(
            pattern.elements, database
        )


def test_repeated_visits_counted_once_per_patient():
    database = [
        seq(["a"], ["a"], ["a"]),
        seq(["a"],),
    ]
    patterns = mine_sequences(database, min_support=0.5, max_length=2)
    forms = {p.elements: p.count for p in patterns}
    assert forms[(frozenset(["a"]),)] == 2
    assert forms[(frozenset(["a"]), frozenset(["a"]))] == 1


def test_n_items_property():
    pattern = SequentialPattern(
        elements=(frozenset(["a", "b"]), frozenset(["c"])),
        count=1,
        support=0.5,
    )
    assert pattern.n_items == 3
    assert "->" in str(pattern)
