"""Tests for the whole-program analysis layer (repro.lint.graph).

Covers module-summary extraction, cross-module symbol resolution, the
transitive effect inference (including its documented approximations),
call-path evidence, and the import-closure queries the incremental
cache keys on. Everything here is pure AST analysis — no fixture
module is ever imported.
"""

import textwrap

import pytest

from repro.lint.graph import (
    ModuleSummary,
    ProjectGraph,
    extract_summary,
    module_name_for,
)

pytestmark = pytest.mark.lint


def build_graph(modules):
    """``{module name: source}`` -> linked :class:`ProjectGraph`."""
    summaries = [
        extract_summary(
            textwrap.dedent(source),
            "src/" + name.replace(".", "/") + ".py",
            name,
        )
        for name, source in modules.items()
    ]
    return ProjectGraph(summaries)


def effect_kinds(graph, qualid):
    return {effect.kind for effect in graph.effects(qualid)}


# ----------------------------------------------------------------------
# Module naming and summary extraction
# ----------------------------------------------------------------------
def test_module_name_for_strips_src_and_init():
    assert module_name_for("src/repro/core/engine.py") == (
        "repro.core.engine"
    )
    assert module_name_for("src/repro/__init__.py") == "repro"
    assert module_name_for("benchmarks/bench_engine.py") == (
        "benchmarks.bench_engine"
    )


def test_direct_effects_are_classified():
    graph = build_graph(
        {
            "m": """
            import time
            import numpy as np

            COUNTER = []

            def stamp():
                return time.time()

            def draw():
                return np.random.default_rng()

            def log(message):
                print(message)

            def bump():
                COUNTER.append(1)

            def extend(items):
                items.append(1)

            def pure(x):
                return x + 1
            """
        }
    )
    assert effect_kinds(graph, "m:stamp") == {"wall-clock"}
    assert effect_kinds(graph, "m:draw") == {"unseeded-rng"}
    assert effect_kinds(graph, "m:log") == {"io"}
    assert effect_kinds(graph, "m:bump") == {"global-write"}
    assert effect_kinds(graph, "m:extend") == {"mutates-param"}
    assert graph.effects("m:pure") == ()


def test_seeded_rng_is_not_an_effect():
    graph = build_graph(
        {
            "m": """
            import numpy as np

            def draw(seed):
                return np.random.default_rng(seed)
            """
        }
    )
    assert graph.effects("m:draw") == ()


# ----------------------------------------------------------------------
# Cross-module propagation
# ----------------------------------------------------------------------
def test_effects_propagate_across_modules_with_origin():
    graph = build_graph(
        {
            "helper": """
            import time

            def now():
                return time.time()
            """,
            "app": """
            from helper import now

            def task():
                return now()

            def pure(x):
                return x + 1
            """,
        }
    )
    effects = graph.effects("app:task")
    assert {effect.kind for effect in effects} == {"wall-clock"}
    # the origin of the effect is preserved through propagation
    assert effects[0].module == "helper"
    assert effects[0].qualname == "now"
    assert graph.effects("app:pure") == ()


def test_resolve_symbol_follows_imports_and_dotted_chains():
    graph = build_graph(
        {
            "helper": """
            def work(x):
                return x
            """,
            "app": """
            import helper
            from helper import work

            def a():
                return work(1)

            def b():
                return helper.work(2)
            """,
        }
    )
    assert graph.resolve_symbol("app", "work") == "helper:work"
    assert graph.resolve_symbol("app", "helper.work") == "helper:work"
    assert graph.resolve_symbol("app", "nothing") is None


# ----------------------------------------------------------------------
# Mutation binding at call boundaries
# ----------------------------------------------------------------------
def test_param_mutation_maps_through_argument_binding():
    graph = build_graph(
        {
            "m": """
            def fill(bucket):
                bucket.append(1)

            def caller(items):
                fill(items)

            def local_only():
                fresh = []
                fill(fresh)
                return fresh
            """
        }
    )
    # caller passes its own parameter -> the mutation is visible to
    # *its* callers too
    assert effect_kinds(graph, "m:caller") == {"mutates-param"}
    # a fresh local absorbs the mutation: not an external effect
    assert graph.effects("m:local_only") == ()


def test_mutating_module_state_via_callee_becomes_global_write():
    graph = build_graph(
        {
            "m": """
            REGISTRY = []

            def fill(bucket):
                bucket.append(1)

            def register():
                fill(REGISTRY)
            """
        }
    )
    assert effect_kinds(graph, "m:register") == {"global-write"}


def test_constructor_self_writes_are_absorbed():
    graph = build_graph(
        {
            "m": """
            class Model:
                def __init__(self, k):
                    self.k = k
                    self.labels = []

            def build(k):
                return Model(k)
            """
        }
    )
    # __init__ mutates the fresh instance, not anything the caller
    # passed in — building an object is effect-free from outside.
    assert graph.effects("m:build") == ()


def test_self_private_writes_are_treated_as_memoisation():
    graph = build_graph(
        {
            "m": """
            class Table:
                def rows(self):
                    self._rows = [1, 2]
                    return self._rows

                def publish(self):
                    self.total = 3
            """
        }
    )
    # lazy caching into an underscore-private slot: documented blind
    # spot, not reported; a public attribute write still is.
    assert graph.effects("m:Table.rows") == ()
    assert effect_kinds(graph, "m:Table.publish") == {"mutates-param"}


def test_typed_parameter_resolves_method_calls():
    graph = build_graph(
        {
            "eng": """
            import time

            class Engine:
                def run(self):
                    return time.time()
            """,
            "use": """
            def drive(engine: "Engine"):
                return engine.run()
            """,
        }
    )
    assert effect_kinds(graph, "use:drive") == {"wall-clock"}


# ----------------------------------------------------------------------
# Fixed point, reachability, call-path evidence
# ----------------------------------------------------------------------
def test_mutually_recursive_functions_terminate():
    graph = build_graph(
        {
            "m": """
            def a(n):
                return b(n)

            def b(n):
                if n:
                    return a(n - 1)
                return 0
            """
        }
    )
    assert graph.effects("m:a") == ()
    assert graph.effects("m:b") == ()


def test_reachable_from_and_call_path():
    graph = build_graph(
        {
            "m": """
            import time

            def leaf():
                return time.time()

            def mid():
                return leaf()

            def top():
                return mid()
            """
        }
    )
    assert {"m:top", "m:mid", "m:leaf"} <= graph.reachable_from("m:top")
    path = graph.call_path("m:top", lambda q: q == "m:leaf")
    assert path == ["m:top", "m:mid", "m:leaf"]
    assert graph.call_path("m:leaf", lambda q: q == "m:top") is None


# ----------------------------------------------------------------------
# Import closure / dependents (what the incremental cache keys on)
# ----------------------------------------------------------------------
def test_import_closure_and_dependents():
    graph = build_graph(
        {
            "a": "import b\n",
            "b": "import c\n",
            "c": "X = 1\n",
        }
    )
    assert graph.import_closure("a") == frozenset({"a", "b", "c"})
    assert graph.import_closure("c") == frozenset({"c"})
    assert graph.dependents("c") == {"a", "b"}
    assert graph.dependents("a") == set()


# ----------------------------------------------------------------------
# Summaries round-trip through their JSON documents
# ----------------------------------------------------------------------
def test_summary_round_trips_through_dict():
    source = textwrap.dedent(
        """
        import time

        class Runner:
            def go(self):
                return time.time()

        def main():
            return Runner().go()
        """
    )
    summary = extract_summary(source, "src/m.py", "m")
    clone = ModuleSummary.from_dict(summary.to_dict())
    direct = ProjectGraph([summary])
    revived = ProjectGraph([clone])
    assert effect_kinds(direct, "m:main") == {"wall-clock"}
    assert effect_kinds(revived, "m:main") == {"wall-clock"}
    assert set(clone.functions) == set(summary.functions)
