"""Tests for adalint, the AST-based invariant checker (repro.lint).

Covers every shipped rule on bad/good fixture snippets, the
suppression pragmas, ``[tool.adalint]`` config behaviour, the JSON
report schema, the CLI exit codes, and — the tier-1 gate — that the
repository's own ``src/`` tree is clean.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import (
    FINDINGS_SCHEMA,
    Finding,
    LintConfig,
    all_rules,
    get_rule,
    lint_paths,
    lint_source,
    load_config,
    path_matches,
)
from repro.lint.cli import main as lint_main
from repro.lint.contracts import docstore_operators, manifest_schema
from repro.lint.rules_determinism import NoUnseededRandomness, NoWallClock
from repro.lint.rules_parallelism import NoMutableDefault, NoUnpicklableTask
from repro.lint.rules_robustness import (
    BroadExceptPolicy,
    NoAdHocRetrySleep,
    NoBareAssert,
    PersistenceWritesThroughStorage,
)
from repro.lint.rules_schema import DocstoreOperatorSet, ManifestSchemaKeys
from repro.lint.runner import PARSE_ERROR_ID

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def run_rule(rule_class, source):
    return lint_source(textwrap.dedent(source), rules=[rule_class])


# ----------------------------------------------------------------------
# The tier-1 gate: the repository's own trees are clean
# ----------------------------------------------------------------------
def test_repo_is_clean():
    report = lint_paths(
        [
            REPO_ROOT / "src",
            REPO_ROOT / "benchmarks",
            REPO_ROOT / "examples",
        ],
        root=REPO_ROOT,
    )
    assert report.files_checked > 80
    assert report.findings == [], "\n" + report.format_human()


# ----------------------------------------------------------------------
# Rule registry
# ----------------------------------------------------------------------
def test_registry_ships_the_twenty_three_rules():
    ids = [rule.rule_id for rule in all_rules()]
    assert ids == [f"ADA{n:03d}" for n in range(1, 24)]
    assert all(r.severity in ("error", "warning") for r in all_rules())


def test_get_rule_round_trips():
    assert get_rule("ADA004") is NoMutableDefault
    with pytest.raises(KeyError):
        get_rule("ADA999")


# ----------------------------------------------------------------------
# Per-rule fixtures: each rule fires on bad code, stays silent on good
# ----------------------------------------------------------------------
_BAD = {
    NoUnseededRandomness: """
        import numpy as np

        def draw(values):
            rng = np.random.default_rng()
            return np.random.choice(values)
        """,
    NoWallClock: """
        import time

        def stamp():
            return time.time()
        """,
    NoUnpicklableTask: """
        from concurrent.futures import ProcessPoolExecutor

        def run(items):
            with ProcessPoolExecutor() as pool:
                return [pool.submit(lambda x: x + 1, i) for i in items]
        """,
    NoMutableDefault: """
        def collect(item, bucket=[]):
            bucket.append(item)
            return bucket
        """,
    NoBareAssert: """
        def check(x):
            assert x > 0
            return x
        """,
    BroadExceptPolicy: """
        def run(work):
            try:
                work()
            except Exception:
                pass
        """,
    DocstoreOperatorSet: """
        QUERY = {"age": {"$gte": 10, "$nearby": 1}}
        """,
    ManifestSchemaKeys: """
        def read_manifest(manifest):
            return manifest["goal_list"]
        """,
    NoAdHocRetrySleep: """
        import time

        def fetch(client):
            for attempt in range(5):
                try:
                    return client.get()
                except ConnectionError:
                    time.sleep(2 ** attempt)
            raise TimeoutError("gave up")
        """,
    PersistenceWritesThroughStorage: """
        import os
        from pathlib import Path

        def save(path, tmp, content):
            with open(tmp, "w") as handle:
                handle.write(content)
            os.replace(tmp, path)
            Path(path).with_suffix(".bak").write_text(content)
        """,
}

_GOOD = {
    NoUnseededRandomness: """
        import numpy as np

        def draw(values, seed):
            rng = np.random.default_rng(seed)
            return rng.choice(values)
        """,
    NoWallClock: """
        import time

        def stamp():
            return time.perf_counter()
        """,
    NoUnpicklableTask: """
        from concurrent.futures import ProcessPoolExecutor

        def work(x):
            return x + 1

        def run(items):
            with ProcessPoolExecutor() as pool:
                return [pool.submit(work, i) for i in items]
        """,
    NoMutableDefault: """
        def collect(item, bucket=None):
            bucket = [] if bucket is None else bucket
            bucket.append(item)
            return bucket
        """,
    NoBareAssert: """
        def check(x):
            if x <= 0:
                raise ValueError("x must be positive")
            return x
        """,
    BroadExceptPolicy: """
        def run(work, log):
            try:
                work()
            except Exception as exc:
                log.warning("work failed: %s", exc)
        """,
    DocstoreOperatorSet: """
        QUERY = {"age": {"$gte": 10, "$lte": 80}, "sex": {"$in": ["F"]}}
        """,
    ManifestSchemaKeys: """
        def read_manifest(manifest):
            return manifest["goals"], manifest["wall_s"]
        """,
    NoAdHocRetrySleep: """
        import time

        from repro.cloud.resilience import RetryPolicy

        def fetch(client):
            outcome = RetryPolicy(max_attempts=5).execute(client.get)
            time.sleep(0.1)  # a one-off settle delay, not a loop
            return outcome
        """,
    PersistenceWritesThroughStorage: """
        import json

        def load(path, storage):
            with open(path) as handle:
                data = json.load(handle)
            storage.atomic_write(path, json.dumps(data))
            handle = storage.open_append(path)
            handle.write_line("x")
            return data
        """,
}


@pytest.mark.parametrize(
    "rule_class", list(_BAD), ids=lambda r: r.rule_id
)
def test_rule_fires_on_bad_snippet(rule_class):
    findings = run_rule(rule_class, _BAD[rule_class])
    assert findings, f"{rule_class.rule_id} missed its bad snippet"
    assert all(f.rule_id == rule_class.rule_id for f in findings)
    assert all(f.line > 0 and f.col > 0 for f in findings)


@pytest.mark.parametrize(
    "rule_class", list(_GOOD), ids=lambda r: r.rule_id
)
def test_rule_silent_on_good_snippet(rule_class):
    findings = run_rule(rule_class, _GOOD[rule_class])
    assert findings == [], "\n".join(f.format() for f in findings)


# ----------------------------------------------------------------------
# Rule-specific edges
# ----------------------------------------------------------------------
def test_ada001_flags_stdlib_random_and_legacy_np():
    findings = run_rule(
        NoUnseededRandomness,
        """
        import random
        import numpy as np

        STATE = np.random.RandomState(0)
        """,
    )
    assert len(findings) == 2


def test_ada001_accepts_seed_keyword():
    findings = run_rule(
        NoUnseededRandomness,
        """
        import numpy as np

        def draw(seed):
            return np.random.default_rng(seed=seed)
        """,
    )
    assert findings == []


def test_ada001_rejects_explicit_none_seed():
    findings = run_rule(
        NoUnseededRandomness,
        """
        import numpy as np

        rng = np.random.default_rng(None)
        """,
    )
    assert len(findings) == 1


def test_ada002_flags_datetime_now_but_not_perf_counter():
    findings = run_rule(
        NoWallClock,
        """
        import time
        from datetime import datetime

        def run():
            start = time.perf_counter()
            stamp = datetime.now()
            return stamp, time.perf_counter() - start
        """,
    )
    assert len(findings) == 1
    assert "datetime.now" in findings[0].message


def test_ada003_thread_pool_closures_are_fine():
    findings = run_rule(
        NoUnpicklableTask,
        """
        from concurrent.futures import ThreadPoolExecutor

        def run(items):
            with ThreadPoolExecutor() as pool:
                return [pool.submit(lambda x: x, i) for i in items]
        """,
    )
    assert findings == []


def test_ada003_flags_nested_def_handed_to_taskspec():
    findings = run_rule(
        NoUnpicklableTask,
        """
        from repro.cloud.executor import TaskSpec

        def build(goal):
            def helper(matrix):
                return goal, matrix
            return TaskSpec(helper, ())
        """,
    )
    assert len(findings) == 1
    assert "helper" in findings[0].message


def test_ada004_flags_lambda_and_call_defaults():
    findings = run_rule(
        NoMutableDefault,
        """
        pick = lambda xs, seen=set(): [x for x in xs if x not in seen]

        def merge(a, b=dict()):
            return {**a, **b}
        """,
    )
    assert len(findings) == 2


def test_ada006_reraise_and_justification_pass():
    findings = run_rule(
        BroadExceptPolicy,
        """
        def strict(work):
            try:
                work()
            except Exception:
                raise

        def lenient(work):
            try:
                work()
            except Exception:  # probing an optional backend
                return None
        """,
    )
    assert findings == []


def test_ada006_bare_except_always_flagged():
    findings = run_rule(
        BroadExceptPolicy,
        """
        def run(work):
            try:
                work()
            except:  # even a comment does not excuse a bare except
                raise
        """,
    )
    assert len(findings) == 1


def test_ada008_schema_stamped_literal_checked():
    findings = run_rule(
        ManifestSchemaKeys,
        """
        MANIFEST_SCHEMA = "ada-health/run-manifest/v1"

        def build():
            return {"schema": MANIFEST_SCHEMA, "goal_list": []}
        """,
    )
    assert len(findings) == 1
    assert "goal_list" in findings[0].message


def test_ada008_goal_loop_fields():
    findings = run_rule(
        ManifestSchemaKeys,
        """
        def summarize_manifest(manifest):
            names = []
            for goal in manifest["goals"]:
                names.append(goal["algorithm_names"])
            return names
        """,
    )
    assert len(findings) == 1


def test_ada023_storage_module_is_exempt():
    source = textwrap.dedent(
        """
        import os

        def atomic_write(path, tmp, content):
            with open(tmp, "w") as handle:
                handle.write(content)
            os.replace(tmp, path)
        """
    )
    # inside the funnel module: clean
    assert (
        lint_source(
            source,
            relpath="src/repro/kdb/storage.py",
            rules=[PersistenceWritesThroughStorage],
        )
        == []
    )
    # the same code anywhere else in kdb: flagged
    findings = lint_source(
        source,
        relpath="src/repro/kdb/shards.py",
        rules=[PersistenceWritesThroughStorage],
    )
    assert len(findings) == 2


def test_ada023_scoped_to_kdb_by_default():
    config = load_config(REPO_ROOT / "pyproject.toml")
    rule = get_rule("ADA023")
    assert config.rule_applies(rule, "src/repro/kdb/shards.py")
    assert not config.rule_applies(rule, "src/repro/core/cache.py")


def test_ada023_dynamic_mode_and_reads():
    # a mode the AST cannot prove read-only is flagged
    findings = run_rule(
        PersistenceWritesThroughStorage,
        """
        def touch(path, mode):
            return open(path, mode)
        """,
    )
    assert len(findings) == 1
    # plain reads (default mode or explicit "r"/"rb") are fine
    assert (
        run_rule(
            PersistenceWritesThroughStorage,
            """
            def read(path):
                with open(path, "rb") as handle:
                    return handle.read()
            """,
        )
        == []
    )


# ----------------------------------------------------------------------
# Contract extraction mirrors the real modules
# ----------------------------------------------------------------------
def test_docstore_operator_contract_matches_module():
    operators = docstore_operators()
    assert {"$eq", "$gt", "$in", "$and", "$or", "$exists"} <= operators
    assert "$nearby" not in operators


def test_manifest_contract_matches_module():
    from repro.obs.manifest import MANIFEST_FIELDS, MANIFEST_SCHEMA

    schema = manifest_schema()
    assert schema.schema_tag == MANIFEST_SCHEMA
    assert set(MANIFEST_FIELDS) <= schema.top_fields
    assert {"name", "status", "algorithms"} <= schema.goal_fields


# ----------------------------------------------------------------------
# Suppression pragmas
# ----------------------------------------------------------------------
def test_line_pragma_suppresses_only_that_line():
    findings = run_rule(
        NoBareAssert,
        """
        def check(x, y):
            assert x > 0  # adalint: disable=ADA005
            assert y > 0
            return x + y
        """,
    )
    assert len(findings) == 1
    assert findings[0].line == 4


def test_file_pragma_suppresses_whole_file():
    findings = run_rule(
        NoBareAssert,
        """
        # adalint: disable-file=ADA005
        def check(x, y):
            assert x > 0
            assert y > 0
        """,
    )
    assert findings == []


def test_all_wildcard_suppresses_every_rule():
    findings = lint_source(
        textwrap.dedent(
            """
            def check(x, bucket=[]):
                assert x > 0  # adalint: disable=all
                return bucket
            """
        ),
        rules=[NoBareAssert, NoMutableDefault],
    )
    assert [f.rule_id for f in findings] == ["ADA004"]


def test_pragma_with_unrelated_rule_does_not_suppress():
    findings = run_rule(
        NoBareAssert,
        """
        def check(x):
            assert x > 0  # adalint: disable=ADA001
            return x
        """,
    )
    assert len(findings) == 1


# ----------------------------------------------------------------------
# Config: path scoping, select/ignore, exclusion
# ----------------------------------------------------------------------
def test_default_paths_scope_determinism_rules():
    source = textwrap.dedent(
        """
        import numpy as np

        rng = np.random.default_rng()
        """
    )
    in_scope = lint_source(
        source, relpath="src/repro/mining/kmeans.py"
    )
    out_of_scope = lint_source(
        source, relpath="src/repro/obs/tracing.py"
    )
    assert [f.rule_id for f in in_scope] == ["ADA001"]
    assert out_of_scope == []


def test_config_paths_override_rule_scope():
    config = LintConfig(paths={"ADA005": ["src/repro/kdb"]})
    source = textwrap.dedent(
        """
        def check(x):
            assert x > 0
        """
    )
    hit = lint_source(
        source, relpath="src/repro/kdb/kdb.py", config=config
    )
    miss = lint_source(
        source, relpath="src/repro/mining/kmeans.py", config=config
    )
    assert "ADA005" in [f.rule_id for f in hit]
    assert "ADA005" not in [f.rule_id for f in miss]


def test_config_select_and_ignore():
    source = textwrap.dedent(
        """
        def check(x, bucket=[]):
            assert x > 0
        """
    )
    only_004 = lint_source(
        source, config=LintConfig(select=["ADA004"])
    )
    without_004 = lint_source(
        source, config=LintConfig(ignore=["ADA004"])
    )
    assert [f.rule_id for f in only_004] == ["ADA004"]
    assert "ADA004" not in [f.rule_id for f in without_004]


def test_path_matches_globs_and_prefixes():
    assert path_matches("src/repro/mining/kmeans.py", "src/repro/mining")
    assert path_matches("src/repro/mining/kmeans.py", "**/kmeans.py")
    assert not path_matches("src/repro/obs/tracing.py", "src/repro/mining")


def test_load_config_reads_tool_adalint(tmp_path):
    pyproject = tmp_path / "pyproject.toml"
    pyproject.write_text(
        textwrap.dedent(
            """
            [tool.adalint]
            ignore = ["ADA004"]
            exclude = ["src/vendored"]

            [tool.adalint.paths]
            ADA005 = ["src/repro/kdb"]
            """
        ),
        encoding="utf-8",
    )
    config = load_config(pyproject)
    assert config.ignore == ["ADA004"]
    assert config.file_excluded("src/vendored/thing.py")
    assert config.paths["ADA005"] == ["src/repro/kdb"]


def test_repo_pyproject_scopes_determinism_rules():
    config = load_config(REPO_ROOT / "pyproject.toml")
    assert config.paths["ADA001"] == ["src/repro/mining", "src/repro/core"]
    assert config.paths["ADA002"] == ["src/repro/mining", "src/repro/core"]


# ----------------------------------------------------------------------
# The py<3.11 TOML-subset fallback agrees with tomllib
# ----------------------------------------------------------------------
_TOML_CASES = {
    "inline-comment": 'select = ["ADA001"]  # trailing words\n',
    "hash-inside-string": 'exclude = ["src/#gen", "x # y"]\n',
    "single-quoted-strings": "ignore = ['ADA004', 'ADA005']\n",
    "trailing-comma": 'select = [\n    "ADA001",\n    "ADA002",\n]\n',
    "comments-in-multiline-array": (
        "select = [\n"
        '    "ADA001",  # first\n'
        "    # a full-line comment\n"
        '    "ADA002",\n'
        "]\n"
    ),
    "inline-table": 'license = { text = "MIT", osi = true }\n',
    "scalars": 'flag = true\noff = false\ncount = 3\nratio = 0.5\n',
    "nested-tables": (
        "[tool.adalint]\n"
        'select = ["ADA001"]\n'
        "[tool.adalint.paths]\n"
        'ADA005 = ["src"]\n'
    ),
}


@pytest.mark.parametrize("case", sorted(_TOML_CASES))
def test_toml_fallback_matches_tomllib(case):
    import tomllib

    from repro.lint.config import _parse_toml_subset

    text = _TOML_CASES[case]
    assert _parse_toml_subset(text) == tomllib.loads(text)


def test_toml_fallback_parses_repo_pyproject_like_tomllib():
    import tomllib

    from repro.lint.config import _parse_toml_subset

    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert _parse_toml_subset(text) == tomllib.loads(text)


# ----------------------------------------------------------------------
# Findings, JSON report schema, syntax errors
# ----------------------------------------------------------------------
def test_finding_format_is_path_line_col():
    finding = Finding(
        path="src/x.py", line=3, col=7, rule_id="ADA005",
        message="no bare assert",
    )
    assert finding.format() == (
        "src/x.py:3:7: ADA005 [error] no bare assert"
    )


def test_json_document_schema_is_stable(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x, b=[]):\n    assert x\n", encoding="utf-8")
    report = lint_paths([bad], config=LintConfig(), root=tmp_path)
    document = report.to_document()
    assert document["schema"] == FINDINGS_SCHEMA == "adalint/findings/v1"
    assert sorted(document) == [
        "counts", "files_checked", "findings", "rule_stats", "schema",
    ]
    assert document["files_checked"] == 1
    assert set(document["counts"]) == {"error", "warning"}
    for stats in document["rule_stats"].values():
        assert sorted(stats) == ["findings", "wall_s"]
    for entry in document["findings"]:
        assert sorted(entry) == [
            "col", "line", "message", "path", "rule", "severity",
        ]
    json.dumps(document)  # must be serialisable as-is


def test_syntax_error_becomes_parse_finding():
    findings = lint_source("def broken(:\n    pass\n")
    assert [f.rule_id for f in findings] == [PARSE_ERROR_ID]


# ----------------------------------------------------------------------
# CLI: exit codes and output formats
# ----------------------------------------------------------------------
def test_cli_clean_tree_exits_zero(tmp_path, capsys):
    clean = tmp_path / "clean.py"
    clean.write_text("VALUE = 1\n", encoding="utf-8")
    assert lint_main([str(clean)]) == 0
    assert "0 findings" in capsys.readouterr().out


def test_cli_findings_exit_one_and_print_location(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x):\n    assert x\n", encoding="utf-8")
    assert lint_main([str(bad)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:2:5: ADA005" in out


def test_cli_json_output_parses(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x):\n    assert x\n", encoding="utf-8")
    assert lint_main(["--json", str(bad)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["schema"] == FINDINGS_SCHEMA
    assert document["counts"]["error"] == 1


def test_cli_missing_path_exits_two(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope.py")]) == 2
    assert "no such path" in capsys.readouterr().err


def test_cli_select_and_ignore(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x, b=[]):\n    assert x\n", encoding="utf-8")
    assert lint_main(["--select", "ADA001", str(bad)]) == 0
    assert lint_main(["--ignore", "ADA004,ADA005", str(bad)]) == 0


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_class in all_rules():
        assert rule_class.rule_id in out


def test_repro_cli_lint_subcommand(tmp_path, capsys):
    from repro.cli import main as repro_main

    bad = tmp_path / "bad.py"
    bad.write_text("def f(x):\n    assert x\n", encoding="utf-8")
    assert repro_main(["lint", "--json", str(bad)]) == 1
    document = json.loads(capsys.readouterr().out)
    assert document["counts"]["error"] == 1


# ----------------------------------------------------------------------
# Extensibility: a custom Rule plugs into the same machinery
# ----------------------------------------------------------------------
def test_custom_rule_subclass_runs_through_lint_source():
    import ast

    from repro.lint import Rule

    class NoPrint(Rule):
        rule_id = "XYZ001"
        name = "no-print"
        description = "print() is for humans, not libraries"

        def visit_Call(self, node):
            if isinstance(node.func, ast.Name) and node.func.id == "print":
                self.report(node, "use logging instead of print()")
            self.generic_visit(node)

    findings = lint_source("print('hi')\n", rules=[NoPrint])
    assert [f.rule_id for f in findings] == ["XYZ001"]
