"""Property-based tests for the document store (hypothesis)."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdb.documentstore import DocumentStore

# JSON-safe scalar values (no NaN: NaN breaks JSON round-trips and
# equality, which the store contract excludes anyway).
scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(10**9), max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)

field_names = st.text(
    alphabet="abcdefghij", min_size=1, max_size=6
).filter(lambda s: not s.startswith("$"))

documents = st.dictionaries(
    field_names,
    st.one_of(
        scalars,
        st.lists(scalars, max_size=4),
        st.dictionaries(field_names, scalars, max_size=3),
    ),
    max_size=5,
)


@given(st.lists(documents, max_size=20))
@settings(max_examples=60, deadline=None)
def test_insert_then_find_all_returns_everything(docs):
    collection = DocumentStore()["c"]
    collection.insert_many(docs)
    assert len(collection.find()) == len(docs)
    assert collection.count_documents() == len(docs)


@given(st.lists(documents, max_size=15))
@settings(max_examples=40, deadline=None)
def test_roundtrip_preserves_content(docs):
    collection = DocumentStore()["c"]
    ids = collection.insert_many(docs)
    for doc_id, original in zip(ids, docs):
        stored = collection.find_one({"_id": doc_id})
        stored.pop("_id")
        assert stored == original


@given(st.lists(documents, min_size=1, max_size=15), st.data())
@settings(max_examples=40, deadline=None)
def test_equality_query_is_consistent_with_scan(docs, data):
    collection = DocumentStore()["c"]
    collection.insert_many(docs)
    # Pick a field/value that exists somewhere.
    candidates = [
        (key, value)
        for doc in docs
        for key, value in doc.items()
        if not isinstance(value, (list, dict))
    ]
    if not candidates:
        return
    key, value = data.draw(st.sampled_from(candidates))
    matched = collection.find({key: value}).to_list()
    # Every matched document's field equals the value (modulo
    # bool/int), or — implicit equality fans out over arrays, like
    # MongoDB — contains an element that does.
    for doc in matched:
        stored = doc.get(key)
        elements = stored if isinstance(stored, list) else [stored]
        assert any(
            element == value
            and isinstance(element, bool) == isinstance(value, bool)
            for element in elements
        )
    assert len(matched) >= 1


@given(st.lists(documents, max_size=15))
@settings(max_examples=40, deadline=None)
def test_save_load_identity(docs):
    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        _check_save_load(docs, directory)


def _check_save_load(docs, directory):
    store = DocumentStore()
    store["c"].insert_many(docs)
    store.save(directory)
    loaded = DocumentStore.load(directory)
    original = sorted(
        store["c"].find().to_list(), key=lambda d: str(d["_id"])
    )
    reloaded = sorted(
        loaded["c"].find().to_list(), key=lambda d: str(d["_id"])
    )
    assert json.dumps(original, sort_keys=True, default=str) == json.dumps(
        reloaded, sort_keys=True, default=str
    )


@given(
    st.lists(
        st.dictionaries(st.just("v"), st.integers(0, 100), min_size=1),
        min_size=1,
        max_size=20,
    ),
    st.integers(0, 100),
)
@settings(max_examples=50, deadline=None)
def test_range_query_partitions(docs, threshold):
    """$lt and $gte on the same threshold partition the collection."""
    collection = DocumentStore()["c"]
    collection.insert_many(docs)
    below = collection.count_documents({"v": {"$lt": threshold}})
    at_or_above = collection.count_documents({"v": {"$gte": threshold}})
    assert below + at_or_above == len(docs)


@given(st.lists(documents, min_size=1, max_size=10))
@settings(max_examples=30, deadline=None)
def test_delete_inverts_insert(docs):
    collection = DocumentStore()["c"]
    ids = collection.insert_many(docs)
    for doc_id in ids:
        assert collection.delete_one({"_id": doc_id}) == 1
    assert len(collection) == 0


@given(st.lists(st.integers(-50, 50), min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_sort_orders_values(values):
    collection = DocumentStore()["c"]
    collection.insert_many([{"v": value} for value in values])
    ascending = [d["v"] for d in collection.find().sort("v")]
    assert ascending == sorted(values)
    descending = [d["v"] for d in collection.find().sort("v", -1)]
    assert descending == sorted(values, reverse=True)


@given(st.lists(st.integers(0, 20), min_size=1, max_size=25))
@settings(max_examples=40, deadline=None)
def test_index_does_not_change_results(values):
    plain = DocumentStore()["c"]
    indexed = DocumentStore()["c"]
    docs = [{"v": value} for value in values]
    plain.insert_many(docs)
    indexed.create_index("v")
    indexed.insert_many(docs)
    for probe in set(values):
        a = sorted(d["_id"] for d in plain.find({"v": probe}))
        b = sorted(d["_id"] for d in indexed.find({"v": probe}))
        assert a == b
