"""Tests for K-means: Lloyd, the filtering engine, and k-means++."""

import numpy as np
import pytest

from repro.exceptions import MiningError, NotFittedError
from repro.mining import KMeans, adjusted_rand_index, kmeans, sse
from repro.mining.kmeans import kmeans_plus_plus


def test_recovers_blobs(blobs):
    data, truth = blobs
    model = KMeans(3, seed=0).fit(data)
    assert adjusted_rand_index(truth, model.labels_) == pytest.approx(1.0)


def test_inertia_equals_sse_of_assignment(blobs):
    data, __ = blobs
    model = KMeans(3, seed=0).fit(data)
    recomputed = sse(data, model.labels_, centers=model.cluster_centers_)
    assert model.inertia_ == pytest.approx(recomputed, rel=1e-9)


def test_filtering_equals_lloyd(blobs):
    data, __ = blobs
    lloyd = KMeans(3, algorithm="lloyd", seed=4).fit(data)
    filtering = KMeans(3, algorithm="filtering", seed=4).fit(data)
    assert lloyd.inertia_ == pytest.approx(filtering.inertia_, rel=1e-9)
    assert adjusted_rand_index(
        lloyd.labels_, filtering.labels_
    ) == pytest.approx(1.0)


def test_filtering_equals_lloyd_high_k(blobs):
    data, __ = blobs
    lloyd = KMeans(7, algorithm="lloyd", seed=2, n_init=1).fit(data)
    filtering = KMeans(7, algorithm="filtering", seed=2, n_init=1).fit(data)
    assert lloyd.inertia_ == pytest.approx(filtering.inertia_, rel=1e-9)


def test_more_clusters_never_increase_sse(blobs):
    data, __ = blobs
    inertias = [
        KMeans(k, seed=0, n_init=5).fit(data).inertia_
        for k in (2, 3, 5, 8)
    ]
    assert all(a >= b - 1e-9 for a, b in zip(inertias, inertias[1:]))


def test_labels_within_range(blobs):
    data, __ = blobs
    model = KMeans(4, seed=1).fit(data)
    assert set(np.unique(model.labels_)) <= set(range(4))
    assert len(model.labels_) == data.shape[0]


def test_k_equals_one(blobs):
    data, __ = blobs
    model = KMeans(1, seed=0).fit(data)
    assert len(np.unique(model.labels_)) == 1
    assert np.allclose(model.cluster_centers_[0], data.mean(axis=0))


def test_k_equals_n():
    data = np.arange(10, dtype=float).reshape(5, 2) * 3
    model = KMeans(5, seed=0, n_init=5).fit(data)
    assert model.inertia_ == pytest.approx(0.0, abs=1e-9)


def test_predict_matches_fit_labels(blobs):
    data, __ = blobs
    model = KMeans(3, seed=0).fit(data)
    assert np.array_equal(model.predict(data), model.labels_)


def test_transform_shape_and_nonneg(blobs):
    data, __ = blobs
    model = KMeans(3, seed=0).fit(data)
    distances = model.transform(data)
    assert distances.shape == (data.shape[0], 3)
    assert (distances >= 0).all()


def test_predict_before_fit_raises(blobs):
    data, __ = blobs
    with pytest.raises(NotFittedError):
        KMeans(3).predict(data)
    with pytest.raises(NotFittedError):
        KMeans(3).transform(data)


def test_parameter_validation():
    with pytest.raises(MiningError):
        KMeans(0)
    with pytest.raises(MiningError):
        KMeans(2, init="quantum")
    with pytest.raises(MiningError):
        KMeans(2, algorithm="annealing")
    with pytest.raises(MiningError):
        KMeans(2, n_init=0)


def test_more_points_than_clusters_required():
    with pytest.raises(MiningError):
        KMeans(5).fit(np.zeros((3, 2)))


def test_deterministic_given_seed(blobs):
    data, __ = blobs
    a = KMeans(3, seed=9).fit(data)
    b = KMeans(3, seed=9).fit(data)
    assert np.array_equal(a.labels_, b.labels_)
    assert a.inertia_ == b.inertia_


def test_random_init_also_works(blobs):
    data, truth = blobs
    model = KMeans(3, init="random", seed=0, n_init=10).fit(data)
    assert adjusted_rand_index(truth, model.labels_) > 0.95


def test_kmeans_plus_plus_spreads_centers(blobs):
    data, __ = blobs
    rng = np.random.default_rng(0)
    centers = kmeans_plus_plus(data, 3, rng)
    # One seed from each blob with overwhelming probability.
    from repro.mining.distance import squared_euclidean

    spread = squared_euclidean(centers, centers)
    np.fill_diagonal(spread, np.inf)
    assert spread.min() > 1.0


def test_kmeans_plus_plus_duplicate_points():
    data = np.ones((20, 2))
    rng = np.random.default_rng(0)
    centers = kmeans_plus_plus(data, 3, rng)
    assert centers.shape == (3, 2)


def test_functional_api(blobs):
    data, truth = blobs
    labels, centers, inertia = kmeans(data, 3, seed=0)
    assert centers.shape == (3, data.shape[1])
    assert inertia > 0
    assert adjusted_rand_index(truth, labels) == pytest.approx(1.0)


def test_empty_cluster_reseeding():
    """Adversarial init cannot leave a cluster empty."""
    data = np.vstack([np.zeros((30, 2)), np.ones((30, 2)) * 10])
    model = KMeans(2, seed=0, n_init=1, init="random").fit(data)
    assert len(np.unique(model.labels_)) == 2
