"""Tests for Apriori and FP-growth frequent-itemset mining."""

import pytest

from repro.exceptions import MiningError
from repro.mining import (
    apriori,
    fpgrowth,
    itemset_index,
    mine_frequent_itemsets,
)


def supports(itemsets):
    return {s.items: s.count for s in itemsets}


def test_apriori_hand_computed_supports(transactions):
    result = supports(apriori(transactions, min_support=3 / 9))
    assert result[frozenset(["a"])] == 6
    assert result[frozenset(["b"])] == 6
    assert result[frozenset(["c"])] == 6
    assert result[frozenset(["d"])] == 3
    assert result[frozenset(["a", "b"])] == 4
    assert result[frozenset(["a", "c"])] == 4
    assert result[frozenset(["b", "c"])] == 4
    assert result[frozenset(["a", "b", "c"])] == 3


def test_apriori_excludes_infrequent(transactions):
    result = supports(apriori(transactions, min_support=4 / 9))
    assert frozenset(["d"]) not in result
    assert frozenset(["a", "b", "c"]) not in result
    assert frozenset(["a", "b"]) in result


def test_fpgrowth_equals_apriori(transactions):
    for min_support in (1 / 9, 2 / 9, 3 / 9, 5 / 9, 0.99):
        a = supports(apriori(transactions, min_support))
        f = supports(fpgrowth(transactions, min_support))
        assert a == f, f"diverged at min_support={min_support}"


def test_fpgrowth_equals_apriori_on_log(small_log):
    transactions = small_log.transactions(by="patient")
    a = supports(apriori(transactions, 0.25))
    f = supports(fpgrowth(transactions, 0.25))
    assert a == f


def test_support_fraction_correct(transactions):
    itemsets = fpgrowth(transactions, 0.5)
    for itemset in itemsets:
        assert itemset.support == pytest.approx(itemset.count / 9)
        assert itemset.support >= 0.5


def test_max_length_cap(transactions):
    capped = fpgrowth(transactions, 1 / 9, max_length=2)
    assert max(len(s.items) for s in capped) == 2
    apriori_capped = apriori(transactions, 1 / 9, max_length=2)
    assert supports(capped) == supports(apriori_capped)


def test_results_sorted_deterministically(transactions):
    itemsets = fpgrowth(transactions, 2 / 9)
    keys = [(len(s.items), s.sorted_items()) for s in itemsets]
    assert keys == sorted(keys)


def test_downward_closure(transactions):
    """Every subset of a frequent itemset is frequent (and present)."""
    itemsets = fpgrowth(transactions, 2 / 9)
    index = itemset_index(itemsets)
    from itertools import combinations

    for itemset in itemsets:
        for size in range(1, len(itemset.items)):
            for subset in combinations(sorted(itemset.items), size):
                sub = frozenset(subset)
                assert sub in index
                assert index[sub].count >= itemset.count


def test_duplicate_items_in_transaction_counted_once():
    transactions = [["a", "a", "b"], ["a"], ["a", "b"]]
    result = supports(fpgrowth(transactions, 0.5))
    assert result[frozenset(["a"])] == 3
    assert result[frozenset(["a", "b"])] == 2


def test_single_transaction():
    result = fpgrowth([["x", "y"]], 1.0)
    assert supports(result) == {
        frozenset(["x"]): 1,
        frozenset(["y"]): 1,
        frozenset(["x", "y"]): 1,
    }


def test_empty_transactions_allowed_in_db():
    result = supports(fpgrowth([["a"], [], ["a"]], 0.5))
    assert result == {frozenset(["a"]): 2}


def test_no_transactions_raises():
    with pytest.raises(MiningError):
        fpgrowth([], 0.5)
    with pytest.raises(MiningError):
        apriori([], 0.5)


def test_bad_support_raises(transactions):
    for bad in (0.0, -0.1, 1.5):
        with pytest.raises(MiningError):
            fpgrowth(transactions, bad)


def test_facade_dispatch(transactions):
    a = mine_frequent_itemsets(transactions, 0.3, algorithm="apriori")
    f = mine_frequent_itemsets(transactions, 0.3, algorithm="fpgrowth")
    assert supports(a) == supports(f)
    with pytest.raises(MiningError):
        mine_frequent_itemsets(transactions, 0.3, algorithm="eclat")


def test_min_support_one_keeps_universal_items():
    transactions = [["a", "b"], ["a"], ["a", "c"]]
    result = supports(fpgrowth(transactions, 1.0))
    assert result == {frozenset(["a"]): 3}
