"""Property-based tests for transforms and characterisation."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as npst

from repro.preprocess import (
    L1Normalizer,
    L2Normalizer,
    MinMaxScaler,
    StandardScaler,
    apply_weighting,
    characterize_matrix,
)

count_matrices = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 20), st.integers(2, 8)),
    elements=st.integers(0, 20).map(float),
)

real_matrices = npst.arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 20), st.integers(1, 6)),
    elements=st.floats(-100, 100, allow_nan=False).map(
        lambda x: round(x, 4)
    ),
)


@given(real_matrices)
@settings(max_examples=50, deadline=None)
def test_l2_rows_unit_or_zero(matrix):
    out = L2Normalizer().fit_transform(matrix)
    norms = np.linalg.norm(out, axis=1)
    for original_row, norm in zip(matrix, norms):
        if np.any(original_row != 0):
            assert np.isclose(norm, 1.0)
        else:
            assert norm == 0.0


@given(real_matrices)
@settings(max_examples=50, deadline=None)
def test_l2_idempotent(matrix):
    normalizer = L2Normalizer()
    once = normalizer.fit_transform(matrix)
    twice = normalizer.fit_transform(once)
    assert np.allclose(once, twice, atol=1e-9)


@given(real_matrices)
@settings(max_examples=50, deadline=None)
def test_l1_rows_sum_to_one_or_zero(matrix):
    out = L1Normalizer().fit_transform(matrix)
    sums = np.abs(out).sum(axis=1)
    for original_row, total in zip(matrix, sums):
        if np.any(original_row != 0):
            assert np.isclose(total, 1.0)


@given(real_matrices)
@settings(max_examples=50, deadline=None)
def test_minmax_into_unit_interval(matrix):
    out = MinMaxScaler().fit_transform(matrix)
    assert (out >= -1e-9).all()
    assert (out <= 1.0 + 1e-9).all()


@given(real_matrices)
@settings(max_examples=50, deadline=None)
def test_zscore_centering(matrix):
    out = StandardScaler().fit_transform(matrix)
    assert np.allclose(out.mean(axis=0), 0.0, atol=1e-7)


@given(count_matrices)
@settings(max_examples=50, deadline=None)
def test_weightings_preserve_zero_pattern(matrix):
    for weighting in ("count", "binary", "log", "tfidf"):
        out = apply_weighting(matrix, weighting)
        assert out.shape == matrix.shape
        assert ((out == 0) == (matrix == 0)).all()
        assert (out >= 0).all()


@given(count_matrices)
@settings(max_examples=50, deadline=None)
def test_binary_weighting_idempotent(matrix):
    once = apply_weighting(matrix, "binary")
    twice = apply_weighting(once, "binary")
    assert np.array_equal(once, twice)


@given(count_matrices)
@settings(max_examples=50, deadline=None)
def test_characterization_invariants(matrix):
    if matrix.sum() == 0:
        matrix[0, 0] = 1.0
    profile = characterize_matrix(matrix)
    assert 0.0 <= profile.sparsity <= 1.0
    assert np.isclose(profile.density, 1.0 - profile.sparsity)
    assert 0.0 <= profile.normalized_entropy <= 1.0 + 1e-9
    assert -1e-9 <= profile.gini <= 1.0
    assert 1.0 / matrix.shape[1] - 1e-9 <= profile.hhi <= 1.0 + 1e-9
    shares = [profile.top_share[k] for k in ("10", "20", "40", "60", "80")]
    assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))


@given(count_matrices, st.floats(0.5, 3.0))
@settings(max_examples=30, deadline=None)
def test_characterization_scale_invariant_indices(matrix, scale):
    """Gini / entropy / sparsity don't change under global scaling."""
    if matrix.sum() == 0:
        matrix[0, 0] = 1.0
    a = characterize_matrix(matrix)
    b = characterize_matrix(matrix * scale)
    assert np.isclose(a.sparsity, b.sparsity)
    assert np.isclose(a.gini, b.gini, atol=1e-9)
    assert np.isclose(a.feature_entropy, b.feature_entropy, atol=1e-9)
