"""Tests for the Knowledge Base (six-collection data model)."""

import pytest

from repro.core import KnowledgeItem, SimulatedExpert
from repro.exceptions import EngineError
from repro.kdb import COLLECTIONS, KnowledgeBase
from repro.preprocess import characterize_log


@pytest.fixture()
def kdb():
    return KnowledgeBase()


def make_item(kind="cluster", score=0.5, **quality):
    item = KnowledgeItem(
        kind=kind,
        end_goal="patient-segmentation",
        title=f"{kind} item",
        quality=quality,
    )
    item.score = score
    return item


def test_six_collections_exist(kdb):
    assert set(COLLECTIONS) <= set(kdb.store.collection_names())
    assert len(COLLECTIONS) == 6


def test_register_dataset_summary(kdb, tiny_log):
    dataset_id = kdb.register_dataset(tiny_log, "tiny")
    summary = kdb.dataset_summary(dataset_id)
    assert summary["name"] == "tiny"
    assert summary["summary"]["n_patients"] == tiny_log.n_patients
    assert "records" not in summary


def test_register_dataset_with_records(kdb, handmade_log):
    dataset_id = kdb.register_dataset(
        handmade_log, "handmade", store_records=True
    )
    stored = kdb.dataset_summary(dataset_id)
    assert len(stored["records"]) == 7


def test_store_and_fetch_profile(kdb, tiny_log):
    dataset_id = kdb.register_dataset(tiny_log, "tiny")
    profile = characterize_log(tiny_log)
    kdb.store_profile(dataset_id, profile.to_document())
    fetched = kdb.profile_for(dataset_id)
    assert fetched["sparsity"] == pytest.approx(profile.sparsity)


def test_profile_for_returns_latest(kdb, tiny_log):
    dataset_id = kdb.register_dataset(tiny_log, "tiny")
    kdb.store_profile(dataset_id, {"version": 1})
    kdb.store_profile(dataset_id, {"version": 2})
    assert kdb.profile_for(dataset_id)["version"] == 2


def test_profile_for_missing_dataset(kdb):
    assert kdb.profile_for(999) is None


def test_store_transformation(kdb, tiny_log):
    dataset_id = kdb.register_dataset(tiny_log, "tiny")
    kdb.store_transformation(dataset_id, {"weighting": "binary"})
    assert kdb.counts()["transformed_datasets"] == 1


def test_store_item_assigns_id(kdb):
    item = make_item()
    kdb.store_item(item)
    assert item.item_id is not None
    loaded = kdb.items({"_id": item.item_id})
    assert len(loaded) == 1
    assert loaded[0].title == item.title


def test_items_query_by_end_goal(kdb):
    kdb.store_items([make_item("cluster"), make_item("itemset")])
    found = kdb.items({"kind": "itemset"})
    assert len(found) == 1
    assert found[0].kind == "itemset"


def test_select_item_requires_stored(kdb):
    with pytest.raises(EngineError):
        kdb.select_item(make_item(), rank=0)


def test_select_item_records_rank(kdb):
    item = kdb.store_item(make_item())
    kdb.select_item(item, rank=3)
    selected = kdb.store["selected_knowledge"].find_one({})
    assert selected["item_id"] == item.item_id
    assert selected["rank"] == 3


def test_feedback_updates_item_degree(kdb):
    item = kdb.store_item(make_item())
    kdb.record_feedback(item, "dr-a", "high")
    reloaded = kdb.items({"_id": item.item_id})[0]
    assert reloaded.degree == "high"
    assert kdb.feedback_count() == 1
    assert kdb.feedback_count("dr-a") == 1
    assert kdb.feedback_count("dr-b") == 0


def test_feedback_validation(kdb):
    item = kdb.store_item(make_item())
    with pytest.raises(EngineError):
        kdb.record_feedback(item, "dr-a", "amazing")
    with pytest.raises(EngineError):
        kdb.record_feedback(make_item(), "dr-a", "high")


def test_training_data_shape(kdb):
    for i in range(6):
        item = kdb.store_item(make_item(score=i / 6))
        kdb.record_feedback(item, "dr-a", "high" if i >= 3 else "low")
    rows, labels, names = kdb.training_data()
    assert rows.shape == (6, len(names))
    assert sorted(set(labels)) == ["high", "low"]


def test_training_data_empty_raises(kdb):
    with pytest.raises(EngineError):
        kdb.training_data()


def test_degree_predictor_learns_expert(kdb):
    """Predictor recovers a threshold-on-score expert from feedback."""
    expert = SimulatedExpert(seed=1)
    items = []
    for i in range(40):
        item = make_item(
            kind="cluster" if i % 2 else "itemset",
            score=(i % 10) / 10.0,
        )
        kdb.store_item(item)
        kdb.record_feedback(item, "dr-a", expert.label(item))
        items.append(item)
    predictor = kdb.train_degree_predictor()
    degrees = predictor.predict_many(items)
    # sanity: predictions are valid degrees and correlate with score
    assert set(degrees) <= {"high", "medium", "low"}
    high_scores = [i.score for i, d in zip(items, degrees) if d == "high"]
    low_scores = [i.score for i, d in zip(items, degrees) if d == "low"]
    if high_scores and low_scores:
        assert min(high_scores) > max(low_scores) - 0.3


def test_predictor_attach(kdb):
    for i in range(10):
        item = kdb.store_item(make_item(score=i / 10))
        kdb.record_feedback(item, "u", "high" if i >= 5 else "low")
    predictor = kdb.train_degree_predictor()
    fresh = [make_item(score=0.9), make_item(score=0.1)]
    predictor.predict_many(fresh, attach=True)
    assert fresh[0].degree is not None


def test_save_load_roundtrip(kdb, tiny_log, tmp_path):
    dataset_id = kdb.register_dataset(tiny_log, "tiny")
    item = kdb.store_item(make_item(), dataset_id)
    kdb.record_feedback(item, "dr-a", "medium")
    kdb.save(tmp_path / "kdb")
    loaded = KnowledgeBase.load(tmp_path / "kdb")
    assert loaded.counts() == kdb.counts()
    assert loaded.feedback_count() == 1


def test_counts_keys(kdb):
    assert set(kdb.counts()) == set(COLLECTIONS)
