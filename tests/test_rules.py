"""Tests for association-rule generation."""

import math

import pytest

from repro.exceptions import MiningError
from repro.mining import (
    filter_rules,
    fpgrowth,
    generate_rules,
)


@pytest.fixture()
def itemsets(transactions):
    return fpgrowth(transactions, 2 / 9)


def find_rule(rules, antecedent, consequent):
    for rule in rules:
        if rule.antecedent == frozenset(antecedent) and (
            rule.consequent == frozenset(consequent)
        ):
            return rule
    return None


def test_confidence_hand_computed(transactions, itemsets):
    rules = generate_rules(itemsets, min_confidence=0.1)
    rule = find_rule(rules, ["d"], ["c"])
    # support(d)=3, support(c,d)=2 -> confidence 2/3.
    assert rule is not None
    assert rule.confidence == pytest.approx(2 / 3)
    assert rule.support == pytest.approx(2 / 9)


def test_lift_and_leverage(transactions, itemsets):
    rules = generate_rules(itemsets, min_confidence=0.1)
    rule = find_rule(rules, ["d"], ["c"])
    # lift = conf / support(c) = (2/3) / (6/9) = 1.0
    assert rule.lift == pytest.approx(1.0)
    assert rule.leverage == pytest.approx(2 / 9 - (3 / 9) * (6 / 9))


def test_conviction_infinite_for_exact_rules():
    transactions = [["a", "b"], ["a", "b"], ["c"]]
    itemsets = fpgrowth(transactions, 1 / 3)
    rules = generate_rules(itemsets, min_confidence=0.9)
    rule = find_rule(rules, ["a"], ["b"])
    assert rule is not None
    assert math.isinf(rule.conviction)
    assert rule.confidence == 1.0


def test_min_confidence_filters(itemsets):
    low = generate_rules(itemsets, min_confidence=0.1)
    high = generate_rules(itemsets, min_confidence=0.9)
    assert len(high) <= len(low)
    assert all(rule.confidence >= 0.9 for rule in high)


def test_min_lift_filter(itemsets):
    rules = generate_rules(itemsets, min_confidence=0.1, min_lift=1.05)
    assert all(rule.lift >= 1.05 for rule in rules)


def test_max_consequent_cap(itemsets):
    rules = generate_rules(itemsets, min_confidence=0.1, max_consequent=1)
    assert all(len(rule.consequent) == 1 for rule in rules)


def test_rules_sorted_by_confidence(itemsets):
    rules = generate_rules(itemsets, min_confidence=0.1)
    confidences = [rule.confidence for rule in rules]
    assert confidences == sorted(confidences, reverse=True)


def test_antecedent_consequent_disjoint_and_nonempty(itemsets):
    for rule in generate_rules(itemsets, min_confidence=0.1):
        assert rule.antecedent
        assert rule.consequent
        assert not rule.antecedent & rule.consequent


def test_no_rules_from_singletons():
    itemsets = fpgrowth([["a"], ["a"], ["b"]], 1 / 3)
    assert generate_rules(itemsets, min_confidence=0.1) == []


def test_bad_confidence_raises(itemsets):
    with pytest.raises(MiningError):
        generate_rules(itemsets, min_confidence=0.0)
    with pytest.raises(MiningError):
        generate_rules(itemsets, min_confidence=1.1)


def test_filter_rules_contains(itemsets):
    rules = generate_rules(itemsets, min_confidence=0.1)
    only_a = filter_rules(rules, contains="a")
    assert all(
        "a" in (rule.antecedent | rule.consequent) for rule in only_a
    )
    lhs_a = filter_rules(rules, antecedent_contains="a")
    assert all("a" in rule.antecedent for rule in lhs_a)
    rhs_b = filter_rules(rules, consequent_contains="b")
    assert all("b" in rule.consequent for rule in rhs_b)


def test_rule_string_rendering(itemsets):
    rules = generate_rules(itemsets, min_confidence=0.1)
    text = str(rules[0])
    assert "=>" in text and "conf=" in text
