"""Tests for the embedded document store: CRUD, cursors, persistence."""

import pytest

from repro.exceptions import (
    CollectionNotFoundError,
    DuplicateKeyError,
    QueryError,
    StoreError,
)
from repro.kdb.documentstore import DocumentStore


@pytest.fixture()
def store():
    return DocumentStore()


@pytest.fixture()
def people(store):
    collection = store["people"]
    collection.insert_many(
        [
            {"name": "ada", "age": 36, "tags": ["math", "code"]},
            {"name": "grace", "age": 85, "tags": ["code", "navy"]},
            {"name": "alan", "age": 41, "tags": ["math"]},
            {"name": "edsger", "age": 72, "tags": []},
        ]
    )
    return collection


# ----------------------------------------------------------------------
# insert
# ----------------------------------------------------------------------
def test_insert_assigns_sequential_ids(store):
    collection = store["c"]
    ids = collection.insert_many([{"x": 1}, {"x": 2}, {"x": 3}])
    assert ids == [1, 2, 3]


def test_insert_respects_explicit_id(store):
    collection = store["c"]
    assert collection.insert_one({"_id": "custom", "x": 1}) == "custom"
    assert collection.find_one({"_id": "custom"})["x"] == 1


def test_insert_duplicate_id_raises(store):
    collection = store["c"]
    collection.insert_one({"_id": 7})
    with pytest.raises(DuplicateKeyError):
        collection.insert_one({"_id": 7})


def test_insert_skips_taken_auto_id(store):
    collection = store["c"]
    collection.insert_one({"_id": 1})
    new_id = collection.insert_one({"x": 2})
    assert new_id != 1
    assert len(collection) == 2


def test_insert_non_dict_raises(store):
    with pytest.raises(StoreError):
        store["c"].insert_one(["not", "a", "dict"])


def test_insert_unserialisable_raises(store):
    with pytest.raises(StoreError):
        store["c"].insert_one({"bad": object()})


def test_insert_copies_document(store):
    collection = store["c"]
    original = {"nested": {"x": 1}}
    collection.insert_one(original)
    original["nested"]["x"] = 999
    stored = collection.find_one({})
    assert stored["nested"]["x"] == 1


def test_find_returns_copies(store):
    collection = store["c"]
    collection.insert_one({"nested": {"x": 1}})
    fetched = collection.find_one({})
    fetched["nested"]["x"] = 999
    assert collection.find_one({})["nested"]["x"] == 1


# ----------------------------------------------------------------------
# find / count / distinct
# ----------------------------------------------------------------------
def test_find_all(people):
    assert len(people.find()) == 4


def test_find_implicit_equality(people):
    assert people.find_one({"name": "ada"})["age"] == 36


def test_equality_matches_array_element(people):
    names = sorted(d["name"] for d in people.find({"tags": "math"}))
    assert names == ["ada", "alan"]


def test_count_documents(people):
    assert people.count_documents({"age": {"$gt": 40}}) == 3
    assert people.count_documents() == 4


def test_distinct_scalar(people):
    assert sorted(people.distinct("name")) == [
        "ada",
        "alan",
        "edsger",
        "grace",
    ]


def test_distinct_unrolls_arrays(people):
    assert sorted(people.distinct("tags")) == ["code", "math", "navy"]


def test_find_missing_field_no_match(people):
    assert people.count_documents({"height": 180}) == 0


def test_bool_int_equality_separated(store):
    collection = store["c"]
    collection.insert_many([{"flag": True}, {"flag": 1}])
    assert collection.count_documents({"flag": True}) == 1
    assert collection.count_documents({"flag": 1}) == 1


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------
def test_sort_ascending_descending(people):
    ascending = [d["age"] for d in people.find().sort("age")]
    assert ascending == sorted(ascending)
    descending = [d["age"] for d in people.find().sort("age", -1)]
    assert descending == sorted(descending, reverse=True)


def test_sort_multiple_keys(store):
    collection = store["c"]
    collection.insert_many(
        [
            {"a": 1, "b": 2},
            {"a": 1, "b": 1},
            {"a": 0, "b": 9},
        ]
    )
    result = [
        (d["a"], d["b"])
        for d in collection.find().sort([("a", 1), ("b", 1)])
    ]
    assert result == [(0, 9), (1, 1), (1, 2)]


def test_skip_and_limit(people):
    page = people.find().sort("age").skip(1).limit(2).to_list()
    assert [d["age"] for d in page] == [41, 72]


def test_negative_skip_limit_raise(people):
    with pytest.raises(QueryError):
        people.find().skip(-1)
    with pytest.raises(QueryError):
        people.find().limit(-5)


def test_missing_sort_key_sorts_first(store):
    collection = store["c"]
    collection.insert_many([{"v": 2}, {}, {"v": 1}])
    values = [d.get("v") for d in collection.find().sort("v")]
    assert values == [None, 1, 2]


# ----------------------------------------------------------------------
# update
# ----------------------------------------------------------------------
def test_update_one_set(people):
    updated = people.update_one({"name": "ada"}, {"$set": {"age": 37}})
    assert updated == 1
    assert people.find_one({"name": "ada"})["age"] == 37


def test_update_many_inc(people):
    updated = people.update_many({}, {"$inc": {"age": 1}})
    assert updated == 4
    assert people.find_one({"name": "ada"})["age"] == 37


def test_update_set_deep_path_creates_dicts(store):
    collection = store["c"]
    collection.insert_one({"x": 1})
    collection.update_one({"x": 1}, {"$set": {"a.b.c": 5}})
    assert collection.find_one({})["a"]["b"]["c"] == 5


def test_update_unset(people):
    people.update_one({"name": "ada"}, {"$unset": {"age": ""}})
    assert "age" not in people.find_one({"name": "ada"})


def test_update_push_and_add_to_set(people):
    people.update_one({"name": "alan"}, {"$push": {"tags": "logic"}})
    people.update_one({"name": "alan"}, {"$addToSet": {"tags": "logic"}})
    tags = people.find_one({"name": "alan"})["tags"]
    assert tags.count("logic") == 1
    people.update_one({"name": "alan"}, {"$push": {"tags": "logic"}})
    assert people.find_one({"name": "alan"})["tags"].count("logic") == 2


def test_update_pull(people):
    people.update_one({"name": "ada"}, {"$pull": {"tags": "math"}})
    assert people.find_one({"name": "ada"})["tags"] == ["code"]


def test_update_inc_non_numeric_raises(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"$inc": {"name": 1}})


def test_update_requires_operators(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"age": 1})


def test_update_unknown_operator_raises(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"$flip": {"age": 1}})


def test_update_cannot_change_id(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"$set": {"_id": 99}})


def test_update_zero_matches(people):
    assert people.update_one({"name": "x"}, {"$set": {"age": 1}}) == 0


# ----------------------------------------------------------------------
# delete
# ----------------------------------------------------------------------
def test_delete_one(people):
    assert people.delete_one({"name": "ada"}) == 1
    assert people.count_documents() == 3


def test_delete_many_with_query(people):
    assert people.delete_many({"age": {"$gt": 40}}) == 3
    assert people.count_documents() == 1


def test_delete_many_all(people):
    assert people.delete_many() == 4
    assert len(people) == 0


# ----------------------------------------------------------------------
# indexes
# ----------------------------------------------------------------------
def test_index_accelerated_find_equivalent(people):
    before = sorted(d["name"] for d in people.find({"name": "ada"}))
    people.create_index("name")
    after = sorted(d["name"] for d in people.find({"name": "ada"}))
    assert before == after
    assert "name_1" in people.index_names()


def test_index_stays_consistent_after_updates(people):
    people.create_index("name")
    people.update_one({"name": "ada"}, {"$set": {"name": "ada lovelace"}})
    assert people.find_one({"name": "ada"}) is None
    assert people.find_one({"name": "ada lovelace"}) is not None


def test_index_stays_consistent_after_delete(people):
    people.create_index("name")
    people.delete_one({"name": "ada"})
    assert people.find_one({"name": "ada"}) is None


def test_unique_index_blocks_duplicates(store):
    collection = store["c"]
    collection.create_index("email", unique=True)
    collection.insert_one({"email": "x@y.z"})
    with pytest.raises(DuplicateKeyError):
        collection.insert_one({"email": "x@y.z"})


def test_unique_index_on_existing_duplicates_fails(store):
    collection = store["c"]
    collection.insert_many([{"v": 1}, {"v": 1}])
    with pytest.raises(DuplicateKeyError):
        collection.create_index("v", unique=True)
    assert "v_1" not in collection.index_names()


def test_drop_index(people):
    name = people.create_index("name")
    people.drop_index(name)
    assert name not in people.index_names()


# ----------------------------------------------------------------------
# store-level operations
# ----------------------------------------------------------------------
def test_existing_collection_raises_when_absent(store):
    with pytest.raises(CollectionNotFoundError):
        store.existing("ghost")


def test_collection_names_sorted(store):
    store["b"]
    store["a"]
    assert store.collection_names() == ["a", "b"]


def test_drop_collection(store):
    store["temp"].insert_one({"x": 1})
    store.drop_collection("temp")
    assert "temp" not in store.collection_names()


def test_collection_drop_empties_but_keeps_indexes(people):
    people.create_index("name")
    people.drop()
    assert len(people) == 0
    assert "name_1" in people.index_names()
    people.insert_one({"name": "new"})
    assert people.find_one({"name": "new"}) is not None


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def test_save_load_roundtrip(people, store, tmp_path):
    people.create_index("name")
    store.save(tmp_path / "db")
    loaded = DocumentStore.load(tmp_path / "db")
    assert len(loaded["people"]) == 4
    assert loaded["people"].find_one({"name": "ada"})["age"] == 36
    assert "name_1" in loaded["people"].index_names()


def test_load_missing_manifest_raises(tmp_path):
    with pytest.raises(StoreError):
        DocumentStore.load(tmp_path / "absent")


def test_save_load_preserves_unique_flag(store, tmp_path):
    collection = store["c"]
    collection.create_index("email", unique=True)
    collection.insert_one({"email": "a@b.c"})
    store.save(tmp_path / "db")
    loaded = DocumentStore.load(tmp_path / "db")
    with pytest.raises(DuplicateKeyError):
        loaded["c"].insert_one({"email": "a@b.c"})


# ----------------------------------------------------------------------
# cursor sorting over unorderable values + memoisation
# ----------------------------------------------------------------------
def test_sort_unorderable_same_type_values_no_typeerror(store):
    collection = store["mixed"]
    collection.insert_many(
        [
            {"v": {"b": 1}},
            {"v": [2, 1]},
            {"v": {"a": 1}},
            {"v": 5},
            {"v": "s"},
            {"v": None},
        ]
    )
    documents = collection.find().sort("v").to_list()  # must not raise
    assert len(documents) == 6
    assert documents[0]["v"] is None  # None still sorts first
    # Deterministic: re-sorting yields the identical order.
    assert collection.find().sort("v").to_list() == documents


def test_sort_dicts_fall_back_to_repr_order(store):
    collection = store["dicts"]
    collection.insert_many([{"v": {"b": 1}}, {"v": {"a": 1}}])
    values = [d["v"] for d in collection.find().sort("v").to_list()]
    assert values == [{"a": 1}, {"b": 1}]
    values = [d["v"] for d in collection.find().sort("v", -1).to_list()]
    assert values == [{"b": 1}, {"a": 1}]


def test_aggregate_sort_stage_handles_unorderable_values(store):
    collection = store["aggmixed"]
    collection.insert_many([{"v": {"b": 1}}, {"v": {"a": 1}}, {"v": None}])
    result = collection.aggregate([{"$sort": {"v": 1}}])
    assert [d["v"] for d in result] == [None, {"a": 1}, {"b": 1}]


def test_cursor_resolution_is_memoised(people):
    cursor = people.find().sort("age", -1)
    first = cursor._resolved()
    assert cursor._resolved() is first  # repeated access: no re-sort
    assert len(cursor) == len(first)


def test_cursor_memo_invalidated_by_chaining(people):
    cursor = people.find().sort("age")
    resolved = cursor._resolved()
    cursor.limit(2)
    limited = cursor._resolved()
    assert limited is not resolved
    assert len(limited) == 2
    cursor.skip(1)
    skipped = cursor._resolved()
    assert skipped is not limited
    cursor.sort("name")
    assert cursor._resolved() is not skipped
    assert [d["name"] for d in cursor] == sorted(
        d["name"] for d in people.find()
    )[1:3]
