"""Tests for the embedded document store: CRUD, cursors, persistence."""

import pytest

from repro.exceptions import (
    CollectionNotFoundError,
    DuplicateKeyError,
    QueryError,
    StoreError,
)
from repro.kdb.documentstore import DocumentStore


@pytest.fixture()
def store():
    return DocumentStore()


@pytest.fixture()
def people(store):
    collection = store["people"]
    collection.insert_many(
        [
            {"name": "ada", "age": 36, "tags": ["math", "code"]},
            {"name": "grace", "age": 85, "tags": ["code", "navy"]},
            {"name": "alan", "age": 41, "tags": ["math"]},
            {"name": "edsger", "age": 72, "tags": []},
        ]
    )
    return collection


# ----------------------------------------------------------------------
# insert
# ----------------------------------------------------------------------
def test_insert_assigns_sequential_ids(store):
    collection = store["c"]
    ids = collection.insert_many([{"x": 1}, {"x": 2}, {"x": 3}])
    assert ids == [1, 2, 3]


def test_insert_respects_explicit_id(store):
    collection = store["c"]
    assert collection.insert_one({"_id": "custom", "x": 1}) == "custom"
    assert collection.find_one({"_id": "custom"})["x"] == 1


def test_insert_duplicate_id_raises(store):
    collection = store["c"]
    collection.insert_one({"_id": 7})
    with pytest.raises(DuplicateKeyError):
        collection.insert_one({"_id": 7})


def test_insert_skips_taken_auto_id(store):
    collection = store["c"]
    collection.insert_one({"_id": 1})
    new_id = collection.insert_one({"x": 2})
    assert new_id != 1
    assert len(collection) == 2


def test_insert_non_dict_raises(store):
    with pytest.raises(StoreError):
        store["c"].insert_one(["not", "a", "dict"])


def test_insert_unserialisable_raises(store):
    with pytest.raises(StoreError):
        store["c"].insert_one({"bad": object()})


def test_insert_copies_document(store):
    collection = store["c"]
    original = {"nested": {"x": 1}}
    collection.insert_one(original)
    original["nested"]["x"] = 999
    stored = collection.find_one({})
    assert stored["nested"]["x"] == 1


def test_find_returns_copies(store):
    collection = store["c"]
    collection.insert_one({"nested": {"x": 1}})
    fetched = collection.find_one({})
    fetched["nested"]["x"] = 999
    assert collection.find_one({})["nested"]["x"] == 1


# ----------------------------------------------------------------------
# find / count / distinct
# ----------------------------------------------------------------------
def test_find_all(people):
    assert len(people.find()) == 4


def test_find_implicit_equality(people):
    assert people.find_one({"name": "ada"})["age"] == 36


def test_equality_matches_array_element(people):
    names = sorted(d["name"] for d in people.find({"tags": "math"}))
    assert names == ["ada", "alan"]


def test_count_documents(people):
    assert people.count_documents({"age": {"$gt": 40}}) == 3
    assert people.count_documents() == 4


def test_distinct_scalar(people):
    assert sorted(people.distinct("name")) == [
        "ada",
        "alan",
        "edsger",
        "grace",
    ]


def test_distinct_unrolls_arrays(people):
    assert sorted(people.distinct("tags")) == ["code", "math", "navy"]


def test_find_missing_field_no_match(people):
    assert people.count_documents({"height": 180}) == 0


def test_bool_int_equality_separated(store):
    collection = store["c"]
    collection.insert_many([{"flag": True}, {"flag": 1}])
    assert collection.count_documents({"flag": True}) == 1
    assert collection.count_documents({"flag": 1}) == 1


# ----------------------------------------------------------------------
# cursors
# ----------------------------------------------------------------------
def test_sort_ascending_descending(people):
    ascending = [d["age"] for d in people.find().sort("age")]
    assert ascending == sorted(ascending)
    descending = [d["age"] for d in people.find().sort("age", -1)]
    assert descending == sorted(descending, reverse=True)


def test_sort_multiple_keys(store):
    collection = store["c"]
    collection.insert_many(
        [
            {"a": 1, "b": 2},
            {"a": 1, "b": 1},
            {"a": 0, "b": 9},
        ]
    )
    result = [
        (d["a"], d["b"])
        for d in collection.find().sort([("a", 1), ("b", 1)])
    ]
    assert result == [(0, 9), (1, 1), (1, 2)]


def test_skip_and_limit(people):
    page = people.find().sort("age").skip(1).limit(2).to_list()
    assert [d["age"] for d in page] == [41, 72]


def test_negative_skip_limit_raise(people):
    with pytest.raises(QueryError):
        people.find().skip(-1)
    with pytest.raises(QueryError):
        people.find().limit(-5)


def test_missing_sort_key_sorts_first(store):
    collection = store["c"]
    collection.insert_many([{"v": 2}, {}, {"v": 1}])
    values = [d.get("v") for d in collection.find().sort("v")]
    assert values == [None, 1, 2]


# ----------------------------------------------------------------------
# update
# ----------------------------------------------------------------------
def test_update_one_set(people):
    updated = people.update_one({"name": "ada"}, {"$set": {"age": 37}})
    assert updated == 1
    assert people.find_one({"name": "ada"})["age"] == 37


def test_update_many_inc(people):
    updated = people.update_many({}, {"$inc": {"age": 1}})
    assert updated == 4
    assert people.find_one({"name": "ada"})["age"] == 37


def test_update_set_deep_path_creates_dicts(store):
    collection = store["c"]
    collection.insert_one({"x": 1})
    collection.update_one({"x": 1}, {"$set": {"a.b.c": 5}})
    assert collection.find_one({})["a"]["b"]["c"] == 5


def test_update_unset(people):
    people.update_one({"name": "ada"}, {"$unset": {"age": ""}})
    assert "age" not in people.find_one({"name": "ada"})


def test_update_push_and_add_to_set(people):
    people.update_one({"name": "alan"}, {"$push": {"tags": "logic"}})
    people.update_one({"name": "alan"}, {"$addToSet": {"tags": "logic"}})
    tags = people.find_one({"name": "alan"})["tags"]
    assert tags.count("logic") == 1
    people.update_one({"name": "alan"}, {"$push": {"tags": "logic"}})
    assert people.find_one({"name": "alan"})["tags"].count("logic") == 2


def test_update_pull(people):
    people.update_one({"name": "ada"}, {"$pull": {"tags": "math"}})
    assert people.find_one({"name": "ada"})["tags"] == ["code"]


def test_update_inc_non_numeric_raises(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"$inc": {"name": 1}})


def test_update_requires_operators(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"age": 1})


def test_update_unknown_operator_raises(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"$flip": {"age": 1}})


def test_update_cannot_change_id(people):
    with pytest.raises(StoreError):
        people.update_one({"name": "ada"}, {"$set": {"_id": 99}})


def test_update_zero_matches(people):
    assert people.update_one({"name": "x"}, {"$set": {"age": 1}}) == 0


# ----------------------------------------------------------------------
# delete
# ----------------------------------------------------------------------
def test_delete_one(people):
    assert people.delete_one({"name": "ada"}) == 1
    assert people.count_documents() == 3


def test_delete_many_with_query(people):
    assert people.delete_many({"age": {"$gt": 40}}) == 3
    assert people.count_documents() == 1


def test_delete_many_all(people):
    assert people.delete_many() == 4
    assert len(people) == 0


# ----------------------------------------------------------------------
# indexes
# ----------------------------------------------------------------------
def test_index_accelerated_find_equivalent(people):
    before = sorted(d["name"] for d in people.find({"name": "ada"}))
    people.create_index("name")
    after = sorted(d["name"] for d in people.find({"name": "ada"}))
    assert before == after
    assert "name_1" in people.index_names()


def test_index_stays_consistent_after_updates(people):
    people.create_index("name")
    people.update_one({"name": "ada"}, {"$set": {"name": "ada lovelace"}})
    assert people.find_one({"name": "ada"}) is None
    assert people.find_one({"name": "ada lovelace"}) is not None


def test_index_stays_consistent_after_delete(people):
    people.create_index("name")
    people.delete_one({"name": "ada"})
    assert people.find_one({"name": "ada"}) is None


def test_unique_index_blocks_duplicates(store):
    collection = store["c"]
    collection.create_index("email", unique=True)
    collection.insert_one({"email": "x@y.z"})
    with pytest.raises(DuplicateKeyError):
        collection.insert_one({"email": "x@y.z"})


def test_unique_index_on_existing_duplicates_fails(store):
    collection = store["c"]
    collection.insert_many([{"v": 1}, {"v": 1}])
    with pytest.raises(DuplicateKeyError):
        collection.create_index("v", unique=True)
    assert "v_1" not in collection.index_names()


def test_drop_index(people):
    name = people.create_index("name")
    people.drop_index(name)
    assert name not in people.index_names()


# ----------------------------------------------------------------------
# store-level operations
# ----------------------------------------------------------------------
def test_existing_collection_raises_when_absent(store):
    with pytest.raises(CollectionNotFoundError):
        store.existing("ghost")


def test_collection_names_sorted(store):
    store["b"]
    store["a"]
    assert store.collection_names() == ["a", "b"]


def test_drop_collection(store):
    store["temp"].insert_one({"x": 1})
    store.drop_collection("temp")
    assert "temp" not in store.collection_names()


def test_collection_drop_empties_but_keeps_indexes(people):
    people.create_index("name")
    people.drop()
    assert len(people) == 0
    assert "name_1" in people.index_names()
    people.insert_one({"name": "new"})
    assert people.find_one({"name": "new"}) is not None


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------
def test_save_load_roundtrip(people, store, tmp_path):
    people.create_index("name")
    store.save(tmp_path / "db")
    loaded = DocumentStore.load(tmp_path / "db")
    assert len(loaded["people"]) == 4
    assert loaded["people"].find_one({"name": "ada"})["age"] == 36
    assert "name_1" in loaded["people"].index_names()


def test_load_missing_manifest_raises(tmp_path):
    with pytest.raises(StoreError):
        DocumentStore.load(tmp_path / "absent")


def test_save_load_preserves_unique_flag(store, tmp_path):
    collection = store["c"]
    collection.create_index("email", unique=True)
    collection.insert_one({"email": "a@b.c"})
    store.save(tmp_path / "db")
    loaded = DocumentStore.load(tmp_path / "db")
    with pytest.raises(DuplicateKeyError):
        loaded["c"].insert_one({"email": "a@b.c"})


# ----------------------------------------------------------------------
# cursor sorting over unorderable values + memoisation
# ----------------------------------------------------------------------
def test_sort_unorderable_same_type_values_no_typeerror(store):
    collection = store["mixed"]
    collection.insert_many(
        [
            {"v": {"b": 1}},
            {"v": [2, 1]},
            {"v": {"a": 1}},
            {"v": 5},
            {"v": "s"},
            {"v": None},
        ]
    )
    documents = collection.find().sort("v").to_list()  # must not raise
    assert len(documents) == 6
    assert documents[0]["v"] is None  # None still sorts first
    # Deterministic: re-sorting yields the identical order.
    assert collection.find().sort("v").to_list() == documents


def test_sort_dicts_fall_back_to_repr_order(store):
    collection = store["dicts"]
    collection.insert_many([{"v": {"b": 1}}, {"v": {"a": 1}}])
    values = [d["v"] for d in collection.find().sort("v").to_list()]
    assert values == [{"a": 1}, {"b": 1}]
    values = [d["v"] for d in collection.find().sort("v", -1).to_list()]
    assert values == [{"b": 1}, {"a": 1}]


def test_aggregate_sort_stage_handles_unorderable_values(store):
    collection = store["aggmixed"]
    collection.insert_many([{"v": {"b": 1}}, {"v": {"a": 1}}, {"v": None}])
    result = collection.aggregate([{"$sort": {"v": 1}}])
    assert [d["v"] for d in result] == [None, {"a": 1}, {"b": 1}]


def test_cursor_resolution_is_memoised(people):
    cursor = people.find().sort("age", -1)
    first = cursor._resolved()
    assert cursor._resolved() is first  # repeated access: no re-sort
    assert len(cursor) == len(first)


def test_cursor_memo_invalidated_by_chaining(people):
    cursor = people.find().sort("age")
    resolved = cursor._resolved()
    cursor.limit(2)
    limited = cursor._resolved()
    assert limited is not resolved
    assert len(limited) == 2
    cursor.skip(1)
    skipped = cursor._resolved()
    assert skipped is not limited
    cursor.sort("name")
    assert cursor._resolved() is not skipped
    assert [d["name"] for d in cursor] == sorted(
        d["name"] for d in people.find()
    )[1:3]


# ----------------------------------------------------------------------
# atomic updates (regression: failed updates used to half-apply)
# ----------------------------------------------------------------------
def test_failed_inc_leaves_document_untouched(store):
    collection = store["c"]
    collection.insert_one({"_id": 1, "n": 5, "label": "x"})
    with pytest.raises(StoreError):
        collection.update_one(
            {"_id": 1}, {"$set": {"label": "y"}, "$inc": {"label": 1}}
        )
    assert collection.find_one({"_id": 1}) == {
        "_id": 1,
        "n": 5,
        "label": "x",
    }


def test_failed_unstorable_set_leaves_document_untouched(store):
    collection = store["c"]
    collection.insert_one({"_id": 1, "n": 5})
    with pytest.raises(StoreError):
        collection.update_one(
            {"_id": 1}, {"$inc": {"n": 1}, "$set": {"bad": object()}}
        )
    assert collection.find_one({"_id": 1}) == {"_id": 1, "n": 5}


def test_failed_update_keeps_indexes_consistent(store):
    collection = store["c"]
    collection.create_index("name", unique=True)
    collection.insert_many(
        [{"_id": 1, "name": "a", "n": 0}, {"_id": 2, "name": "b"}]
    )
    with pytest.raises(DuplicateKeyError):
        collection.update_one({"_id": 1}, {"$set": {"name": "b"}})
    # the old value is still indexed, the attempted one is not
    assert collection.find_one({"name": "a"}) == {
        "_id": 1,
        "name": "a",
        "n": 0,
    }
    assert collection.count_documents({"name": "b"}) == 1
    # and the document still accepts further updates
    assert collection.update_one({"_id": 1}, {"$inc": {"n": 1}}) == 1
    assert collection.find_one({"_id": 1})["n"] == 1


def test_update_many_failure_keeps_earlier_documents_updated(store):
    collection = store["c"]
    collection.insert_many(
        [{"_id": 1, "n": 1}, {"_id": 2, "n": "oops"}, {"_id": 3, "n": 3}]
    )
    with pytest.raises(StoreError):
        collection.update_many({}, {"$inc": {"n": 10}})
    # per-document atomicity: doc 1 updated, doc 2 untouched, doc 3
    # never reached
    assert collection.find_one({"_id": 1})["n"] == 11
    assert collection.find_one({"_id": 2})["n"] == "oops"
    assert collection.find_one({"_id": 3})["n"] == 3


# ----------------------------------------------------------------------
# $unset / $pull on missing paths (regression: created intermediates)
# ----------------------------------------------------------------------
def test_unset_missing_nested_path_creates_nothing(store):
    collection = store["c"]
    collection.insert_one({"_id": 1, "kept": True})
    collection.update_one({"_id": 1}, {"$unset": {"a.b.c": ""}})
    assert collection.find_one({"_id": 1}) == {"_id": 1, "kept": True}


def test_pull_missing_nested_path_creates_nothing(store):
    collection = store["c"]
    collection.insert_one({"_id": 1})
    collection.update_one({"_id": 1}, {"$pull": {"a.b": 1}})
    assert collection.find_one({"_id": 1}) == {"_id": 1}


def test_unset_through_non_dict_is_noop(store):
    collection = store["c"]
    collection.insert_one({"_id": 1, "a": 5})
    collection.update_one({"_id": 1}, {"$unset": {"a.b.c": ""}})
    assert collection.find_one({"_id": 1}) == {"_id": 1, "a": 5}


def test_unset_existing_nested_path_still_works(store):
    collection = store["c"]
    collection.insert_one({"_id": 1, "a": {"b": {"c": 1, "d": 2}}})
    collection.update_one({"_id": 1}, {"$unset": {"a.b.c": ""}})
    assert collection.find_one({"_id": 1}) == {"_id": 1, "a": {"b": {"d": 2}}}


# ----------------------------------------------------------------------
# distinct / $regex (regression: bool-int collapse, raw re.error)
# ----------------------------------------------------------------------
def test_distinct_separates_bool_from_int(store):
    collection = store["c"]
    collection.insert_many(
        [{"v": True}, {"v": 1}, {"v": False}, {"v": 0}, {"v": 1}]
    )
    values = collection.distinct("v")
    assert sorted(values, key=repr) == sorted(
        [True, 1, False, 0], key=repr
    )


def test_distinct_still_merges_int_float_equals(store):
    collection = store["c"]
    collection.insert_many([{"v": 1}, {"v": 1.0}, {"v": 2}])
    assert len(collection.distinct("v")) == 2


def test_invalid_regex_raises_query_error(people):
    with pytest.raises(QueryError):
        people.find_one({"name": {"$regex": "("}})


def test_regex_requires_string_pattern(people):
    with pytest.raises(QueryError):
        people.find_one({"name": {"$regex": 7}})


# ----------------------------------------------------------------------
# query planner
# ----------------------------------------------------------------------
def test_explain_reports_scan_without_index(people):
    plan = people.explain({"name": "ada"})
    assert plan.kind == "scan"
    assert not plan.indexed
    assert plan.examined == 4


def test_explain_point_plan_via_hash_index(people):
    people.create_index("name")
    plan = people.explain({"name": "ada"})
    assert plan.kind == "point"
    assert plan.index == "name_1"
    assert plan.indexed
    assert plan.examined == 1
    assert plan.to_document()["operators"] == ["$eq"]


def test_planner_id_fast_path(people):
    plan = people.explain({"_id": 2})
    assert plan.kind == "point"
    assert plan.index == "_id_"
    assert plan.examined == 1


def test_planner_in_probe_unions_buckets(people):
    people.create_index("name")
    plan = people.explain({"name": {"$in": ["ada", "alan", "nobody"]}})
    assert plan.kind == "point"
    assert plan.examined == 2
    names = {d["name"] for d in people.find({"name": {"$in": ["ada", "alan"]}})}
    assert names == {"ada", "alan"}


def test_planner_range_uses_sorted_index(people):
    people.create_index("age", kind="sorted")
    plan = people.explain({"age": {"$gte": 40, "$lt": 80}})
    assert plan.kind == "range"
    assert plan.index == "age_1"
    rows = people.find({"age": {"$gte": 40, "$lt": 80}}).to_list()
    assert {row["name"] for row in rows} == {"alan", "edsger"}


def test_planner_range_not_served_by_hash_index(people):
    people.create_index("age")
    assert people.explain({"age": {"$gt": 40}}).kind == "scan"


def test_planner_results_match_scan_order(people):
    people.create_index("age", kind="sorted")
    indexed = people.find({"age": {"$gt": 0}}).to_list()
    scanned = [d for d in people.find() if d["age"] > 0]
    assert indexed == scanned


def test_indexed_find_deep_copies(people):
    people.create_index("name")
    row = people.find_one({"name": "ada"})
    row["age"] = 999
    assert people.find_one({"name": "ada"})["age"] == 36


def test_hash_index_is_multikey_over_arrays(people):
    people.create_index("tags")
    plan = people.explain({"tags": "math"})
    assert plan.kind == "point"
    names = {d["name"] for d in people.find({"tags": "math"})}
    assert names == {"ada", "alan"}


def test_index_separates_bool_and_int_buckets(store):
    collection = store["c"]
    collection.insert_many([{"v": True}, {"v": 1}, {"v": 1.0}])
    collection.create_index("v")
    assert collection.count_documents({"v": True}) == 1
    assert collection.count_documents({"v": 1}) == 2  # 1 == 1.0


def test_find_records_last_plan(people):
    people.create_index("name")
    people.find({"name": "ada"}).to_list()
    assert people.last_plan.kind == "point"
    assert people.last_plan.returned == 1
    people.find({"age": 36}).to_list()
    assert people.last_plan.kind == "scan"


def test_plan_metrics_counters(people):
    from repro.obs import Metrics

    metrics = Metrics()
    people.metrics = metrics
    people.create_index("name")
    people.find({"name": "ada"}).to_list()
    people.find({"age": 36}).to_list()
    assert metrics.counter_value("kdb.plans.indexed") == 1
    assert metrics.counter_value("kdb.plans.scan") == 1
    snapshot = metrics.snapshot()
    assert snapshot["histograms"]["kdb.query.latency"]["count"] == 2


# ----------------------------------------------------------------------
# sorted indexes: index-ordered sort().limit()
# ----------------------------------------------------------------------
def test_indexed_sort_matches_scan_sort(people):
    scan = people.find().sort("age", 1).to_list()
    people.create_index("age", kind="sorted")
    indexed = people.find().sort("age", 1).to_list()
    assert indexed == scan
    assert people.find().sort("age", -1).to_list() == scan[::-1]


def test_indexed_sort_with_limit_and_missing_values(store):
    collection = store["c"]
    collection.insert_many(
        [{"n": 3}, {"m": "no n"}, {"n": 1}, {"n": None}, {"n": 2}]
    )
    expected_asc = collection.find().sort("n", 1).to_list()
    expected_top2 = collection.find().sort("n", -1).limit(2).to_list()
    collection.create_index("n", kind="sorted")
    assert collection.find().sort("n", 1).to_list() == expected_asc
    assert (
        collection.find().sort("n", -1).limit(2).to_list()
        == expected_top2
    )


def test_indexed_sort_mixed_types_matches_scan(store):
    collection = store["c"]
    collection.insert_many(
        [{"v": 2}, {"v": "b"}, {"v": 1.5}, {"v": "a"}, {"v": 10}]
    )
    expected = collection.find().sort("v", 1).to_list()
    collection.create_index("v", kind="sorted")
    assert collection.find().sort("v", 1).to_list() == expected


def test_stale_cursor_falls_back_to_full_sort(people):
    people.create_index("age", kind="sorted")
    cursor = people.find().sort("age", 1)
    people.insert_one({"name": "barbara", "age": 1, "tags": []})
    resolved = cursor._resolved()
    # the cursor was planned before the insert: it must still sort its
    # own 4 matches correctly (via fallback), not drop or misorder them
    assert [row["age"] for row in resolved] == [36, 41, 72, 85]


def test_sorted_index_upgrade_from_hash(people):
    people.create_index("age")
    assert people.explain({"age": {"$gt": 40}}).kind == "scan"
    people.create_index("age", kind="sorted")
    assert people.explain({"age": {"$gt": 40}}).kind == "range"
    # downgrade requests are no-ops
    people.create_index("age")
    assert people.explain({"age": {"$gt": 40}}).kind == "range"


def test_unknown_index_kind_rejected(people):
    with pytest.raises(StoreError):
        people.create_index("age", kind="btree")


# ----------------------------------------------------------------------
# snapshots
# ----------------------------------------------------------------------
def test_snapshot_is_consistent_under_writes(people):
    snap = people.snapshot()
    people.insert_one({"name": "barbara", "age": 1, "tags": []})
    people.update_one({"name": "ada"}, {"$inc": {"age": 1}})
    people.delete_one({"name": "alan"})
    assert len(snap) == 4
    assert snap.find_one({"name": "ada"})["age"] == 36
    assert snap.find_one({"name": "alan"}) is not None
    assert snap.find_one({"name": "barbara"}) is None


def test_snapshot_rejects_writes(people):
    snap = people.snapshot()
    with pytest.raises(StoreError):
        snap.insert_one({"name": "x"})
    with pytest.raises(StoreError):
        snap.update_one({}, {"$set": {"a": 1}})
    with pytest.raises(StoreError):
        snap.delete_many({})
    with pytest.raises(StoreError):
        snap.drop()


def test_snapshot_carries_indexes(people):
    people.create_index("name")
    snap = people.snapshot()
    assert snap.explain({"name": "ada"}).kind == "point"
    assert snap.find_one({"name": "ada"})["age"] == 36


def test_store_snapshot_covers_all_collections(store):
    store["a"].insert_one({"x": 1})
    store["b"].insert_one({"y": 2})
    snap = store.snapshot()
    store["a"].insert_one({"x": 3})
    assert len(snap["a"]) == 1
    assert len(snap["b"]) == 1


# ----------------------------------------------------------------------
# aggregation pushdown
# ----------------------------------------------------------------------
def test_aggregate_leading_match_uses_planner(people):
    people.create_index("name")
    rows = people.aggregate([{"$match": {"name": "ada"}}])
    assert [row["name"] for row in rows] == ["ada"]
    assert people.last_plan.kind == "point"


def test_aggregate_copies_results_not_collection(people):
    rows = people.aggregate([{"$match": {"name": "ada"}}])
    rows[0]["age"] = 999
    assert people.find_one({"name": "ada"})["age"] == 36
