"""Tests for the out-of-core data plane.

Covers the :mod:`repro.data.blocks` substrate (``SharedMatrix``
lifecycle, ``BlockedDataset`` partitioning and fingerprints), the
streaming generator, blockwise mining identity, the shared-memory task
transport, adaptive backend resolution and the cleanup invariant under
injected faults.
"""

import os
import pickle

import numpy as np
import pytest

from repro.cloud import (
    FaultInjector,
    ProcessPoolExecutorBackend,
    RetryPolicy,
    SerialExecutor,
    TaskSpec,
    ThreadPoolExecutorBackend,
    backend_name,
    log_lease,
    matrix_lease,
    open_log,
)
from repro.core.cache import fingerprint_array
from repro.core.engine import (
    AUTO_EXECUTOR_MIN_RECORDS,
    ADAHealth,
    EngineConfig,
)
from repro.core.optimizer import KMeansOptimizer
from repro.data import (
    BlockedDataset,
    ExamLog,
    SharedMatrix,
    SharedMatrixHandle,
    leaked_segments,
    open_matrix,
    reap_segments,
)
from repro.data.synthetic import DiabeticExamLogGenerator, GeneratorConfig
from repro.exceptions import DataError, MiningError
from repro.mining.itemsets import apriori, apriori_blocks, fpgrowth
from repro.mining.kmeans import KMeans

pytestmark = pytest.mark.blocks


# ----------------------------------------------------------------------
# SharedMatrix lifecycle
# ----------------------------------------------------------------------
def test_shared_matrix_round_trips_through_a_pickled_handle():
    matrix = np.arange(2400, dtype=np.float64).reshape(60, 40)
    segment = SharedMatrix.create(matrix)
    try:
        handle = segment.handle()
        wire = pickle.dumps(handle, protocol=pickle.HIGHEST_PROTOCOL)
        # the whole point: the descriptor is tiny, the matrix is not
        assert len(wire) < 200 < matrix.nbytes
        restored = pickle.loads(wire)
        attached = SharedMatrix.attach(restored)
        try:
            assert np.array_equal(attached.array, matrix)
            assert attached.array.dtype == matrix.dtype
        finally:
            attached.close()
    finally:
        segment.unlink()
    assert leaked_segments() == []


def test_shared_matrix_context_manager_unlinks_for_owners():
    matrix = np.ones((3, 3))
    with SharedMatrix.create(matrix) as segment:
        name = segment.name
        assert name in leaked_segments()
    assert leaked_segments() == []


def test_attachers_may_close_but_never_unlink():
    segment = SharedMatrix.create(np.zeros((2, 2)))
    try:
        attached = SharedMatrix.attach(segment.handle())
        with pytest.raises(DataError):
            attached.unlink()
        attached.close()
        attached.close()  # idempotent
        # the owner's data survived the attacher's exit
        assert np.array_equal(segment.array, np.zeros((2, 2)))
    finally:
        segment.unlink()
    with pytest.raises(DataError):
        SharedMatrix.attach(segment.handle())


def test_open_matrix_resolves_every_ref_kind():
    matrix = np.arange(12, dtype=np.float64).reshape(4, 3)
    with open_matrix(matrix) as resolved:
        assert resolved is matrix
    blocked = BlockedDataset(matrix, block_rows=2)
    with open_matrix(blocked) as resolved:
        assert np.array_equal(resolved, matrix)
    segment = SharedMatrix.create(matrix)
    try:
        with open_matrix(segment.handle()) as resolved:
            assert np.array_equal(resolved, matrix)
    finally:
        segment.unlink()
    assert leaked_segments() == []


def test_handle_reports_payload_size():
    handle = SharedMatrixHandle(
        name="adarepro-x", shape=(10, 4), dtype="<f8"
    )
    assert handle.nbytes == 10 * 4 * 8


# ----------------------------------------------------------------------
# BlockedDataset partitioning
# ----------------------------------------------------------------------
def test_block_boundaries_cover_edge_cases():
    matrix = np.arange(30, dtype=np.float64).reshape(10, 3)

    ragged = BlockedDataset(matrix, block_rows=3)
    assert ragged.n_blocks == 4
    assert [len(block) for block in ragged.iter_blocks()] == [3, 3, 3, 1]

    single = BlockedDataset(matrix, block_rows=1)
    assert single.n_blocks == 10
    assert all(len(block) == 1 for block in single)

    oversize = BlockedDataset(matrix, block_rows=99)
    assert oversize.n_blocks == 1
    assert np.array_equal(oversize.block(0), matrix)

    exact = BlockedDataset(matrix, block_rows=5)
    assert exact.n_blocks == 2
    assert len(exact) == 10

    assert np.array_equal(
        np.vstack(list(ragged.iter_blocks())), matrix
    )
    with pytest.raises(DataError):
        BlockedDataset(matrix, block_rows=0)
    with pytest.raises(DataError):
        BlockedDataset(np.arange(5.0), block_rows=2)  # 1-D


def test_blocks_are_views_over_one_backing_array():
    matrix = np.arange(20, dtype=np.float64).reshape(5, 4)
    blocked = BlockedDataset(matrix, block_rows=2)
    for i in range(blocked.n_blocks):
        assert np.shares_memory(blocked.block(i), blocked.matrix)


def test_fingerprint_streams_to_the_flat_digest():
    rng = np.random.default_rng(7)
    matrix = rng.normal(size=(23, 6))
    flat = fingerprint_array(matrix)
    for block_rows in (1, 4, 7, 23, 50):
        blocked = BlockedDataset(matrix, block_rows=block_rows)
        assert blocked.fingerprint() == flat
    blocked = BlockedDataset(matrix, block_rows=4)
    for i in range(blocked.n_blocks):
        assert blocked.block_fingerprint(i) == fingerprint_array(
            np.ascontiguousarray(blocked.block(i))
        )


def test_from_blocks_round_trips():
    matrix = np.arange(28, dtype=np.float64).reshape(7, 4)
    blocked = BlockedDataset(matrix, block_rows=3)
    rebuilt = BlockedDataset.from_blocks(list(blocked.iter_blocks()))
    assert np.array_equal(rebuilt.matrix, matrix)
    assert rebuilt.fingerprint() == blocked.fingerprint()


# ----------------------------------------------------------------------
# Streaming generation
# ----------------------------------------------------------------------
def test_generate_blocks_is_deterministic_and_concatenable():
    config = GeneratorConfig(
        n_patients=50, n_exam_types=20, target_records=900
    )
    generator = DiabeticExamLogGenerator(config, seed=9)
    first = list(generator.generate_blocks(block_rows=16))
    second = list(generator.generate_blocks(block_rows=16))
    assert len(first) == len(second) == 4  # ceil(50 / 16)
    for left, right in zip(first, second):
        assert left.to_rows().tolist() == right.to_rows().tolist()

    merged = ExamLog.concat(first)
    assert merged.n_patients == 50
    # patients partition cleanly across blocks: ids never collide
    seen = [p for log in first for p in log.patients]
    assert len(seen) == len(set(seen)) == 50
    assert len(merged.taxonomy) == len(first[0].taxonomy)


def test_generate_blocks_validates_inputs():
    generator = DiabeticExamLogGenerator(
        GeneratorConfig(n_patients=10, target_records=50), seed=0
    )
    with pytest.raises(DataError):
        list(generator.generate_blocks(block_rows=0))


# ----------------------------------------------------------------------
# Minibatch K-means
# ----------------------------------------------------------------------
def test_partial_fit_recovers_separated_blobs(blobs):
    data, labels = blobs
    # shuffle so every block mixes the three blobs (the generator
    # emits them grouped, which would starve the seeding buffer)
    order = np.random.default_rng(2).permutation(len(data))
    model = KMeans(n_clusters=3, seed=4)
    blocked = BlockedDataset(np.asarray(data)[order], block_rows=25)
    for block in blocked.iter_blocks():
        model.partial_fit(block)
    assert model.n_seen_ == len(data)
    centers = np.sort(model.cluster_centers_.mean(axis=1))
    assert np.allclose(centers, [0.0, 4.0, 8.0], atol=0.5)


def test_partial_fit_buffers_until_k_rows_arrive():
    model = KMeans(n_clusters=3, seed=0)
    model.partial_fit(np.array([[0.0, 0.0]]))
    assert model.cluster_centers_ is None  # still buffering
    model.partial_fit(np.array([[4.0, 4.0], [8.0, 8.0]]))
    assert model.cluster_centers_ is not None
    assert model.n_seen_ == 3


# ----------------------------------------------------------------------
# Blockwise itemset mining
# ----------------------------------------------------------------------
def test_apriori_blocks_is_byte_identical_to_flat(transactions):
    flat = apriori(transactions, min_support=0.2)
    reference = pickle.dumps(flat)
    assert pickle.dumps(fpgrowth(transactions, min_support=0.2)) == (
        reference
    )
    for split in (1, 2, 4, len(transactions)):
        blocks = [
            transactions[i: i + split]
            for i in range(0, len(transactions), split)
        ]
        blocked = apriori_blocks(blocks, min_support=0.2)
        assert pickle.dumps(blocked) == reference


def test_apriori_blocks_tolerates_empty_blocks(transactions):
    reference = pickle.dumps(apriori(transactions, min_support=0.25))
    blocked = apriori_blocks(
        [[], transactions[:4], [], transactions[4:], []],
        min_support=0.25,
    )
    assert pickle.dumps(blocked) == reference


def test_apriori_blocks_rejects_an_empty_stream():
    with pytest.raises(MiningError):
        apriori_blocks([], min_support=0.5)
    with pytest.raises(MiningError):
        apriori_blocks([[]], min_support=0.5)


# ----------------------------------------------------------------------
# Shared-memory transport
# ----------------------------------------------------------------------
def test_matrix_lease_short_circuits_in_process_backends():
    matrix = np.ones((4, 4))
    with matrix_lease(SerialExecutor(), matrix) as (ref,):
        assert ref is matrix
    with matrix_lease(None, matrix) as (ref,):
        assert ref is matrix
    backend = ThreadPoolExecutorBackend(max_workers=2)
    with matrix_lease(backend, matrix) as (ref,):
        assert ref is matrix


def test_matrix_lease_ships_handles_to_process_backends():
    matrix = np.arange(16, dtype=np.float64).reshape(4, 4)
    backend = ProcessPoolExecutorBackend(workers=2)
    with matrix_lease(backend, matrix) as (ref,):
        assert isinstance(ref, SharedMatrixHandle)
        assert ref.name in leaked_segments()
        with open_matrix(ref) as resolved:
            assert np.array_equal(resolved, matrix)
    assert leaked_segments() == []
    # object-dtype arrays cannot live in a flat segment: pickle fallback
    labels = np.array(["a", "b", None], dtype=object)
    with matrix_lease(backend, labels) as (ref,):
        assert ref is labels
    assert leaked_segments() == []


def test_log_lease_round_trips_the_log(tiny_log):
    backend = ProcessPoolExecutorBackend(workers=2)
    with log_lease(backend, tiny_log) as ref:
        assert ref is not tiny_log
        with open_log(ref) as rebuilt:
            assert rebuilt.n_records == tiny_log.n_records
            assert rebuilt.to_rows().tolist() == (
                tiny_log.to_rows().tolist()
            )
    assert leaked_segments() == []
    with log_lease(SerialExecutor(), tiny_log) as ref:
        assert ref is tiny_log


def test_backend_name_unwraps_resilience_layers():
    backend = ProcessPoolExecutorBackend(workers=2)
    injector = FaultInjector(backend, raise_rate=0.1, seed=0)
    assert backend_name(injector) == "process"
    assert backend_name(SerialExecutor()) == "serial"


# ----------------------------------------------------------------------
# Payload accounting
# ----------------------------------------------------------------------
def test_process_backend_meters_payload_bytes():
    from repro.obs import Metrics

    metrics = Metrics()
    backend = ProcessPoolExecutorBackend(workers=2, metrics=metrics)
    backend.run([TaskSpec(_double, (i,)) for i in range(4)])
    histogram = metrics.snapshot()["histograms"]["cloud.payload_bytes"]
    assert histogram["count"] == 4
    assert histogram["max"] < 4096  # tiny tasks, tiny payloads


def _double(x):
    return 2 * x


# ----------------------------------------------------------------------
# Adaptive backend selection
# ----------------------------------------------------------------------
def test_auto_executor_resolution(tiny_log, monkeypatch):
    import repro.core.engine as engine_module

    engine = ADAHealth(config=EngineConfig(executor="auto"))
    monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 1)
    assert engine._resolved_executor(tiny_log) == "serial"
    monkeypatch.setattr(engine_module.os, "cpu_count", lambda: 8)
    # small log: transport would dominate the compute
    assert tiny_log.n_records < AUTO_EXECUTOR_MIN_RECORDS
    assert engine._resolved_executor(tiny_log) == "serial"

    class _Big:
        n_records = AUTO_EXECUTOR_MIN_RECORDS

    assert engine._resolved_executor(_Big()) == "process"
    explicit = ADAHealth(config=EngineConfig(executor="threads"))
    assert explicit._resolved_executor(tiny_log) == "threads"


# ----------------------------------------------------------------------
# End-to-end identity: flat vs blocked, serial vs pooled
# ----------------------------------------------------------------------
def _analysis_document(result):
    payload = {
        "items": [item.to_document() for item in result.items],
        "runs": [
            {
                "goal": run.goal.name,
                "status": run.status,
                "items": [item.to_document() for item in run.items],
            }
            for run in result.runs
        ],
    }
    import json

    return json.dumps(payload, sort_keys=True, default=str)


GOALS = ["patient-segmentation", "co-prescription-patterns"]


def test_analyze_is_byte_identical_flat_vs_blocked_vs_pooled(tiny_log):
    def run(**kwargs):
        engine = ADAHealth(
            config=EngineConfig(
                k_values=(2, 3), n_folds=3, use_cache=False, **kwargs
            ),
            seed=5,
        )
        return _analysis_document(
            engine.analyze(tiny_log, name="blocked", goals=GOALS)
        )

    flat = run()
    assert run(block_rows=13) == flat
    assert run(block_rows=13, executor="threads") == flat
    assert run(
        block_rows=13, executor="process", executor_workers=2
    ) == flat
    assert leaked_segments() == []


# ----------------------------------------------------------------------
# Cleanup under injected faults
# ----------------------------------------------------------------------
@pytest.mark.faults
def test_faulty_pooled_sweep_leaks_no_segments(blobs):
    data, _ = blobs
    matrix = np.asarray(data, dtype=np.float64)
    retry = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)
    injector = FaultInjector(
        ProcessPoolExecutorBackend(workers=2, retry=retry),
        raise_rate=0.3,
        drop_rate=0.2,
        max_failures=2,
        seed=5,
    )
    clean = KMeansOptimizer(
        k_values=(2, 3), n_folds=3, seed=1
    ).optimize(matrix)
    faulty = KMeansOptimizer(
        k_values=(2, 3), n_folds=3, seed=1, executor=injector
    ).optimize(BlockedDataset(matrix, block_rows=40))
    assert leaked_segments() == []
    assert faulty.best_row.k == clean.best_row.k
    assert [row.sse for row in faulty.rows] == [
        row.sse for row in clean.rows
    ]


@pytest.mark.faults
def test_unlucky_fatal_faults_still_leave_no_segments():
    matrix = np.ones((12, 3))
    injector = FaultInjector(
        ProcessPoolExecutorBackend(workers=2),
        raise_rate=1.0,
        redeliver=False,
        seed=0,
    )
    with pytest.raises(Exception):
        KMeansOptimizer(
            k_values=(2,), n_folds=3, seed=0, executor=injector
        ).optimize(matrix)
    assert leaked_segments() == []


# ----------------------------------------------------------------------
# orphan reaping after a hard kill (repro shm reap)
# ----------------------------------------------------------------------
_ORPHAN_CHILD = """
import signal

import numpy as np
from multiprocessing import resource_tracker
from repro.data.blocks import SharedMatrix

ref = SharedMatrix.create(np.ones((8, 8)))
# Model the whole process group dying (OOM killer): the resource
# tracker that would have unlinked this segment dies with us, so the
# segment outlives the process -- exactly the orphan `repro shm reap`
# exists for.
resource_tracker.unregister(ref._shm._name, "shared_memory")
print(ref.name, flush=True)
signal.pause()
"""


@pytest.mark.crash
def test_sigkilled_owner_leaks_a_segment_and_reap_clears_it():
    import signal
    import subprocess
    import sys

    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    child = subprocess.Popen(
        [sys.executable, "-c", _ORPHAN_CHILD],
        stdout=subprocess.PIPE,
        env=env,
        text=True,
    )
    try:
        name = child.stdout.readline().strip()
        assert name  # the segment exists before the kill
        child.send_signal(signal.SIGKILL)
        child.wait(timeout=30)
        assert name in leaked_segments()
        assert reap_segments([name]) == [name]
        assert name not in leaked_segments()
        # idempotent: a second reap finds nothing to do
        assert reap_segments([name]) == []
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
        child.stdout.close()
        reap_segments()


def test_reap_segments_never_touches_foreign_names():
    assert reap_segments(["not-a-library-segment"]) == []
