"""Cross-implementation and cross-backend equivalence checks.

The perf work (integer-encoded miners, process-parallel sweeps, the
analysis cache) must never change results. This module pins that down:

* the bitset Apriori and integer FP-growth against a brute-force
  reference miner;
* every execution backend against the serial baseline, for the K sweep,
  cross-validation and the whole engine;
* cached re-runs against their cold originals.

The backend sweeps double as tier-1 smoke coverage for the benchmark
configurations (marker: ``bench_smoke``), at tiny sizes.
"""

import functools
from itertools import combinations
from math import ceil

import numpy as np
import pytest

from repro.cloud import (
    ProcessPoolExecutorBackend,
    SerialExecutor,
    SimulatedClusterExecutor,
    ThreadPoolExecutorBackend,
)
from repro.core import ADAHealth, AnalysisCache, EngineConfig, KMeansOptimizer
from repro.data.synthetic import small_dataset
from repro.mining.decision_tree import DecisionTreeClassifier
from repro.mining.itemsets import apriori, fpgrowth
from repro.mining.validation import cross_validate


# ----------------------------------------------------------------------
# miners vs a brute-force reference
# ----------------------------------------------------------------------
def _reference_frequent(transactions, min_support):
    """Exhaustive frequent-itemset miner (exponential; tiny inputs only)."""
    n = len(transactions)
    min_count = max(1, ceil(min_support * n))
    sets = [set(t) for t in transactions]
    universe = sorted({item for t in sets for item in t})
    frequent = {}
    for size in range(1, len(universe) + 1):
        found = False
        for combo in combinations(universe, size):
            count = sum(1 for t in sets if t.issuperset(combo))
            if count >= min_count:
                frequent[frozenset(combo)] = count
                found = True
        if not found:  # downward closure: no larger set can be frequent
            break
    return frequent


def _random_transactions(n=40, n_items=8, seed=0):
    rng = np.random.default_rng(seed)
    pool = [f"exam-{index}" for index in range(n_items)]
    transactions = []
    for __ in range(n):
        size = int(rng.integers(1, n_items))
        picks = rng.choice(n_items, size=size, replace=False)
        transactions.append([pool[p] for p in sorted(picks)])
    return transactions


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("min_support", [0.1, 0.25, 0.5])
def test_miners_match_brute_force_reference(seed, min_support):
    transactions = _random_transactions(seed=seed)
    expected = _reference_frequent(transactions, min_support)
    for miner in (apriori, fpgrowth):
        mined = miner(transactions, min_support)
        assert {s.items: s.count for s in mined} == expected
        n = len(transactions)
        for itemset in mined:
            assert itemset.support == itemset.count / n


# ----------------------------------------------------------------------
# execution backends vs the serial baseline
# ----------------------------------------------------------------------
BACKENDS = [
    pytest.param(lambda: SerialExecutor(), id="serial"),
    pytest.param(lambda: ThreadPoolExecutorBackend(max_workers=2), id="threads"),
    pytest.param(lambda: ProcessPoolExecutorBackend(workers=2), id="process"),
    pytest.param(lambda: SimulatedClusterExecutor(n_workers=2), id="simcluster"),
]


@pytest.fixture(scope="module")
def blob_matrix():
    rng = np.random.default_rng(9)
    return np.vstack(
        [
            rng.normal(0.0, 0.4, size=(40, 5)),
            rng.normal(4.0, 0.4, size=(40, 5)),
            rng.normal(-4.0, 0.4, size=(40, 5)),
        ]
    )


def _sweep(matrix, executor):
    return KMeansOptimizer(
        k_values=(2, 3, 4), n_folds=3, seed=1, executor=executor
    ).optimize(matrix)


@pytest.mark.bench_smoke
@pytest.mark.parametrize("make_backend", BACKENDS)
def test_optimizer_identical_across_backends(blob_matrix, make_backend):
    baseline = _sweep(blob_matrix, SerialExecutor())
    report = _sweep(blob_matrix, make_backend())
    assert report.best_k == baseline.best_k
    assert report.sse_plateau == baseline.sse_plateau
    assert len(report.rows) == len(baseline.rows)
    for row, expected in zip(report.rows, baseline.rows):
        assert row.k == expected.k
        assert row.sse == expected.sse
        assert row.accuracy == expected.accuracy
        assert row.avg_precision == expected.avg_precision
        assert row.avg_recall == expected.avg_recall
        np.testing.assert_array_equal(row.labels, expected.labels)
        np.testing.assert_array_equal(row.centers, expected.centers)


@pytest.mark.bench_smoke
@pytest.mark.parametrize("make_backend", BACKENDS)
def test_cross_validate_identical_across_backends(blob_matrix, make_backend):
    labels = (np.arange(blob_matrix.shape[0]) // 40).astype(int)
    # functools.partial over a module-level class pickles, so the same
    # factory serves the process backend too.
    factory = functools.partial(DecisionTreeClassifier, max_depth=5, seed=0)
    baseline = cross_validate(factory, blob_matrix, labels, n_splits=3)
    scores = cross_validate(
        factory, blob_matrix, labels, n_splits=3, executor=make_backend()
    )
    assert scores == baseline


def test_cross_validate_executor_propagates_failure(blob_matrix):
    labels = (np.arange(blob_matrix.shape[0]) // 40).astype(int)

    def broken_factory():
        raise RuntimeError("cannot build model")

    with pytest.raises(RuntimeError):
        cross_validate(
            broken_factory,
            blob_matrix,
            labels,
            n_splits=3,
            executor=SerialExecutor(),
        )


# ----------------------------------------------------------------------
# the whole engine across execution modes and the cache
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def engine_log():
    return small_dataset(n_patients=60, seed=4)


def _items_signature(result):
    return [
        (item.kind, item.end_goal, item.title, item.score, item.degree)
        for item in result.items
    ]


def _run_engine(log, **config_kwargs):
    engine = ADAHealth(seed=3, config=EngineConfig(**config_kwargs))
    return engine.analyze(log, name="equivalence")


@pytest.mark.bench_smoke
@pytest.mark.parametrize("executor", ["threads", "process"])
def test_engine_parallel_matches_serial(engine_log, executor):
    baseline = _run_engine(engine_log)
    result = _run_engine(
        engine_log, executor=executor, executor_workers=2
    )
    assert _items_signature(result) == _items_signature(baseline)
    assert [run.goal.name for run in result.runs] == [
        run.goal.name for run in baseline.runs
    ]


@pytest.mark.bench_smoke
def test_engine_warm_cache_matches_cold(engine_log):
    baseline = _run_engine(engine_log)
    engine = ADAHealth(seed=3, config=EngineConfig(use_cache=True))
    cold = engine.analyze(engine_log, name="cold")
    warm = engine.analyze(engine_log, name="warm")
    assert _items_signature(cold) == _items_signature(baseline)
    assert _items_signature(warm) == _items_signature(baseline)
    # Every goal of the warm run was served from the cache.
    assert engine.cache is not None
    assert engine.cache.hits >= len(warm.runs)
    # The deferred transformation write still happens once per analyze.
    n_rows = len(engine.kdb.store["transformed_datasets"])
    assert n_rows == sum(
        1 for r in (cold, warm) for run in r.runs
        if "transformation" in run.notes
    )


def test_engine_cache_misses_on_changed_log(engine_log):
    engine = ADAHealth(seed=3, config=EngineConfig(use_cache=True))
    first = engine.analyze(engine_log, name="first")
    hits_before = engine.cache.hits
    other = small_dataset(n_patients=61, seed=4)
    second = engine.analyze(other, name="second")
    # A different log shares no dataset fingerprint: no hits, and one
    # fresh goal-level entry per goal of the second run.
    goal_entries = engine.cache.collection.find(
        {"algorithm": "engine-goal-run"}
    ).to_list()
    assert engine.cache.hits == hits_before
    assert len(goal_entries) == len(first.runs) + len(second.runs)
