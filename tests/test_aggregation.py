"""Tests for the document-store aggregation pipeline."""

import pytest

from repro.exceptions import QueryError
from repro.kdb.documentstore import DocumentStore


@pytest.fixture()
def sales():
    store = DocumentStore()
    collection = store["sales"]
    collection.insert_many(
        [
            {"region": "north", "amount": 10, "units": 1},
            {"region": "north", "amount": 30, "units": 2},
            {"region": "south", "amount": 5, "units": 1},
            {"region": "south", "amount": 15, "units": 3},
            {"region": "south", "amount": 25, "units": 1},
            {"region": "west", "amount": 100, "units": 10},
        ]
    )
    return collection


def test_group_sum_avg(sales):
    result = sales.aggregate(
        [
            {
                "$group": {
                    "_id": "$region",
                    "total": {"$sum": "$amount"},
                    "mean": {"$avg": "$amount"},
                }
            },
            {"$sort": {"_id": 1}},
        ]
    )
    assert [row["_id"] for row in result] == ["north", "south", "west"]
    by_region = {row["_id"]: row for row in result}
    assert by_region["north"]["total"] == 40
    assert by_region["south"]["total"] == 45
    assert by_region["south"]["mean"] == pytest.approx(15.0)


def test_group_min_max_count(sales):
    result = sales.aggregate(
        [
            {
                "$group": {
                    "_id": "$region",
                    "n": {"$count": True},
                    "low": {"$min": "$amount"},
                    "high": {"$max": "$amount"},
                }
            }
        ]
    )
    by_region = {row["_id"]: row for row in result}
    assert by_region["south"]["n"] == 3
    assert by_region["south"]["low"] == 5
    assert by_region["south"]["high"] == 25


def test_group_push(sales):
    result = sales.aggregate(
        [
            {"$group": {"_id": "$region", "amounts": {"$push": "$amount"}}},
            {"$sort": {"_id": 1}},
        ]
    )
    assert sorted(result[0]["amounts"]) == [10, 30]


def test_match_then_group(sales):
    result = sales.aggregate(
        [
            {"$match": {"amount": {"$gte": 15}}},
            {"$group": {"_id": "$region", "n": {"$count": True}}},
            {"$sort": {"_id": 1}},
        ]
    )
    by_region = {row["_id"]: row["n"] for row in result}
    assert by_region == {"north": 1, "south": 2, "west": 1}


def test_group_constant_id_totals(sales):
    result = sales.aggregate(
        [
            {
                "$group": {
                    "_id": None,
                    "grand_total": {"$sum": "$amount"},
                }
            }
        ]
    )
    assert len(result) == 1
    assert result[0]["grand_total"] == 185


def test_sort_limit_skip(sales):
    result = sales.aggregate(
        [
            {"$sort": {"amount": -1}},
            {"$skip": 1},
            {"$limit": 2},
        ]
    )
    assert [row["amount"] for row in result] == [30, 25]


def test_project(sales):
    result = sales.aggregate(
        [
            {"$match": {"region": "west"}},
            {"$project": {"amount": 1}},
        ]
    )
    assert result == [{"amount": 100}]


def test_group_ignores_non_numeric_in_sum():
    store = DocumentStore()
    collection = store["c"]
    collection.insert_many(
        [{"g": 1, "v": 5}, {"g": 1, "v": "oops"}, {"g": 1}]
    )
    result = collection.aggregate(
        [{"$group": {"_id": "$g", "total": {"$sum": "$v"},
                     "mean": {"$avg": "$v"}}}]
    )
    assert result[0]["total"] == 5
    assert result[0]["mean"] == pytest.approx(5.0)


def test_avg_of_empty_group_is_none():
    store = DocumentStore()
    collection = store["c"]
    collection.insert_one({"g": 1})
    result = collection.aggregate(
        [{"$group": {"_id": "$g", "mean": {"$avg": "$missing"}}}]
    )
    assert result[0]["mean"] is None


def test_invalid_stages_raise(sales):
    with pytest.raises(QueryError):
        sales.aggregate([{"$teleport": {}}])
    with pytest.raises(QueryError):
        sales.aggregate([{"$group": {"total": {"$sum": "$amount"}}}])
    with pytest.raises(QueryError):
        sales.aggregate(
            [{"$group": {"_id": None, "x": {"$median": "$amount"}}}]
        )
    with pytest.raises(QueryError):
        sales.aggregate([{"$match": {}, "$limit": 1}])


def test_aggregate_does_not_mutate_store(sales):
    sales.aggregate([{"$project": {"region": 1}}])
    assert sales.find_one({"region": "west"})["amount"] == 100


def test_kdb_statistics():
    from repro.core import KnowledgeItem
    from repro.kdb import KnowledgeBase

    kdb = KnowledgeBase()
    for i in range(4):
        item = KnowledgeItem(
            kind="cluster" if i % 2 else "itemset",
            end_goal="g",
            title=f"i{i}",
        )
        item.score = i / 4
        kdb.store_item(item)
        kdb.record_feedback(item, "u", "high" if i >= 2 else "low")
    stats = kdb.statistics()
    kinds = {row["_id"]: row for row in stats["items_by_kind"]}
    assert kinds["cluster"]["count"] == 2
    assert kinds["itemset"]["count"] == 2
    degrees = {row["_id"]: row["count"] for row in
               stats["feedback_by_degree"]}
    assert degrees == {"high": 2, "low": 2}
