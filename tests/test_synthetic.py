"""Tests for the calibrated synthetic generator."""

import numpy as np
import pytest

from repro.data import (
    DiabeticExamLogGenerator,
    GeneratorConfig,
    PatientProfile,
    profile_labels,
    small_dataset,
)
from repro.data.synthetic import banded_popularity, default_profiles
from repro.exceptions import DataError


def test_small_dataset_shape(small_log):
    summary = small_log.summary()
    assert summary["n_patients"] == 300
    assert summary["n_exam_types"] == 40
    # Poisson totals: within 15% of the target.
    assert abs(summary["n_records"] - 4500) / 4500 < 0.15


def test_every_patient_has_a_record(small_log):
    assert small_log.n_patients == 300


def test_determinism_same_seed():
    a = small_dataset(seed=5)
    b = small_dataset(seed=5)
    assert a.records == b.records


def test_different_seed_differs():
    a = small_dataset(seed=5)
    b = small_dataset(seed=6)
    assert a.records != b.records


def test_ages_in_paper_range(small_log):
    ages = small_log.ages()
    assert min(ages) >= 4
    assert max(ages) <= 95
    # Predominantly elderly type-2 population.
    assert np.median(ages) > 50


def test_days_within_one_year(small_log):
    assert max(record.day for record in small_log.records) < 365


def test_profile_labels_cover_all_profiles(small_log):
    labels = profile_labels(small_log)
    assert len(labels) == small_log.n_patients
    assert len(set(labels.tolist())) == len(default_profiles())


def test_profile_labels_requires_synthetic(handmade_log):
    with pytest.raises(DataError):
        profile_labels(handmade_log)


def test_sparsity_is_high(small_log):
    matrix, __ = small_log.count_matrix()
    assert (matrix == 0).mean() > 0.5


def test_coverage_bands(small_log):
    """Top 20% of exam types ~70% of records; top 40% ~85% (paper IV-B)."""
    frequency = np.sort(small_log.exam_frequency())[::-1]
    total = frequency.sum()
    n = len(frequency)
    top20 = frequency[: max(1, round(0.2 * n))].sum() / total
    top40 = frequency[: max(1, round(0.4 * n))].sum() / total
    assert 0.60 < top20 < 0.80
    assert 0.80 < top40 < 0.93
    assert top40 > top20


def test_complication_records_concentrate_on_profile():
    """Cardio exams land almost exclusively on cardio/multi patients."""
    log = small_dataset(seed=4)
    matrix, __ = log.count_matrix()
    names = [
        info.profile for __, info in sorted(log.patients.items())
    ]
    cardio_cols = log.taxonomy.codes_in_category("cardiovascular")
    cardio_rows = [
        i
        for i, name in enumerate(names)
        if name in ("cardiovascular", "multi-complication")
    ]
    other_rows = [
        i
        for i, name in enumerate(names)
        if name not in ("cardiovascular", "multi-complication")
    ]
    cardio_mass = matrix[np.ix_(cardio_rows, cardio_cols)].sum()
    other_mass = matrix[np.ix_(other_rows, cardio_cols)].sum()
    assert cardio_mass > 5 * max(other_mass, 1.0)


def test_profile_shares_must_sum_to_one():
    profiles = default_profiles()
    profiles[0] = PatientProfile(
        "uncomplicated", 0.9, profiles[0].category_boost
    )
    with pytest.raises(DataError):
        GeneratorConfig(profiles=profiles)


def test_config_rejects_bad_sizes():
    with pytest.raises(DataError):
        GeneratorConfig(n_patients=0)
    with pytest.raises(DataError):
        GeneratorConfig(target_records=0)
    with pytest.raises(DataError):
        GeneratorConfig(days=0)


def test_banded_popularity_sums_to_one():
    popularity = banded_popularity(159)
    assert popularity.shape == (159,)
    assert abs(popularity.sum() - 1.0) < 1e-12
    assert (popularity > 0).all()


def test_banded_popularity_band_boundaries():
    popularity = banded_popularity(159)
    head = popularity[:32].sum()
    band = popularity[32:64].sum()
    assert abs(head - 0.70) < 0.02
    assert abs(band - 0.17) < 0.02
    # Every head exam more popular than every band exam, every band exam
    # more popular than every tail exam.
    assert popularity[:32].min() >= popularity[32:64].max() - 1e-12
    assert popularity[32:64].min() >= popularity[64:].max() - 1e-12


def test_banded_popularity_small_n_raises():
    with pytest.raises(DataError):
        banded_popularity(3)


def test_generator_respects_custom_size():
    log = small_dataset(
        n_patients=50, n_exam_types=25, target_records=500, seed=1
    )
    assert log.n_patients == 50
    assert log.n_exam_types == 25


def test_boost_for_defaults_to_one():
    profile = PatientProfile("x", 1.0, {"routine": 2.0})
    assert profile.boost_for("routine") == 2.0
    assert profile.boost_for("renal") == 1.0
