"""Tests for the content-addressed analysis cache."""

import numpy as np
import pytest

from repro.core.cache import (
    CACHE_COLLECTION,
    AnalysisCache,
    fingerprint_array,
    fingerprint_log,
    fingerprint_params,
    fingerprint_transactions,
)
from repro.core.optimizer import KMeansOptimizer
from repro.core.partial import HorizontalPartialMiner
from repro.data.synthetic import small_dataset
from repro.kdb.documentstore import DocumentStore


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------
def test_fingerprint_array_content_addressed():
    a = np.arange(12, dtype=np.float64).reshape(3, 4)
    assert fingerprint_array(a) == fingerprint_array(a.copy())
    mutated = a.copy()
    mutated[1, 2] += 1e-9
    assert fingerprint_array(a) != fingerprint_array(mutated)


def test_fingerprint_array_shape_and_dtype_matter():
    a = np.arange(12, dtype=np.float64)
    assert fingerprint_array(a) != fingerprint_array(a.reshape(3, 4))
    assert fingerprint_array(a) != fingerprint_array(a.astype(np.float32))


def test_fingerprint_params_key_order_independent():
    assert fingerprint_params({"a": 1, "b": [2, 3]}) == fingerprint_params(
        {"b": [2, 3], "a": 1}
    )
    assert fingerprint_params({"a": 1}) != fingerprint_params({"a": 2})


def test_fingerprint_transactions_sensitive_to_content_and_order():
    base = [["a", "b"], ["c"]]
    assert fingerprint_transactions(base) == fingerprint_transactions(
        [["a", "b"], ["c"]]
    )
    assert fingerprint_transactions(base) != fingerprint_transactions(
        [["c"], ["a", "b"]]
    )
    # The separators make ["ab"] distinct from ["a", "b"].
    assert fingerprint_transactions([["ab"]]) != fingerprint_transactions(
        [["a", "b"]]
    )


def test_fingerprint_log_changes_when_records_change():
    log = small_dataset(n_patients=20, seed=1)
    again = small_dataset(n_patients=20, seed=1)
    assert fingerprint_log(log) == fingerprint_log(again)
    other = small_dataset(n_patients=21, seed=1)
    assert fingerprint_log(log) != fingerprint_log(other)


# ----------------------------------------------------------------------
# cache behaviour
# ----------------------------------------------------------------------
def test_cache_miss_put_hit_roundtrip():
    cache = AnalysisCache()
    assert cache.get("ds", "algo", {"k": 3}) is None
    cache.put("ds", "algo", {"k": 3}, {"labels": [0, 1, 0]})
    assert cache.get("ds", "algo", {"k": 3}) == {"labels": [0, 1, 0]}
    assert cache.stats() == {
        "hits": 1,
        "misses": 1,
        "stores": 1,
        "corrupt": 0,
        "cert_misses": 0,
        "entries": 1,
    }


def test_cache_distinguishes_all_key_parts():
    cache = AnalysisCache()
    cache.put("ds1", "algo", {"k": 3}, "one")
    assert cache.get("ds2", "algo", {"k": 3}) is None
    assert cache.get("ds1", "other", {"k": 3}) is None
    assert cache.get("ds1", "algo", {"k": 4}) is None
    assert cache.get("ds1", "algo", {"k": 3}) == "one"


def test_cache_put_is_idempotent():
    cache = AnalysisCache()
    key = cache.put("ds", "algo", {}, "first")
    assert cache.put("ds", "algo", {}, "second") == key
    assert cache.get("ds", "algo", {}) == "first"
    assert len(cache) == 1


def test_cache_payloads_are_isolated_copies():
    cache = AnalysisCache()
    payload = {"values": [1, 2]}
    cache.put("ds", "algo", {}, payload)
    payload["values"].append(3)  # caller mutation must not leak in
    assert cache.get("ds", "algo", {}) == {"values": [1, 2]}
    cache.get("ds", "algo", {})["values"].append(4)  # nor out
    assert cache.get("ds", "algo", {}) == {"values": [1, 2]}


def test_cache_detects_tampered_payload_via_crc():
    cache = AnalysisCache()
    key = cache.put("ds", "algo", {"k": 3}, {"labels": [0, 1, 0]})
    # bit-rot in the backing store: payload changes, checksum doesn't
    cache.collection.update_one(
        {"key": key}, {"$set": {"payload": {"labels": [9, 9, 9]}}}
    )
    assert cache.get("ds", "algo", {"k": 3}) is None
    assert cache.stats()["corrupt"] == 1
    assert len(cache) == 0  # the damaged entry was evicted
    # the recomputed payload stores cleanly over the damage
    cache.put("ds", "algo", {"k": 3}, {"labels": [0, 1, 0]})
    assert cache.get("ds", "algo", {"k": 3}) == {"labels": [0, 1, 0]}


def test_cache_precrc_entries_still_hit():
    cache = AnalysisCache()
    # an entry written before payload checksums existed has no "crc"
    cache.collection.insert_one(
        {
            "key": AnalysisCache.key("ds", "algo", {}),
            "dataset": "ds",
            "algorithm": "algo",
            "params": "{}",
            "payload": "legacy",
        }
    )
    assert cache.get("ds", "algo", {}) == "legacy"
    assert cache.stats()["corrupt"] == 0


def test_cache_memoize_computes_once():
    cache = AnalysisCache()
    calls = []

    def compute():
        calls.append(1)
        return {"answer": 42}

    assert cache.memoize("ds", "algo", {}, compute) == {"answer": 42}
    assert cache.memoize("ds", "algo", {}, compute) == {"answer": 42}
    assert len(calls) == 1


def test_cache_invalidate_dataset_scoped():
    cache = AnalysisCache()
    cache.put("ds1", "algo", {"k": 1}, "a")
    cache.put("ds1", "algo", {"k": 2}, "b")
    cache.put("ds2", "algo", {"k": 1}, "c")
    assert cache.invalidate_dataset("ds1") == 2
    assert cache.get("ds1", "algo", {"k": 1}) is None
    assert cache.get("ds2", "algo", {"k": 1}) == "c"


def test_cache_dataset_mutation_invalidates_implicitly():
    cache = AnalysisCache()
    data = np.arange(20, dtype=np.float64).reshape(5, 4)
    cache.put(fingerprint_array(data), "mean", {}, float(data.mean()))
    mutated = data.copy()
    mutated[0, 0] = 99.0
    assert cache.get(fingerprint_array(mutated), "mean", {}) is None
    assert cache.get(fingerprint_array(data), "mean", {}) is not None


def test_cache_clear():
    cache = AnalysisCache()
    cache.put("ds", "algo", {}, 1)
    cache.clear()
    assert len(cache) == 0
    assert cache.get("ds", "algo", {}) is None


def test_cache_lives_inside_a_document_store():
    store = DocumentStore()
    cache = AnalysisCache(store.collection(CACHE_COLLECTION))
    cache.put("ds", "algo", {}, {"x": 1})
    documents = store[CACHE_COLLECTION].find({"dataset": "ds"}).to_list()
    assert len(documents) == 1
    assert documents[0]["payload"] == {"x": 1}


def test_cache_persists_with_the_knowledge_base(tmp_path):
    from repro.kdb.kdb import KnowledgeBase

    kdb = KnowledgeBase()
    kdb.analysis_cache().put("ds", "algo", {"k": 2}, [1, 0, 1])
    kdb.save(tmp_path / "kdb")
    reloaded = KnowledgeBase.load(tmp_path / "kdb")
    assert reloaded.analysis_cache().get("ds", "algo", {"k": 2}) == [1, 0, 1]


# ----------------------------------------------------------------------
# cache integration with the sweep machinery
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def tiny_matrix():
    rng = np.random.default_rng(5)
    return np.vstack(
        [
            rng.normal(0.0, 0.3, size=(30, 4)),
            rng.normal(3.0, 0.3, size=(30, 4)),
        ]
    )


def test_optimizer_reuses_cached_rows(tiny_matrix):
    cache = AnalysisCache()
    first = KMeansOptimizer(
        k_values=(2, 3), n_folds=2, seed=0, cache=cache
    ).optimize(tiny_matrix)
    assert cache.stats()["misses"] == 2
    assert cache.stats()["entries"] == 2

    second = KMeansOptimizer(
        k_values=(2, 3), n_folds=2, seed=0, cache=cache
    ).optimize(tiny_matrix)
    assert cache.stats()["hits"] == 2
    assert second.best_k == first.best_k
    for left, right in zip(first.rows, second.rows):
        assert left.k == right.k
        assert left.sse == pytest.approx(right.sse, rel=1e-12)
        np.testing.assert_array_equal(left.labels, right.labels)
        np.testing.assert_allclose(left.centers, right.centers)


def test_optimizer_cache_extends_to_new_k_only(tiny_matrix):
    cache = AnalysisCache()
    KMeansOptimizer(
        k_values=(2,), n_folds=2, seed=0, cache=cache
    ).optimize(tiny_matrix)
    KMeansOptimizer(
        k_values=(2, 3), n_folds=2, seed=0, cache=cache
    ).optimize(tiny_matrix)
    # Second sweep recomputed only the new K=3 cell.
    assert cache.stats()["entries"] == 2
    assert cache.stats()["hits"] == 1


def test_partial_miner_with_cache_matches_without():
    log = small_dataset(n_patients=40, seed=2)
    plain = HorizontalPartialMiner(
        fractions=(0.5, 1.0), k_values=(3,), seed=0
    ).mine(log)
    cache = AnalysisCache()
    cached_miner = HorizontalPartialMiner(
        fractions=(0.5, 1.0), k_values=(3,), seed=0, cache=cache
    )
    cold = cached_miner.mine(log)
    warm = cached_miner.mine(log)
    assert cache.stats()["hits"] > 0
    for result in (cold, warm):
        assert result.selected_fraction == plain.selected_fraction
        assert result.selected_codes == plain.selected_codes
