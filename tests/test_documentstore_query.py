"""Tests for the document-store query operators."""

import pytest

from repro.exceptions import QueryError
from repro.kdb.documentstore import DocumentStore


@pytest.fixture()
def items():
    store = DocumentStore()
    collection = store["items"]
    collection.insert_many(
        [
            {"k": "a", "v": 1, "tags": ["x", "y"], "meta": {"q": 3}},
            {"k": "b", "v": 5, "tags": ["y"], "meta": {"q": 7}},
            {"k": "c", "v": 10, "tags": [], "meta": {}},
            {"k": "d", "v": None, "tags": ["x"], "note": "rare item"},
            {"k": "e", "events": [{"t": 1, "ok": True}, {"t": 2, "ok": False}]},
        ]
    )
    return collection


def count(collection, query):
    return collection.count_documents(query)


def test_eq_ne(items):
    assert count(items, {"v": {"$eq": 5}}) == 1
    assert count(items, {"k": {"$ne": "a"}}) == 4


def test_comparison_operators(items):
    assert count(items, {"v": {"$gt": 1}}) == 2
    assert count(items, {"v": {"$gte": 1}}) == 3
    assert count(items, {"v": {"$lt": 5}}) == 1
    assert count(items, {"v": {"$lte": 5}}) == 2


def test_comparisons_ignore_none(items):
    # Document d has v = None: never matches an ordered comparison.
    assert count(items, {"v": {"$gt": -100}}) == 3
    assert count(items, {"v": {"$lt": 100}}) == 3


def test_range_combination(items):
    assert count(items, {"v": {"$gt": 1, "$lt": 10}}) == 1


def test_in_nin(items):
    assert count(items, {"k": {"$in": ["a", "c", "zzz"]}}) == 2
    assert count(items, {"k": {"$nin": ["a", "c"]}}) == 3


def test_in_requires_list(items):
    with pytest.raises(QueryError):
        count(items, {"k": {"$in": "a"}})


def test_in_matches_array_membership(items):
    assert count(items, {"tags": {"$in": ["x"]}}) == 2


def test_exists(items):
    assert count(items, {"note": {"$exists": True}}) == 1
    assert count(items, {"note": {"$exists": False}}) == 4
    assert count(items, {"v": {"$exists": True}}) == 4


def test_not(items):
    assert count(items, {"v": {"$not": {"$gt": 1}}}) == 3


def test_not_requires_document(items):
    with pytest.raises(QueryError):
        count(items, {"v": {"$not": 5}})


def test_regex(items):
    assert count(items, {"note": {"$regex": "^rare"}}) == 1
    assert count(items, {"k": {"$regex": "[ab]"}}) == 2


def test_size(items):
    assert count(items, {"tags": {"$size": 2}}) == 1
    assert count(items, {"tags": {"$size": 0}}) == 1


def test_all(items):
    assert count(items, {"tags": {"$all": ["x", "y"]}}) == 1
    assert count(items, {"tags": {"$all": ["y"]}}) == 2


def test_elem_match(items):
    assert (
        count(items, {"events": {"$elemMatch": {"t": {"$gt": 1}, "ok": False}}})
        == 1
    )
    assert (
        count(items, {"events": {"$elemMatch": {"t": {"$gt": 1}, "ok": True}}})
        == 0
    )


def test_elem_match_requires_document(items):
    with pytest.raises(QueryError):
        count(items, {"events": {"$elemMatch": 5}})


def test_dot_path_into_dict(items):
    assert count(items, {"meta.q": {"$gte": 5}}) == 1
    assert count(items, {"meta.q": 3}) == 1


def test_dot_path_into_array_of_dicts(items):
    assert count(items, {"events.t": 2}) == 1
    assert count(items, {"events.ok": True}) == 1


def test_dot_path_numeric_index(items):
    assert count(items, {"tags.0": "x"}) == 2


def test_and(items):
    query = {"$and": [{"v": {"$gt": 0}}, {"tags": "y"}]}
    assert count(items, query) == 2


def test_or(items):
    query = {"$or": [{"k": "a"}, {"k": "c"}]}
    assert count(items, query) == 2


def test_nor(items):
    query = {"$nor": [{"k": "a"}, {"v": {"$gt": 1}}]}
    assert count(items, query) == 2  # d and e


def test_nested_logical_operators(items):
    query = {
        "$or": [
            {"$and": [{"v": {"$gte": 5}}, {"tags": "y"}]},
            {"note": {"$exists": True}},
        ]
    }
    assert count(items, query) == 2  # b and d


def test_logical_operator_requires_list(items):
    with pytest.raises(QueryError):
        count(items, {"$and": {}})
    with pytest.raises(QueryError):
        count(items, {"$or": []})


def test_unknown_top_level_operator(items):
    with pytest.raises(QueryError):
        count(items, {"$frobnicate": []})


def test_unknown_field_operator(items):
    with pytest.raises(QueryError):
        count(items, {"v": {"$near": 3}})


def test_query_must_be_dict(items):
    with pytest.raises(QueryError):
        items.find(["not", "a", "query"])


def test_empty_query_matches_all(items):
    assert count(items, {}) == 5
