"""Tests for the knowledge-item model and interestingness scoring."""

import pytest

from repro.core import (
    KnowledgeItem,
    degree_from_score,
    degree_rank,
    score_item,
    score_items,
)
from repro.core.interestingness import (
    score_cluster_item,
    score_cluster_set,
    score_itemset,
    score_outlier_set,
    score_rule,
)
from repro.exceptions import EngineError


def make_item(kind="cluster", **quality):
    return KnowledgeItem(
        kind=kind, end_goal="patient-segmentation", title="t", quality=quality
    )


def test_kind_validation():
    with pytest.raises(EngineError):
        KnowledgeItem(kind="hunch", end_goal="g", title="t")


def test_degree_validation():
    with pytest.raises(EngineError):
        KnowledgeItem(kind="cluster", end_goal="g", title="t", degree="meh")


def test_document_roundtrip():
    item = make_item(cohesion=0.8, size_share=0.2)
    item.score = 0.7
    item.degree = "high"
    item.item_id = 42
    twin = KnowledgeItem.from_document(item.to_document())
    assert twin.kind == item.kind
    assert twin.quality == item.quality
    assert twin.score == item.score
    assert twin.degree == "high"
    assert twin.item_id == 42


def test_document_without_id_has_no_id_key():
    assert "_id" not in make_item().to_document()


def test_describe_mentions_kind_and_degree():
    item = make_item()
    item.degree = "medium"
    text = item.describe()
    assert "[cluster]" in text and "medium" in text


def test_feature_vector_has_kind_indicators():
    features = make_item(kind="itemset", support=0.4).feature_vector_fields()
    assert features["kind_itemset"] == 1.0
    assert features["kind_cluster"] == 0.0
    assert features["support"] == 0.4


# ----------------------------------------------------------------------
# scoring
# ----------------------------------------------------------------------
def test_cluster_score_prefers_cohesive_distinct():
    good = score_cluster_item(
        {"cohesion": 0.9, "size_share": 0.2, "distinctiveness": 0.8}
    )
    bad = score_cluster_item(
        {"cohesion": 0.2, "size_share": 0.2, "distinctiveness": 0.1}
    )
    assert good > bad
    assert 0.0 <= bad <= good <= 1.0


def test_cluster_score_penalises_extreme_sizes():
    mid = score_cluster_item(
        {"cohesion": 0.5, "size_share": 0.2, "distinctiveness": 0.5}
    )
    tiny = score_cluster_item(
        {"cohesion": 0.5, "size_share": 0.001, "distinctiveness": 0.5}
    )
    huge = score_cluster_item(
        {"cohesion": 0.5, "size_share": 0.95, "distinctiveness": 0.5}
    )
    assert mid > tiny
    assert mid > huge


def test_cluster_set_score_uses_table1_metrics():
    strong = score_cluster_set(
        {
            "overall_similarity": 0.6,
            "accuracy": 0.95,
            "avg_precision": 0.93,
            "avg_recall": 0.93,
        }
    )
    weak = score_cluster_set(
        {
            "overall_similarity": 0.3,
            "accuracy": 0.5,
            "avg_precision": 0.4,
            "avg_recall": 0.3,
        }
    )
    assert strong > weak


def test_itemset_score_support_sweet_spot():
    rare = score_itemset({"support": 0.01, "length": 3})
    mid = score_itemset({"support": 0.3, "length": 3})
    universal = score_itemset({"support": 0.99, "length": 3})
    assert mid > rare
    assert mid > universal


def test_itemset_score_rewards_length():
    short = score_itemset({"support": 0.3, "length": 2})
    long = score_itemset({"support": 0.3, "length": 5})
    assert long > short


def test_rule_score_monotone_in_confidence_and_lift():
    low = score_rule({"confidence": 0.5, "lift": 1.0, "support": 0.2})
    high = score_rule({"confidence": 0.9, "lift": 3.0, "support": 0.2})
    assert high > low


def test_rule_score_independence_lift_gives_no_credit():
    independent = score_rule(
        {"confidence": 0.0, "lift": 1.0, "support": 0.0}
    )
    assert independent == pytest.approx(0.0, abs=1e-9)


def test_outlier_score_shape():
    none = score_outlier_set({"noise_ratio": 0.0})
    few = score_outlier_set({"noise_ratio": 0.05})
    half = score_outlier_set({"noise_ratio": 0.5})
    assert none == 0.0
    assert few > half


def test_score_item_dispatch_and_attach():
    items = [
        make_item("cluster", cohesion=0.9, size_share=0.2,
                  distinctiveness=0.7),
        make_item("itemset", support=0.3, length=3),
    ]
    scored = score_items(items)
    assert all(0.0 <= item.score <= 1.0 for item in scored)
    assert scored[0].score == score_item(scored[0])


def test_degree_from_score_thresholds():
    assert degree_from_score(0.9) == "high"
    assert degree_from_score(0.5) == "medium"
    assert degree_from_score(0.1) == "low"


def test_degree_rank_ordering():
    assert degree_rank("high") < degree_rank("medium") < degree_rank("low")
    with pytest.raises(EngineError):
        degree_rank("great")


def test_cluster_score_absent_share_not_treated_as_zero():
    """A missing size_share means 'not measured', not 'empty cluster'."""
    absent = score_cluster_item({"cohesion": 0.8, "distinctiveness": 0.6})
    zero = score_cluster_item(
        {"cohesion": 0.8, "distinctiveness": 0.6, "size_share": 0.0}
    )
    assert absent > zero
    # Absent: renormalised over the measured components only.
    assert absent == pytest.approx((0.5 * 0.8 + 0.3 * 0.6) / 0.8)
    # Zero: a vanishing cluster earns no size credit.
    assert zero == pytest.approx(0.5 * 0.8 + 0.3 * 0.6)


def test_degree_from_score_exact_cutoffs():
    assert degree_from_score(0.65) == "high"  # boundary is inclusive
    assert degree_from_score(0.65 - 1e-9) == "medium"
    assert degree_from_score(0.4) == "medium"  # boundary is inclusive
    assert degree_from_score(0.4 - 1e-9) == "low"
    assert degree_from_score(1.0) == "high"
    assert degree_from_score(0.0) == "low"
