"""Tests for the Vector Space Model builder and weighting schemes."""

import numpy as np
import pytest

from repro.exceptions import PreprocessError
from repro.preprocess import VSMBuilder, apply_weighting


def test_count_weighting_matches_count_matrix(handmade_log):
    vsm = VSMBuilder("count").build(handmade_log)
    matrix, ids = handmade_log.count_matrix()
    assert np.array_equal(vsm.matrix, matrix)
    assert vsm.patient_ids == ids
    assert vsm.exam_codes == list(range(8))


def test_binary_weighting(handmade_log):
    vsm = VSMBuilder("binary").build(handmade_log)
    assert set(np.unique(vsm.matrix)) <= {0.0, 1.0}
    # Patient 1 (row 0): exams 0 and 1 present.
    assert vsm.matrix[0, 0] == 1.0 and vsm.matrix[0, 1] == 1.0
    assert vsm.matrix[0, 2] == 0.0


def test_log_weighting_values(handmade_log):
    vsm = VSMBuilder("log").build(handmade_log)
    # count 2 -> 1 + ln 2; count 1 -> 1; count 0 -> 0.
    assert vsm.matrix[0, 0] == pytest.approx(1 + np.log(2))
    assert vsm.matrix[0, 1] == pytest.approx(1.0)
    assert vsm.matrix[1, 0] == 0.0


def test_tfidf_downweights_common_exams():
    counts = np.array(
        [
            [1.0, 1.0],
            [1.0, 0.0],
            [1.0, 0.0],
            [1.0, 0.0],
        ]
    )
    weighted = apply_weighting(counts, "tfidf")
    # Column 0 appears in every row -> lower idf than column 1.
    assert weighted[0, 0] < weighted[0, 1]


def test_tfidf_zero_counts_stay_zero(handmade_log):
    vsm = VSMBuilder("tfidf").build(handmade_log)
    counts, __ = handmade_log.count_matrix()
    assert ((vsm.matrix == 0) == (counts == 0)).all()


def test_exam_subset_selects_columns(handmade_log):
    vsm = VSMBuilder("count", exam_codes=[2, 0]).build(handmade_log)
    assert vsm.exam_codes == [2, 0]
    assert vsm.matrix.shape == (3, 2)
    # column 0 is exam 2: patient 3 (row 2) has 3.
    assert vsm.matrix[2, 0] == 3.0
    assert vsm.matrix[0, 1] == 2.0


def test_exam_subset_out_of_range_raises(handmade_log):
    with pytest.raises(PreprocessError):
        VSMBuilder("count", exam_codes=[99]).build(handmade_log)


def test_unknown_weighting_raises():
    with pytest.raises(PreprocessError):
        VSMBuilder("bm25")
    with pytest.raises(PreprocessError):
        apply_weighting(np.ones((2, 2)), "bm25")


def test_negative_counts_rejected():
    with pytest.raises(PreprocessError):
        apply_weighting(np.array([[-1.0]]), "count")


def test_column_and_row_lookup(handmade_log):
    vsm = VSMBuilder("count", exam_codes=[2, 0]).build(handmade_log)
    assert vsm.column_of(0) == 1
    assert vsm.row_of(3) == 2
    with pytest.raises(PreprocessError):
        vsm.column_of(5)
    with pytest.raises(PreprocessError):
        vsm.row_of(42)


def test_sparsity(handmade_log):
    vsm = VSMBuilder("count").build(handmade_log)
    # 4 nonzero cells out of 24.
    assert vsm.sparsity() == pytest.approx(20 / 24)


def test_weighting_preserves_shape(small_log):
    for weighting in ("count", "binary", "log", "tfidf"):
        vsm = VSMBuilder(weighting).build(small_log)
        assert vsm.shape == (small_log.n_patients, small_log.n_exam_types)
        assert (vsm.matrix >= 0).all()
