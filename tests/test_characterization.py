"""Tests for dataset characterisation (statistical descriptors)."""

import numpy as np
import pytest

from repro.exceptions import PreprocessError
from repro.preprocess import (
    characterize_log,
    characterize_matrix,
    feature_profiles,
)


def test_basic_dimensions(small_log):
    profile = characterize_log(small_log)
    assert profile.n_rows == small_log.n_patients
    assert profile.n_features == small_log.n_exam_types
    assert profile.density == pytest.approx(1.0 - profile.sparsity)


def test_sparsity_hand_computed():
    matrix = np.array([[1.0, 0.0], [0.0, 0.0]])
    profile = characterize_matrix(matrix)
    assert profile.sparsity == pytest.approx(0.75)
    assert profile.mean_row_nonzeros == pytest.approx(0.5)


def test_uniform_distribution_extremes():
    matrix = np.ones((10, 8))
    profile = characterize_matrix(matrix)
    assert profile.gini == pytest.approx(0.0, abs=1e-9)
    assert profile.normalized_entropy == pytest.approx(1.0)
    assert profile.hhi == pytest.approx(1 / 8)
    assert not profile.is_skewed
    assert not profile.is_sparse


def test_concentrated_distribution_extremes():
    matrix = np.zeros((10, 8))
    matrix[:, 0] = 100.0
    profile = characterize_matrix(matrix)
    assert profile.gini > 0.8
    assert profile.hhi == pytest.approx(1.0)
    assert profile.normalized_entropy == pytest.approx(0.0)
    assert profile.is_skewed


def test_top_share_curve_monotone(small_log):
    profile = characterize_log(small_log)
    shares = [profile.top_share[key] for key in ("10", "20", "40", "60", "80")]
    assert all(a <= b + 1e-12 for a, b in zip(shares, shares[1:]))
    assert shares[-1] <= 1.0


def test_paper_like_log_is_sparse_and_skewed(small_log):
    profile = characterize_log(small_log)
    assert profile.is_sparse
    assert profile.gini > 0.4
    assert profile.top_share["20"] > 0.55


def test_skewness_sign():
    rng = np.random.default_rng(0)
    right_skewed = rng.exponential(size=(50, 4)) + 0.01
    profile = characterize_matrix(right_skewed)
    assert profile.skewness > 0


def test_to_document_roundtrippable(small_log):
    import json

    profile = characterize_log(small_log)
    document = profile.to_document()
    assert json.loads(json.dumps(document)) == document
    assert document["n_rows"] == small_log.n_patients


def test_invalid_inputs_raise():
    with pytest.raises(PreprocessError):
        characterize_matrix(np.zeros(5))
    with pytest.raises(PreprocessError):
        characterize_matrix(np.empty((0, 0)))
    with pytest.raises(PreprocessError):
        characterize_matrix(np.array([[-1.0]]))


def test_feature_profiles_sorted_by_frequency(small_log):
    profiles = feature_profiles(small_log)
    assert len(profiles) == small_log.n_exam_types
    frequencies = [p.frequency for p in profiles]
    assert frequencies == sorted(frequencies, reverse=True)
    top = profiles[0]
    assert 0.0 <= top.patient_coverage <= 1.0
    assert top.maximum >= top.mean


def test_feature_profiles_match_matrix(handmade_log):
    profiles = feature_profiles(handmade_log)
    by_index = {p.index: p for p in profiles}
    assert by_index[2].frequency == 3
    assert by_index[0].frequency == 2
    assert by_index[2].patient_coverage == pytest.approx(1 / 3)
