"""Edge cases across modules: empty, singleton and degenerate inputs."""

import numpy as np
import pytest

from repro.data import ExamLog, ExamRecord, PatientInfo
from repro.data.taxonomy import build_default_taxonomy
from repro.exceptions import MiningError, PreprocessError
from repro.kdb.documentstore import DocumentStore
from repro.mining import (
    DBSCAN,
    DecisionTreeClassifier,
    KMeans,
    fpgrowth,
    overall_similarity,
    sse,
)
from repro.preprocess import VSMBuilder, characterize_matrix


# ----------------------------------------------------------------------
# empty / singleton logs
# ----------------------------------------------------------------------
def test_empty_log_summary():
    log = ExamLog([], taxonomy=build_default_taxonomy(10))
    summary = log.summary()
    assert summary["n_patients"] == 0
    assert summary["n_records"] == 0
    assert summary["days_spanned"] == 0
    assert summary["age_min"] is None


def test_empty_log_frequency_and_transactions():
    log = ExamLog([], taxonomy=build_default_taxonomy(10))
    assert log.exam_frequency().sum() == 0
    assert log.transactions() == []
    assert log.exam_codes_by_frequency() == list(range(10))


def test_single_record_log():
    log = ExamLog(
        [ExamRecord(0, 0, 0)],
        taxonomy=build_default_taxonomy(10),
        patients=[PatientInfo(0, 50)],
    )
    matrix, ids = log.count_matrix()
    assert matrix.shape == (1, 10)
    assert matrix[0, 0] == 1.0
    vsm = VSMBuilder("tfidf").build(log)
    assert vsm.matrix.shape == (1, 10)


def test_restrict_to_nothing():
    log = ExamLog(
        [ExamRecord(0, 0, 0)], taxonomy=build_default_taxonomy(10)
    )
    empty = log.restrict_patients([])
    assert empty.n_records == 0


# ----------------------------------------------------------------------
# degenerate matrices
# ----------------------------------------------------------------------
def test_kmeans_on_identical_points():
    data = np.ones((20, 3))
    model = KMeans(2, seed=0, n_init=1).fit(data)
    assert model.inertia_ == pytest.approx(0.0)


def test_kmeans_single_feature():
    data = np.arange(12, dtype=float).reshape(-1, 1)
    model = KMeans(2, seed=0).fit(data)
    # A 1-D split separates low from high values.
    assert model.labels_[0] != model.labels_[-1]


def test_overall_similarity_single_point():
    value = overall_similarity(np.array([[3.0, 4.0]]), np.array([0]))
    assert value == pytest.approx(1.0)


def test_overall_similarity_all_zero_rows():
    value = overall_similarity(np.zeros((4, 3)), np.zeros(4, dtype=int))
    assert value == pytest.approx(0.0)


def test_sse_single_cluster_single_point():
    assert sse(np.array([[1.0, 2.0]]), np.array([0])) == 0.0


def test_characterize_single_cell():
    profile = characterize_matrix(np.array([[5.0]]))
    assert profile.sparsity == 0.0
    assert profile.hhi == pytest.approx(1.0)


def test_tree_on_single_sample():
    tree = DecisionTreeClassifier().fit(np.array([[1.0, 2.0]]), [7])
    assert tree.predict(np.array([[9.0, 9.0]]))[0] == 7


def test_dbscan_single_point():
    model = DBSCAN(eps=1.0, min_samples=1).fit(np.array([[0.0, 0.0]]))
    assert model.labels_.tolist() == [0]
    model2 = DBSCAN(eps=1.0, min_samples=2).fit(np.array([[0.0, 0.0]]))
    assert model2.labels_.tolist() == [-1]


# ----------------------------------------------------------------------
# store edge cases
# ----------------------------------------------------------------------
def test_empty_collection_queries():
    collection = DocumentStore()["c"]
    assert collection.find().to_list() == []
    assert collection.find_one({}) is None
    assert collection.count_documents() == 0
    assert collection.distinct("x") == []
    assert collection.delete_many() == 0
    assert collection.aggregate([{"$group": {"_id": "$x"}}]) == []


def test_cursor_pagination_beyond_end():
    collection = DocumentStore()["c"]
    collection.insert_many([{"v": i} for i in range(3)])
    assert collection.find().skip(10).to_list() == []
    assert len(collection.find().limit(100)) == 3
    assert collection.find().limit(0).to_list() == []


def test_update_on_empty_store():
    collection = DocumentStore()["c"]
    assert collection.update_many({}, {"$set": {"x": 1}}) == 0


def test_save_empty_store(tmp_path):
    store = DocumentStore()
    store["empty"]
    store.save(tmp_path / "db")
    loaded = DocumentStore.load(tmp_path / "db")
    assert loaded.collection_names() == ["empty"]
    assert len(loaded["empty"]) == 0


# ----------------------------------------------------------------------
# pattern mining edge cases
# ----------------------------------------------------------------------
def test_fpgrowth_all_empty_transactions():
    itemsets = fpgrowth([[], [], []], 0.5)
    assert itemsets == []


def test_fpgrowth_single_item_universe():
    itemsets = fpgrowth([["a"]] * 5, 0.5)
    assert len(itemsets) == 1
    assert itemsets[0].support == 1.0


def test_vsm_empty_subset_raises(handmade_log):
    with pytest.raises(PreprocessError):
        VSMBuilder("count", exam_codes=[-1]).build(handmade_log)


def test_engine_rejects_microscopic_cohort():
    """A 5-patient log passes no clustering feasibility rule."""
    from repro.core import ADAHealth
    from repro.data import small_dataset

    log = small_dataset(
        n_patients=5, n_exam_types=20, target_records=60, seed=0
    )
    engine = ADAHealth(seed=0)
    result = engine.analyze(log)
    ran = {run.goal.name for run in result.runs}
    assert "patient-segmentation" not in ran
    assert "outlier-screening" not in ran
