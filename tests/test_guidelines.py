"""Tests for guideline-compliance assessment."""

import pytest

from repro.core.guidelines import (
    ComplianceReport,
    Guideline,
    assess_compliance,
    default_diabetes_guidelines,
    extract_compliance_items,
)
from repro.data import ExamLog, ExamRecord, PatientInfo
from repro.data.taxonomy import METABOLIC, build_default_taxonomy
from repro.exceptions import EngineError


@pytest.fixture()
def guideline_log():
    """Three patients with known compliance against two rules."""
    taxonomy = build_default_taxonomy(40)
    hba1c = taxonomy.by_name("glycated hemoglobin (HbA1c)").code
    visit = taxonomy.by_name("diabetology visit").code
    records = [
        # patient 1: 2x HbA1c + visit -> fully compliant
        ExamRecord(1, 10, hba1c),
        ExamRecord(1, 200, hba1c),
        ExamRecord(1, 30, visit),
        # patient 2: 1x HbA1c + visit -> half compliant
        ExamRecord(2, 50, hba1c),
        ExamRecord(2, 60, visit),
        # patient 3: nothing relevant
        ExamRecord(3, 5, 0),
    ]
    patients = [PatientInfo(i, 60) for i in (1, 2, 3)]
    return ExamLog(records, taxonomy=taxonomy, patients=patients)


@pytest.fixture()
def rules():
    return [
        Guideline(
            name="HbA1c twice",
            exam_name="glycated hemoglobin (HbA1c)",
            min_count=2,
        ),
        Guideline(
            name="annual visit", exam_name="diabetology visit", min_count=1
        ),
    ]


def test_guideline_validation():
    with pytest.raises(EngineError):
        Guideline(name="bad", min_count=1)  # neither exam nor category
    with pytest.raises(EngineError):
        Guideline(
            name="bad", min_count=1, exam_name="x", category="routine"
        )
    with pytest.raises(EngineError):
        Guideline(name="bad", min_count=0, exam_name="x")


def test_compliance_counts(guideline_log, rules):
    report = assess_compliance(guideline_log, rules)
    by_name = {r.guideline.name: r for r in report.results}
    assert by_name["HbA1c twice"].compliant_patients == 1
    assert by_name["annual visit"].compliant_patients == 2
    assert by_name["annual visit"].compliance_rate == pytest.approx(2 / 3)


def test_patient_scores(guideline_log, rules):
    report = assess_compliance(guideline_log, rules)
    assert report.patient_scores[1] == pytest.approx(1.0)
    assert report.patient_scores[2] == pytest.approx(0.5)
    assert report.patient_scores[3] == pytest.approx(0.0)
    assert report.mean_patient_score == pytest.approx(0.5)
    assert report.fully_compliant() == [1]
    assert report.least_compliant(1) == [(3, 0.0)]


def test_category_guideline(guideline_log):
    rule = Guideline(
        name="metabolic panel", category=METABOLIC, min_count=1
    )
    report = assess_compliance(guideline_log, [rule])
    # Patients 1 and 2 have HbA1c (metabolic); patient 3 only exam 0
    # (routine).
    assert report.results[0].compliant_patients == 2


def test_empty_guidelines_raises(guideline_log):
    with pytest.raises(EngineError):
        assess_compliance(guideline_log, [])


def test_default_guidelines_resolve_on_full_taxonomy(tiny_log):
    # tiny_log has 20 exam types; at least the category rules resolve.
    from repro.data import small_dataset

    log = small_dataset(
        n_patients=100, n_exam_types=159, target_records=1500, seed=1
    )
    report = assess_compliance(log)
    assert len(report.results) == len(default_diabetes_guidelines())
    assert all(
        0.0 <= r.compliance_rate <= 1.0 for r in report.results
    )


def test_format_table(guideline_log, rules):
    report = assess_compliance(guideline_log, rules)
    table = report.format_table()
    assert "HbA1c twice" in table
    assert "mean per-patient compliance" in table


def test_extract_items_gap_scoring(guideline_log, rules):
    report = assess_compliance(guideline_log, rules)
    items = extract_compliance_items(report)
    assert len(items) == len(rules) + 1  # + cohort summary
    by_title = {item.title: item for item in items}
    hba1c_item = next(
        item for item in items if "HbA1c twice" in item.title
    )
    visit_item = next(
        item for item in items if "annual visit" in item.title
    )
    # The bigger care gap (HbA1c: 33% compliant) is the more
    # interesting finding.
    assert (
        hba1c_item.quality["coverage"] > visit_item.quality["coverage"]
    )
    summary = items[-1]
    assert "cohort compliance" in summary.title
    assert summary.payload["least_compliant"][0]["patient_id"] == 3


def test_engine_runs_compliance_goal(small_log):
    from repro.core import ADAHealth, EngineConfig

    engine = ADAHealth(
        config=EngineConfig(min_support=0.2), seed=0
    )
    result = engine.analyze(small_log, goals=["guideline-compliance"])
    run = result.run_for("guideline-compliance")
    assert run.items
    assert all(item.kind == "profile" for item in run.items)
    assert run.notes["n_guidelines"] >= 3
