"""Tests for the CART decision tree and the majority baseline."""

import numpy as np
import pytest

from repro.exceptions import MiningError, NotFittedError
from repro.mining import DecisionTreeClassifier, MajorityClassifier
from repro.mining.decision_tree import entropy_impurity, gini_impurity


@pytest.fixture(scope="module")
def xor_data():
    """XOR: requires depth >= 2, impossible for a depth-1 stump."""
    rng = np.random.default_rng(0)
    data = rng.uniform(-1, 1, size=(400, 2))
    labels = ((data[:, 0] > 0) ^ (data[:, 1] > 0)).astype(int)
    return data, labels


def test_perfect_fit_on_separable(blobs):
    data, truth = blobs
    tree = DecisionTreeClassifier().fit(data, truth)
    assert tree.score(data, truth) == 1.0


def test_xor_needs_depth_two(xor_data):
    data, labels = xor_data
    stump = DecisionTreeClassifier(max_depth=1).fit(data, labels)
    deep = DecisionTreeClassifier(max_depth=4).fit(data, labels)
    assert stump.score(data, labels) < 0.75
    assert deep.score(data, labels) > 0.95


def test_entropy_criterion(xor_data):
    data, labels = xor_data
    tree = DecisionTreeClassifier(criterion="entropy", max_depth=4).fit(
        data, labels
    )
    assert tree.score(data, labels) > 0.95


def test_max_depth_respected(xor_data):
    data, labels = xor_data
    for depth in (0, 1, 2, 3):
        tree = DecisionTreeClassifier(max_depth=depth).fit(data, labels)
        assert tree.depth() <= depth


def test_min_samples_leaf_respected(blobs):
    data, truth = blobs
    tree = DecisionTreeClassifier(min_samples_leaf=20).fit(data, truth)

    def leaves(node):
        if node.is_leaf:
            return [node]
        return leaves(node.left) + leaves(node.right)

    assert all(leaf.n_samples >= 20 for leaf in leaves(tree.root_))


def test_predict_proba_rows_sum_to_one(blobs):
    data, truth = blobs
    tree = DecisionTreeClassifier(max_depth=3).fit(data, truth)
    probabilities = tree.predict_proba(data)
    assert probabilities.shape == (data.shape[0], 3)
    assert np.allclose(probabilities.sum(axis=1), 1.0)


def test_string_labels_supported(blobs):
    data, truth = blobs
    names = np.array(["alpha", "beta", "gamma"])[truth]
    tree = DecisionTreeClassifier(max_depth=4).fit(data, names)
    predictions = tree.predict(data)
    assert set(predictions) <= {"alpha", "beta", "gamma"}
    assert (predictions == names).mean() == 1.0


def test_feature_importances_sum_to_one(blobs):
    data, truth = blobs
    tree = DecisionTreeClassifier(max_depth=4).fit(data, truth)
    assert tree.feature_importances_.shape == (data.shape[1],)
    assert tree.feature_importances_.sum() == pytest.approx(1.0)


def test_useless_feature_has_zero_importance():
    rng = np.random.default_rng(3)
    informative = rng.normal(size=(200, 1))
    constant = np.zeros((200, 1))
    data = np.hstack([informative, constant])
    labels = (informative[:, 0] > 0).astype(int)
    tree = DecisionTreeClassifier(max_depth=3).fit(data, labels)
    assert tree.feature_importances_[1] == 0.0


def test_single_class_single_leaf():
    data = np.random.default_rng(0).normal(size=(30, 3))
    labels = np.zeros(30, dtype=int)
    tree = DecisionTreeClassifier().fit(data, labels)
    assert tree.n_leaves() == 1
    assert (tree.predict(data) == 0).all()


def test_export_text_mentions_features(blobs):
    data, truth = blobs
    tree = DecisionTreeClassifier(max_depth=2).fit(data, truth)
    text = tree.export_text(feature_names=[f"f{i}" for i in range(5)])
    assert "if f" in text
    assert "predict" in text


def test_min_impurity_decrease_prunes(xor_data):
    data, labels = xor_data
    tree = DecisionTreeClassifier(
        max_depth=8, min_impurity_decrease=0.49
    ).fit(data, labels)
    # XOR's first split yields ~0 impurity decrease -> no split at all.
    assert tree.n_leaves() == 1


def test_max_features_subsampling(blobs):
    data, truth = blobs
    tree = DecisionTreeClassifier(max_features=2, seed=1).fit(data, truth)
    assert tree.score(data, truth) > 0.9


def test_reduced_error_pruning_shrinks_tree():
    rng = np.random.default_rng(5)
    data = rng.normal(size=(300, 4))
    labels = (data[:, 0] > 0).astype(int)
    noisy = labels.copy()
    flip = rng.random(300) < 0.2
    noisy[flip] = 1 - noisy[flip]
    tree = DecisionTreeClassifier().fit(data[:200], noisy[:200])
    before = tree.n_leaves()
    tree.prune(data[200:], labels[200:])
    assert tree.n_leaves() <= before
    assert tree.score(data[200:], labels[200:]) > 0.7


def test_parameter_validation():
    with pytest.raises(MiningError):
        DecisionTreeClassifier(criterion="chi2")
    with pytest.raises(MiningError):
        DecisionTreeClassifier(max_depth=-1)
    with pytest.raises(MiningError):
        DecisionTreeClassifier(min_samples_split=1)
    with pytest.raises(MiningError):
        DecisionTreeClassifier(min_samples_leaf=0)


def test_unfitted_raises(blobs):
    data, __ = blobs
    tree = DecisionTreeClassifier()
    with pytest.raises(NotFittedError):
        tree.predict(data)
    with pytest.raises(NotFittedError):
        tree.depth()
    with pytest.raises(NotFittedError):
        tree.export_text()


def test_feature_count_mismatch_raises(blobs):
    data, truth = blobs
    tree = DecisionTreeClassifier(max_depth=2).fit(data, truth)
    with pytest.raises(MiningError):
        tree.predict(data[:, :3])


def test_impurity_functions():
    pure = np.array([10.0, 0.0])
    mixed = np.array([5.0, 5.0])
    assert gini_impurity(pure) == 0.0
    assert gini_impurity(mixed) == pytest.approx(0.5)
    assert entropy_impurity(pure) == 0.0
    assert entropy_impurity(mixed) == pytest.approx(np.log(2))
    assert gini_impurity(np.array([0.0, 0.0])) == 0.0


def test_majority_classifier(blobs):
    data, __ = blobs
    labels = np.array([0] * 100 + [1] * 80)
    model = MajorityClassifier().fit(data[:180], labels)
    assert (model.predict(data[:10]) == 0).all()
    with pytest.raises(NotFittedError):
        MajorityClassifier().predict(data)
    with pytest.raises(MiningError):
        MajorityClassifier().fit(data[:0], labels[:0])
