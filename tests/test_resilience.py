"""Chaos suite for the fault-tolerant execution layer.

Everything here is *seeded*: fault schedules come from
``default_rng(seed)`` and backoff jitter from
``default_rng((seed, task_index, attempt))``, so every test asserts
exact recovery behaviour — the acceptance bar is byte-identical
results between a faulty run (with enough retries) and a fault-free
one, on every backend.
"""

import os
import pickle
import time

import numpy as np
import pytest

from repro.cloud import (
    CircuitBreaker,
    FaultInjector,
    ProcessPoolExecutorBackend,
    ResilientExecutor,
    RetryPolicy,
    SerialExecutor,
    SimulatedClusterExecutor,
    ThreadPoolExecutorBackend,
)
from repro.cloud.executor import SweepResult, TaskFailure, TaskSpec
from repro.core import ADAHealth, EngineConfig
from repro.core.cache import AnalysisCache
from repro.exceptions import (
    InjectedFault,
    ReproError,
    TaskTimeoutError,
    WorkerCrashError,
)
from repro.kdb.documentstore import DocumentStore
from repro.obs import Metrics, validate_manifest
from repro.obs.manifest import MANIFEST_SCHEMA, MANIFEST_SCHEMA_V1

pytestmark = pytest.mark.faults


def _square(x):
    return x * x


def _hang_forever():
    time.sleep(30.0)
    return "never"


def _exit_hard(x):
    if x == 1:
        os._exit(13)
    return x * x


def _raise_value_error(x):
    if x == 2:
        raise ValueError("task 2 is broken")
    return x * x


class _Flaky:
    """Fails the first ``n`` calls, then heals (stays in-process)."""

    def __init__(self, n):
        self.n = n
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.n:
            raise ConnectionError(f"transient (call {self.calls})")
        return "healed"


# ----------------------------------------------------------------------
# RetryPolicy
# ----------------------------------------------------------------------
def test_retry_policy_recovers_transient_failures():
    outcome = RetryPolicy(max_attempts=3, base_delay=0.0).execute(
        _Flaky(2)
    )
    assert outcome.ok
    assert outcome.value == "healed"
    assert outcome.attempts == 3
    assert len(outcome.history) == 2
    assert all("transient" in line for line in outcome.history)


def test_retry_policy_exhausts_attempts():
    outcome = RetryPolicy(max_attempts=2, base_delay=0.0).execute(
        _Flaky(99)
    )
    assert not outcome.ok
    assert isinstance(outcome.error, ConnectionError)
    assert outcome.attempts == 2
    assert len(outcome.history) == 2


def test_retry_policy_respects_retryable_predicate():
    policy = RetryPolicy(
        max_attempts=5,
        base_delay=0.0,
        retryable=lambda exc: not isinstance(exc, ConnectionError),
    )
    outcome = policy.execute(_Flaky(1))
    assert not outcome.ok
    assert outcome.attempts == 1  # predicate vetoed the retry


def test_retry_policy_backoff_is_seeded_and_bounded():
    a = RetryPolicy(max_attempts=4, seed=7)
    b = RetryPolicy(max_attempts=4, seed=7)
    delays = [a.delay_for(attempt, 3) for attempt in (1, 2, 3)]
    assert delays == [b.delay_for(attempt, 3) for attempt in (1, 2, 3)]
    assert all(0.0 < d <= a.max_delay * (1.0 + a.jitter) for d in delays)
    # Different task index -> decorrelated jitter stream.
    assert a.delay_for(1, 3) != a.delay_for(1, 4)
    # Different seed -> different delays.
    assert delays != [
        RetryPolicy(max_attempts=4, seed=8).delay_for(n, 3)
        for n in (1, 2, 3)
    ]


def test_retry_policy_validation():
    with pytest.raises(ReproError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ReproError):
        RetryPolicy(backoff=0.5)
    with pytest.raises(ReproError):
        RetryPolicy(jitter=1.5)
    with pytest.raises(ReproError):
        RetryPolicy(base_delay=-1.0)


def test_task_failure_carries_attempt_history():
    backend = SerialExecutor(
        retry=RetryPolicy(max_attempts=2, base_delay=0.0)
    )
    result = backend.run(
        [TaskSpec(_raise_value_error, (2,)), TaskSpec(_square, (3,))]
    )
    failure = result.results[0]
    assert isinstance(failure, TaskFailure)
    assert failure.attempts == 2
    assert len(failure.history) == 2
    assert result.results[1] == 9
    assert result.n_failures == 1


# ----------------------------------------------------------------------
# FaultInjector: seeded schedules and exact recovery
# ----------------------------------------------------------------------
def test_fault_schedule_is_deterministic():
    kwargs = dict(raise_rate=0.3, hang_rate=0.2, drop_rate=0.2, seed=42)
    first = FaultInjector(SerialExecutor(), **kwargs).schedule(30)
    second = FaultInjector(SerialExecutor(), **kwargs).schedule(30)
    assert first == second
    assert any(fault is not None for fault in first)
    other = FaultInjector(
        SerialExecutor(), raise_rate=0.3, hang_rate=0.2, drop_rate=0.2,
        seed=43,
    ).schedule(30)
    assert first != other


def test_fault_injector_validation():
    with pytest.raises(ReproError):
        FaultInjector(SerialExecutor(), raise_rate=0.8, drop_rate=0.4)
    with pytest.raises(ReproError):
        FaultInjector(SerialExecutor(), raise_rate=-0.1)
    with pytest.raises(ReproError):
        FaultInjector(SerialExecutor(), max_failures=0)


def _backend(name, retry):
    if name == "serial":
        return SerialExecutor(retry=retry)
    if name == "threads":
        return ThreadPoolExecutorBackend(max_workers=2, retry=retry)
    if name == "process":
        return ProcessPoolExecutorBackend(
            workers=2, chunk_size=3, retry=retry
        )
    return SimulatedClusterExecutor(
        n_workers=2, dispatch_latency=0.0, retry=retry
    )


@pytest.mark.parametrize(
    "name", ["serial", "threads", "process", "simulated-cluster"]
)
def test_faulty_run_recovers_byte_identical_results(name):
    """The acceptance bar: faults + enough retries == fault-free run."""
    tasks = [TaskSpec(_square, (i,)) for i in range(12)]
    clean = _backend(name, None).run(tasks)
    retry = RetryPolicy(max_attempts=4, base_delay=0.001, max_delay=0.01)
    injector = FaultInjector(
        _backend(name, retry),
        raise_rate=0.3,
        drop_rate=0.2,
        max_failures=2,
        seed=5,
    )
    faulty = injector.run(tasks)
    assert faulty.n_failures == 0
    assert pickle.dumps(faulty.results) == pickle.dumps(clean.results)


def test_dropped_results_fail_without_redelivery():
    injector = FaultInjector(
        SerialExecutor(), drop_rate=1.0, redeliver=False, seed=0
    )
    result = injector.run([TaskSpec(_square, (i,)) for i in range(3)])
    assert result.n_failures == 3
    assert all(
        isinstance(value, TaskFailure)
        and isinstance(value.error, InjectedFault)
        for value in result.results
    )


def test_injected_fault_count_is_metered():
    metrics = Metrics()
    FaultInjector(
        SerialExecutor(),
        raise_rate=1.0,
        max_failures=1,
        seed=0,
        metrics=metrics,
    ).run([TaskSpec(_square, (i,)) for i in range(4)])
    snapshot = metrics.snapshot()
    assert snapshot["counters"]["resilience.faults_injected"] == 4


# ----------------------------------------------------------------------
# Timeouts: hung tasks are killed, siblings survive
# ----------------------------------------------------------------------
def test_thread_backend_times_out_hung_task():
    backend = ThreadPoolExecutorBackend(
        max_workers=4, task_timeout=0.25
    )
    result = backend.run(
        [
            TaskSpec(_square, (2,)),
            lambda: time.sleep(1.0) or "late",
            TaskSpec(_square, (3,)),
        ]
    )
    assert result.results[0] == 4
    assert result.results[2] == 9
    failure = result.results[1]
    assert isinstance(failure, TaskFailure)
    assert isinstance(failure.error, TaskTimeoutError)
    assert result.n_failures == 1


def test_process_backend_times_out_and_respawns():
    """A hung worker kills only its task; chunk siblings re-run."""
    metrics = Metrics()
    backend = ProcessPoolExecutorBackend(
        workers=2, chunk_size=2, task_timeout=1.0, metrics=metrics
    )
    result = backend.run(
        [
            TaskSpec(_square, (2,)),
            TaskSpec(_hang_forever),
            TaskSpec(_square, (3,)),
            TaskSpec(_square, (4,)),
        ]
    )
    assert result.results[0] == 4
    assert result.results[2] == 9
    assert result.results[3] == 16
    failure = result.results[1]
    assert isinstance(failure, TaskFailure)
    assert isinstance(failure.error, TaskTimeoutError)
    assert result.n_failures == 1
    assert metrics.snapshot()["counters"]["resilience.timeouts"] == 1


def test_process_backend_hang_fault_injection():
    backend = ProcessPoolExecutorBackend(
        workers=2, chunk_size=1, task_timeout=0.5
    )
    injector = FaultInjector(
        backend, hang_rate=1.0, hang_seconds=10.0, seed=1
    )
    result = injector.run([TaskSpec(_square, (5,))])
    assert isinstance(result.results[0], TaskFailure)
    assert isinstance(result.results[0].error, TaskTimeoutError)


# ----------------------------------------------------------------------
# Worker crashes: per-task attribution, siblings preserved
# ----------------------------------------------------------------------
def test_worker_crash_fails_only_the_culprit():
    backend = ProcessPoolExecutorBackend(workers=2, chunk_size=4)
    result = backend.run([TaskSpec(_exit_hard, (i,)) for i in range(4)])
    failure = result.results[1]
    assert isinstance(failure, TaskFailure)
    assert isinstance(failure.error, WorkerCrashError)
    assert [result.results[i] for i in (0, 2, 3)] == [0, 4, 9]
    assert result.n_failures == 1


def test_chunk_sibling_results_survive_task_exception():
    backend = ProcessPoolExecutorBackend(workers=2, chunk_size=4)
    result = backend.run(
        [TaskSpec(_raise_value_error, (i,)) for i in range(4)]
    )
    failure = result.results[2]
    assert isinstance(failure, TaskFailure)
    assert "task 2 is broken" in str(failure.error)
    assert [result.results[i] for i in (0, 1, 3)] == [0, 1, 9]


# ----------------------------------------------------------------------
# Circuit breaker and serial fallback
# ----------------------------------------------------------------------
def test_breaker_counts_and_trips():
    breaker = CircuitBreaker(threshold=3)
    breaker.record_failure()
    breaker.record_failure()
    assert not breaker.is_open
    breaker.record_success()
    breaker.record_failure(2)
    assert not breaker.is_open
    breaker.record_failure()
    assert breaker.is_open
    assert breaker.trips == 1
    snapshot = breaker.snapshot()
    assert snapshot["state"] == "open"
    assert snapshot["threshold"] == 3
    breaker.reset()
    assert not breaker.is_open


class _ExplodingBackend:
    name = "exploding"
    retry = None

    def run(self, tasks):
        raise OSError("backend infrastructure is gone")


class _InfraFailingBackend:
    """Times out every odd task; completes the rest."""

    name = "flaky-infra"
    retry = None

    def run(self, tasks):
        results = [
            TaskFailure(TaskTimeoutError(f"task {index} hung"))
            if index % 2
            else task()
            for index, task in enumerate(tasks)
        ]
        failures = sum(
            1 for value in results if isinstance(value, TaskFailure)
        )
        return SweepResult(
            results=results,
            wall_seconds=0.01,
            n_failures=failures,
            task_seconds=[0.0] * len(tasks),
        )


def test_backend_error_downgrades_to_serial_fallback():
    metrics = Metrics()
    wrapped = ResilientExecutor(
        _ExplodingBackend(),
        breaker=CircuitBreaker(threshold=1, metrics=metrics),
        metrics=metrics,
    )
    result = wrapped.run([TaskSpec(_square, (i,)) for i in range(4)])
    assert result.results == [0, 1, 4, 9]
    assert wrapped.breaker.is_open
    assert wrapped.downgrades == 1
    assert wrapped.events[0]["event"] == "fallback"
    assert "OSError" in wrapped.events[0]["reason"]
    # Once open, runs go straight to the fallback.
    again = wrapped.run([TaskSpec(_square, (5,))])
    assert again.results == [25]
    assert wrapped.downgrades == 2
    counters = metrics.snapshot()["counters"]
    assert counters["resilience.breaker_trips"] == 1
    assert counters["resilience.fallbacks"] == 2


def test_breaker_trip_rescues_only_infrastructure_failures():
    wrapped = ResilientExecutor(
        _InfraFailingBackend(), breaker=CircuitBreaker(threshold=2)
    )
    result = wrapped.run([TaskSpec(_square, (i,)) for i in range(6)])
    # The three timed-out slots were re-run serially; completed
    # siblings were kept, nothing was thrown away.
    assert result.results == [0, 1, 4, 9, 16, 25]
    assert result.n_failures == 0
    assert wrapped.breaker.is_open


def test_task_errors_do_not_trip_the_breaker():
    wrapped = ResilientExecutor(
        SerialExecutor(), breaker=CircuitBreaker(threshold=1)
    )
    result = wrapped.run(
        [TaskSpec(_raise_value_error, (2,))] * 3
    )
    # A ValueError is the task's own fault on any backend.
    assert not wrapped.breaker.is_open
    assert wrapped.downgrades == 0
    assert result.n_failures == 3


# ----------------------------------------------------------------------
# Degraded-mode analysis
# ----------------------------------------------------------------------
def test_engine_rejects_unknown_on_goal_error():
    from repro.exceptions import EngineError

    with pytest.raises(EngineError):
        ADAHealth(config=EngineConfig(on_goal_error="ignore"))
    with pytest.raises(EngineError):
        ADAHealth(config=EngineConfig(retries=-1))


@pytest.fixture(scope="module")
def degraded_engine_and_result(small_log):
    from repro.core.engine import ADAHealth as EngineClass

    original = EngineClass._run_goal

    def sabotaged(self, goal, log, profile, dataset_id):
        if goal.name == "patient-segmentation":
            raise RuntimeError("injected goal failure")
        return original(self, goal, log, profile, dataset_id)

    EngineClass._run_goal = sabotaged
    try:
        engine = ADAHealth(
            config=EngineConfig(
                k_values=(4, 6),
                partial_fractions=(0.5, 1.0),
                partial_k_values=(4,),
                n_folds=3,
                on_goal_error="degrade",
            ),
            seed=0,
        )
        result = engine.analyze(
            small_log, name="degraded-test", user="dr-chaos"
        )
    finally:
        EngineClass._run_goal = original
    return engine, result


def test_degrade_mode_keeps_surviving_goals(degraded_engine_and_result):
    __, result = degraded_engine_and_result
    assert result.degraded
    assert result.failed_goals() == ["patient-segmentation"]
    survivors = [
        run for run in result.runs if run.status == "completed"
    ]
    assert survivors, "surviving goals must still run"
    assert result.items, "surviving goals must still produce items"
    failed = result.run_for("patient-segmentation")
    assert failed.status == "failed"
    assert "injected goal failure" in failed.error
    assert failed.items == []


def test_degrade_mode_items_stay_ranked(degraded_engine_and_result):
    engine, result = degraded_engine_and_result
    scores = [engine.ranker.ranking_score(item) for item in result.items]
    assert scores == sorted(scores, reverse=True)


def test_degrade_mode_summary_reports_the_failure(
    degraded_engine_and_result,
):
    __, result = degraded_engine_and_result
    summary = result.summary()
    assert "degraded analysis" in summary
    assert "patient-segmentation: FAILED" in summary


def test_degrade_mode_records_valid_v2_manifest(
    degraded_engine_and_result,
):
    engine, result = degraded_engine_and_result
    manifest = engine.kdb.run_history(limit=1)[0]
    manifest.pop("_id", None)
    assert validate_manifest(manifest) is manifest
    assert manifest["schema"] == MANIFEST_SCHEMA
    assert manifest["status"] == "degraded"
    by_status = {}
    for goal in manifest["goals"]:
        by_status.setdefault(goal["status"], []).append(goal["name"])
    assert by_status["failed"] == ["patient-segmentation"]
    assert len(by_status["completed"]) == len(result.runs) - 1
    resilience = manifest["resilience"]
    assert resilience["degraded_goals"] == ["patient-segmentation"]
    assert resilience["breaker"]["state"] == "closed"


def test_validate_manifest_accepts_v1_documents():
    document = {
        "schema": MANIFEST_SCHEMA_V1,
        "status": "completed",
        "dataset": {"id": 1, "name": "x", "fingerprint": "f"},
        "user": "u",
        "seed": 0,
        "started_at": 0.0,
        "finished_at": 1.0,
        "wall_s": 1.0,
        "goals_assessed": [],
        "goals": [],
        "cache": {"enabled": False},
        "executor": {"backend": "serial"},
        "metrics": {},
        "n_items": 0,
        "error": None,
    }
    assert validate_manifest(document) is document
    with pytest.raises(Exception):
        validate_manifest(dict(document, schema="ada-health/run-manifest/v9"))


# ----------------------------------------------------------------------
# Regressions: crash-safe store, corrupt-tolerant cache
# ----------------------------------------------------------------------
def test_documentstore_save_is_atomic(tmp_path):
    store = DocumentStore()
    store.collection("people").insert_many(
        [{"name": "a"}, {"name": "b"}]
    )
    store.save(tmp_path)
    leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
    assert leftovers == []
    reloaded = DocumentStore.load(tmp_path)
    assert len(reloaded.collection("people")) == 2
    assert reloaded.load_warnings == []


def test_documentstore_load_skips_corrupt_trailing_lines(tmp_path):
    store = DocumentStore()
    store.collection("people").insert_many(
        [{"name": "a"}, {"name": "b"}]
    )
    store.save(tmp_path)
    # Simulate a crash mid-append: a truncated JSON line at the tail.
    with open(tmp_path / "people.jsonl", "a") as handle:
        handle.write('{"name": "tru')
    reloaded = DocumentStore.load(tmp_path)
    assert len(reloaded.collection("people")) == 2
    assert len(reloaded.load_warnings) == 1
    assert "people.jsonl:3" in reloaded.load_warnings[0]


def test_cache_corrupt_entry_degrades_to_miss():
    metrics = Metrics()
    cache = AnalysisCache(metrics=metrics)
    cache.put("ds", "algo", {"k": 1}, {"value": 10})
    # Corrupt the stored entry in place: payload key vanishes.
    key = cache.key("ds", "algo", {"k": 1})
    cache.collection.update_many(
        {"key": key}, {"$unset": {"payload": ""}}
    )
    assert cache.get("ds", "algo", {"k": 1}) is None
    assert cache.corrupt == 1
    assert metrics.snapshot()["counters"]["cache.corrupt"] == 1
    # The damaged entry was evicted, so a recompute overwrites it.
    cache.put("ds", "algo", {"k": 1}, {"value": 10})
    assert cache.get("ds", "algo", {"k": 1}) == {"value": 10}
    assert cache.stats()["corrupt"] == 1


def test_cache_decode_failure_degrades_to_miss():
    cache = AnalysisCache()

    def decode(payload):
        if "rows" not in payload:
            raise KeyError("rows")
        return payload["rows"]

    cache.put("ds", "algo", {"k": 2}, {"not-rows": []})
    assert cache.get("ds", "algo", {"k": 2}, decode=decode) is None
    assert cache.corrupt == 1
    cache.put("ds", "algo", {"k": 2}, {"rows": [1, 2]})
    assert cache.get("ds", "algo", {"k": 2}, decode=decode) == [1, 2]
    assert cache.stats()["hits"] == 1


def test_fault_injection_through_analysis_cache_stays_consistent():
    """Retries must not double-store: put() is idempotent per key."""
    cache = AnalysisCache()
    policy = RetryPolicy(max_attempts=3, base_delay=0.0)
    flaky = _Flaky(1)

    def compute():
        value = flaky()
        cache.put("ds", "flaky-algo", {"n": 1}, value)
        return value

    outcome = policy.execute(compute)
    assert outcome.ok
    assert cache.stats()["stores"] == 1
    assert cache.get("ds", "flaky-algo", {"n": 1}) == "healed"


# ----------------------------------------------------------------------
# runtime lock order vs the static lock-order graph (ADA015)
# ----------------------------------------------------------------------
def test_runtime_lock_order_is_within_the_static_graph(tmp_path):
    """Chaos check: every lock-order edge observed live must exist in
    the graph adalint infers statically.

    The static side analyses the real ``shards.py``/``documentstore.py``
    sources; the runtime side instruments a live store with
    :func:`track_store_locks` and hammers it from several threads with
    auto- and background compaction enabled. A runtime-only edge means
    the analyser has a blind spot (or the code grew an untracked path).
    """
    import threading
    from pathlib import Path

    from repro.kdb.shards import ShardedDocumentStore
    from repro.lint.graph import ProjectGraph, extract_summary
    from repro.obs import track_store_locks

    repo_root = Path(__file__).resolve().parents[1]
    sources = (
        "src/repro/kdb/shards.py",
        "src/repro/kdb/documentstore.py",
    )
    graph = ProjectGraph(
        extract_summary(
            (repo_root / rel).read_text(encoding="utf-8"), rel
        )
        for rel in sources
    )
    static_edges = {
        (edge.source, edge.target)
        for edge in graph.lock_order_edges()
    }
    canonical = (
        "repro.kdb.documentstore:Collection._lock",
        "repro.kdb.shards:ShardedDocumentStore._slock",
    )
    assert canonical in static_edges
    assert graph.lock_cycles() == []

    store = ShardedDocumentStore(
        tmp_path / "db", n_shards=2, auto_compact_ops=5
    )
    collection = store["events"]
    tracker = track_store_locks(store)
    failures = []

    def writer(worker):
        try:
            for i in range(30):
                collection.insert_one({"w": worker, "i": i})
        except Exception as exc:  # pragma: no cover - failure path
            failures.append(exc)

    threads = [
        threading.Thread(target=writer, args=(worker,))
        for worker in range(4)
    ]
    for thread in threads:
        thread.start()
    store.start_background_compaction(interval_s=0.001, min_pending=1)
    for thread in threads:
        thread.join()
    store.compact()
    store.stats()
    store.close()

    assert failures == []
    observed = tracker.edges()
    assert canonical in observed  # the hammering exercised the edge
    assert observed <= static_edges, tracker.trace()
