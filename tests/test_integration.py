"""Integration tests: cross-module pipelines at small scale.

These exercise the same pipelines as the paper's experiments (the
full-size runs live in ``benchmarks/``), asserting the *shape* of each
result: SSE monotone in K, classification quality degrading for large K,
the partial-mining selection logic, and the closed feedback loop.
"""

import numpy as np
import pytest

from repro.core import (
    ADAHealth,
    EngineConfig,
    HorizontalPartialMiner,
    KMeansOptimizer,
    SimulatedExpert,
    clinician_profile,
)
from repro.data import profile_labels, small_dataset
from repro.kdb import KnowledgeBase
from repro.mining import KMeans, adjusted_rand_index, purity
from repro.preprocess import L2Normalizer, TransformSelector, VSMBuilder


@pytest.fixture(scope="module")
def log():
    return small_dataset(
        n_patients=500, n_exam_types=60, target_records=8000, seed=21
    )


@pytest.fixture(scope="module")
def matrix(log):
    vsm = VSMBuilder("binary").build(log)
    return L2Normalizer().transform(vsm.matrix)


def test_clustering_recovers_planted_structure(log, matrix):
    """K-means on the VSM finds the complication sub-populations."""
    truth = profile_labels(log)
    labels = KMeans(8, seed=0, n_init=4).fit_predict(matrix)
    assert purity(truth, labels) > 0.55
    assert adjusted_rand_index(truth, labels) > 0.05


def test_table1_shape_small_scale(matrix):
    """SSE decreases with K; quality degrades at large K; the winner is
    a small-to-moderate K (the Table I shape)."""
    optimizer = KMeansOptimizer(
        k_values=(4, 6, 8, 16, 24), n_folds=4, seed=0,
        kmeans_params={"n_init": 2},
    )
    report = optimizer.optimize(matrix)
    sses = [row.sse for row in report.rows]
    assert all(a >= b - 1e-9 for a, b in zip(sses, sses[1:]))
    by_k = {row.k: row for row in report.rows}
    assert by_k[24].combined < max(
        by_k[4].combined, by_k[6].combined, by_k[8].combined
    )
    assert report.best_k <= 16


def test_partial_mining_shape_small_scale(log):
    """Subsets lose similarity; the full reference has zero difference;
    row coverage grows superlinearly in the type fraction."""
    miner = HorizontalPartialMiner(
        fractions=(0.2, 0.4, 1.0), k_values=(6, 8), seed=0
    )
    result = miner.mine(log)
    for fraction in (0.2, 0.4):
        runs = [
            r for r in result.runs if r.fraction_features == fraction
        ]
        # Coverage concentration: e.g. 20% of types >> 20% of rows.
        assert all(r.fraction_rows > 2 * fraction for r in runs)
    diff20 = np.mean(
        [r.pct_difference for r in result.runs
         if r.fraction_features == 0.2]
    )
    diff40 = np.mean(
        [r.pct_difference for r in result.runs
         if r.fraction_features == 0.4]
    )
    assert diff40 <= diff20 + 0.02


def test_transform_selection_feeds_clustering(log):
    """Auto-selected transform clusters at least as well as raw counts."""
    selection = TransformSelector(
        pilot_size=200, pilot_clusters=6, seed=0
    ).select(log)
    assert selection.transformed.shape[0] == log.n_patients
    assert selection.best.score >= min(
        c.score for c in selection.candidates
    )


def test_full_loop_two_sessions_learning(log):
    """Session 1 -> expert feedback -> session 2 uses learned models."""
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(4, 6),
            partial_fractions=(0.4, 1.0),
            partial_k_values=(4,),
            n_folds=3,
        ),
        seed=0,
    )
    expert = SimulatedExpert(clinician_profile(), seed=1)

    first = engine.analyze(log, name="visit-1", user="dr-i")
    session = first.navigate(page_size=12)
    for item in session.page(0):
        session.give_feedback(item, expert.label(item))
    for run in first.runs:
        liked = any(item.degree == "high" for item in run.items)
        engine.record_goal_feedback(run.goal.name, first.profile, liked)

    second = engine.analyze(log, name="visit-2", user="dr-i")
    # Degrees in session 2 come from the trained K-DB predictor.
    assert engine.kdb.feedback_count() >= 10
    assert all(item.degree is not None for item in second.items)
    # The K-DB accumulated both sessions.
    assert engine.kdb.counts()["raw_datasets"] == 2
    assert engine.interest_model.n_interactions == len(first.runs)


def test_kdb_persistence_across_engines(log, tmp_path):
    """A K-DB saved by one engine continues learning in another."""
    config = EngineConfig(
        k_values=(4,),
        partial_fractions=(1.0,),
        partial_k_values=(4,),
        n_folds=3,
        max_goals=2,
    )
    first_engine = ADAHealth(config=config, seed=0)
    result = first_engine.analyze(log, user="dr-p")
    session = result.navigate(page_size=6)
    expert = SimulatedExpert(seed=4)
    for item in session.page(0):
        session.give_feedback(item, expert.label(item))
    first_engine.kdb.save(tmp_path / "kdb")

    second_engine = ADAHealth(
        kdb=KnowledgeBase.load(tmp_path / "kdb"), config=config, seed=0
    )
    assert second_engine.kdb.feedback_count("dr-p") == 6
    again = second_engine.analyze(log, name="second")
    assert again.items


def test_ranker_adaptation_changes_order(log):
    """Consistent negative feedback on a kind demotes that kind."""
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(4,),
            partial_fractions=(1.0,),
            partial_k_values=(4,),
            n_folds=3,
        ),
        seed=0,
    )
    result = engine.analyze(log, user="dr-r")
    session = result.navigate(page_size=10)
    first_page_kinds = [item.kind for item in session.page(0)]
    target_kind = first_page_kinds[0]
    for item in [i for i in result.items if i.kind == target_kind][:6]:
        session.give_feedback(item, "low")
    new_first = session.page(0)
    demoted_share = sum(
        1 for item in new_first if item.kind == target_kind
    )
    original_share = sum(
        1 for kind in first_page_kinds if kind == target_kind
    )
    assert demoted_share <= original_share
