"""Tests for the exception hierarchy."""

import numpy as np
import pytest

from repro import exceptions as exc
from repro import mining


def test_everything_derives_from_repro_error():
    for name in (
        "DataError",
        "ValidationError",
        "StoreError",
        "DuplicateKeyError",
        "QueryError",
        "CollectionNotFoundError",
        "PreprocessError",
        "NotFittedError",
        "MiningError",
        "EngineError",
        "EndGoalError",
    ):
        assert issubclass(getattr(exc, name), exc.ReproError), name


def test_sub_hierarchies():
    assert issubclass(exc.ValidationError, exc.DataError)
    assert issubclass(exc.DuplicateKeyError, exc.StoreError)
    assert issubclass(exc.QueryError, exc.StoreError)
    assert issubclass(exc.CollectionNotFoundError, exc.StoreError)
    assert issubclass(exc.EndGoalError, exc.EngineError)


def test_catching_the_base_class():
    with pytest.raises(exc.ReproError):
        raise exc.MiningError("boom")


def test_convergence_warning_is_a_warning():
    assert issubclass(exc.ConvergenceWarning, UserWarning)


@pytest.mark.parametrize(
    "call",
    [
        lambda X: mining.KMeans(2, seed=0).predict(X),
        lambda X: mining.KMeans(2, seed=0).transform(X),
        lambda X: mining.KMedoids(2, seed=0).predict(X),
        lambda X: mining.BisectingKMeans(2, seed=0).predict(X),
        lambda X: mining.AgglomerativeClustering(2).dendrogram_heights(),
        lambda X: mining.DBSCAN(eps=1.0).n_clusters(),
        lambda X: mining.DBSCAN(eps=1.0).noise_ratio(),
        lambda X: mining.GaussianNaiveBayes().predict(X),
        lambda X: mining.MultinomialNaiveBayes().predict(X),
        lambda X: mining.KNeighborsClassifier(1).predict(X),
        lambda X: mining.DecisionTreeClassifier().predict(X),
        lambda X: mining.MajorityClassifier().predict(X),
    ],
    ids=[
        "kmeans-predict",
        "kmeans-transform",
        "kmedoids-predict",
        "bisecting-predict",
        "agglomerative-heights",
        "dbscan-n-clusters",
        "dbscan-noise-ratio",
        "gaussian-nb-predict",
        "multinomial-nb-predict",
        "knn-predict",
        "tree-predict",
        "majority-predict",
    ],
)
def test_unfitted_estimators_raise_not_fitted(call):
    """Unfitted estimators raise NotFittedError, never AssertionError.

    The fit-state guards are real raises (visible under ``python -O``,
    catchable as :class:`~repro.exceptions.ReproError`) rather than
    bare asserts — the invariant adalint rule ADA005 enforces.
    """
    X = np.zeros((4, 3))
    with pytest.raises(exc.NotFittedError):
        call(X)
