"""Tests for the exception hierarchy."""

import pytest

from repro import exceptions as exc


def test_everything_derives_from_repro_error():
    for name in (
        "DataError",
        "ValidationError",
        "StoreError",
        "DuplicateKeyError",
        "QueryError",
        "CollectionNotFoundError",
        "PreprocessError",
        "NotFittedError",
        "MiningError",
        "EngineError",
        "EndGoalError",
    ):
        assert issubclass(getattr(exc, name), exc.ReproError), name


def test_sub_hierarchies():
    assert issubclass(exc.ValidationError, exc.DataError)
    assert issubclass(exc.DuplicateKeyError, exc.StoreError)
    assert issubclass(exc.QueryError, exc.StoreError)
    assert issubclass(exc.CollectionNotFoundError, exc.StoreError)
    assert issubclass(exc.EndGoalError, exc.EngineError)


def test_catching_the_base_class():
    with pytest.raises(exc.ReproError):
        raise exc.MiningError("boom")


def test_convergence_warning_is_a_warning():
    assert issubclass(exc.ConvergenceWarning, UserWarning)
