"""Crash-point sweep and recovery tests for the sharded K-DB store.

The core harness records an N-op workload against a FaultyStorage in a
clean pass (counting write events), then replays it once per write
event with a hard crash injected at that event. After every crash the
directory is reopened with real storage and the recovered contents
must equal the state after some *prefix* of the op sequence — the
prefix-consistency invariant — and ``kdb fsck`` must leave the
directory clean. A Hypothesis property drives the same invariant over
arbitrary put/delete sequences and crash offsets.

Also here: ENOSPC write-protection, stale-lockfile takeover after a
crash between lockfile create and pid write, v1 (pre-checksum) store
upgrade, quarantine semantics under fault injection, and the
byte-identity of completed faulty runs.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import StoreError
from repro.kdb.fsck import fsck
from repro.kdb.shards import ShardedDocumentStore, shard_of
from repro.kdb.storage import FaultyStorage, SimulatedCrash
from repro.obs import Metrics

pytestmark = pytest.mark.crash


# ----------------------------------------------------------------------
# workload harness
# ----------------------------------------------------------------------
def _put(collection, doc_id, value):
    """Upsert: exactly one journal append either way."""
    hit = collection.update_one(
        {"_id": doc_id}, {"$set": {"v": value}}
    )
    if hit == 0:
        collection.insert_one({"_id": doc_id, "v": value})


def _apply(store, ops, upto=None):
    """Apply ``ops[:upto]``; each op is at most one journal append."""
    collection = store["c"]
    for op in ops[:upto]:
        if op[0] == "put":
            _put(collection, op[1], op[2])
        else:  # del
            collection.delete_one({"_id": op[1]})


def _state_after(ops, upto):
    state = {}
    for op in ops[:upto]:
        if op[0] == "put":
            state[op[1]] = {"_id": op[1], "v": op[2]}
        else:
            state.pop(op[1], None)
    return state


def _contents(store):
    return {doc["_id"]: doc for doc in store["c"].find()}


#: A workload mixing puts, overwrites, deletes and a mid-stream
#: compaction — every op is a single log append, so recovery must land
#: on an exact op prefix.
_OPS = (
    [("put", i, 0) for i in range(6)]
    + [("del", 1), ("put", 2, 1), ("put", 6, 0)]
    + [("compact",)]
    + [("put", 7, 0), ("del", 0), ("put", 2, 2)]
)


def _run_workload(directory, storage, n_shards=2):
    store = ShardedDocumentStore(
        directory, n_shards=n_shards, storage=storage
    )
    try:
        collection = store["c"]
        for op in _OPS:
            if op[0] == "put":
                _put(collection, op[1], op[2])
            elif op[0] == "del":
                collection.delete_one({"_id": op[1]})
            else:
                store.compact()
    finally:
        if not storage.crashed:
            store.close()
        else:
            store.simulate_crash()
    return store


def _prefix_states():
    """Every reachable logical state of the workload, by op prefix."""
    logical = [op for op in _OPS if op[0] != "compact"]
    return [
        _state_after(logical, upto)
        for upto in range(len(logical) + 1)
    ]


def test_sweep_every_crash_point_recovers_a_prefix(tmp_path):
    clean = FaultyStorage(seed=0)
    _run_workload(tmp_path / "count", clean)
    total_events = clean.events
    assert total_events > 20
    prefixes = _prefix_states()
    for crash_at in range(1, total_events + 1):
        directory = tmp_path / f"crash-{crash_at:03d}"
        storage = FaultyStorage(seed=crash_at, crash_at=crash_at)
        try:
            _run_workload(directory, storage)
        except SimulatedCrash:
            pass
        else:
            pytest.fail(f"event {crash_at} never fired")
        metrics = Metrics()
        recovered = ShardedDocumentStore(
            directory, n_shards=2, metrics=metrics
        )
        state = _contents(recovered)
        assert state in prefixes, (
            f"crash at event {crash_at}: recovered state matches no"
            f" op prefix: {sorted(state)}"
        )
        # nothing a crash leaves behind may look like damage
        assert recovered.degraded_collections == set(), (
            f"crash at event {crash_at} flagged degraded:"
            f" {recovered.load_warnings}"
        )
        assert recovered.recovery_stats["quarantined"] == 0
        recovered.close()
        report = fsck(directory, repair=True)
        assert report.ok, (
            f"crash at event {crash_at}: fsck still unhappy:"
            f" {[issue.as_dict() for issue in report.issues]}"
        )
        final = ShardedDocumentStore(directory, n_shards=2)
        assert _contents(final) == state  # repair changed nothing
        final.close()


def test_completed_faulty_run_is_byte_identical_to_clean(tmp_path):
    _run_workload(tmp_path / "clean", FaultyStorage(seed=1))
    _run_workload(tmp_path / "faulty", FaultyStorage(seed=2))
    clean_files = sorted(
        p.name for p in (tmp_path / "clean").iterdir()
    )
    faulty_files = sorted(
        p.name for p in (tmp_path / "faulty").iterdir()
    )
    assert clean_files == faulty_files
    for name in clean_files:
        assert (tmp_path / "clean" / name).read_bytes() == (
            tmp_path / "faulty" / name
        ).read_bytes(), name


# ----------------------------------------------------------------------
# Hypothesis: arbitrary op sequence x arbitrary crash offset
# ----------------------------------------------------------------------
ops_strategy = st.lists(
    st.one_of(
        st.tuples(
            st.just("put"),
            st.integers(0, 7),
            st.integers(0, 99),
        ),
        st.tuples(st.just("del"), st.integers(0, 7)),
    ),
    min_size=1,
    max_size=12,
)


@given(ops=ops_strategy, crash_seed=st.integers(0, 10**6))
@settings(max_examples=30, deadline=None)
def test_property_prefix_consistency(tmp_path_factory, ops, crash_seed):
    tmp = tmp_path_factory.mktemp("sweep")
    counter = FaultyStorage(seed=0)
    store = ShardedDocumentStore(
        tmp / "count", n_shards=2, storage=counter
    )
    _apply(store, ops)
    store.close()
    crash_at = 1 + crash_seed % counter.events

    directory = tmp / "crash"
    storage = FaultyStorage(seed=crash_seed, crash_at=crash_at)
    store = None
    try:
        store = ShardedDocumentStore(
            directory, n_shards=2, storage=storage
        )
        _apply(store, ops)
        store.close()
    except SimulatedCrash:
        # a constructor crash cleans up after itself; a later crash
        # needs the in-process ownership dropped before reopening
        if store is not None:
            store.simulate_crash()
    recovered = ShardedDocumentStore(directory, n_shards=2)
    state = _contents(recovered)
    prefixes = [_state_after(ops, i) for i in range(len(ops) + 1)]
    assert state in prefixes
    assert recovered.degraded_collections == set()
    recovered.close()
    assert fsck(directory, repair=True).ok


# ----------------------------------------------------------------------
# lockfile takeover under crashed create
# ----------------------------------------------------------------------
def test_stale_lockfile_takeover_after_torn_create(tmp_path):
    directory = tmp_path / "db"
    # event 1 of a fresh open is the exclusive lockfile create: crash
    # there, leaving a lockfile whose pid content is torn
    storage = FaultyStorage(seed=4, crash_at=1)
    with pytest.raises(SimulatedCrash):
        ShardedDocumentStore(directory, storage=storage)
    assert (directory / "_shards.lock").exists()
    report = fsck(directory)
    assert any(
        issue.kind in ("stale_lockfile", "missing_manifest")
        for issue in report.issues
    )
    # the next opener must prove the lock stale and break it
    store = ShardedDocumentStore(directory, n_shards=2)
    store["c"].insert_one({"_id": 1})
    store.close()
    reopened = ShardedDocumentStore(directory)
    assert len(reopened["c"]) == 1
    reopened.close()


def test_crashed_store_keeps_lockfile_until_takeover(tmp_path):
    directory = tmp_path / "db"
    storage = FaultyStorage(seed=0, crash_at=10)
    try:
        _run_workload(directory, storage)
    except SimulatedCrash:
        pass
    # the dead "process" left its lockfile; same-pid takeover works
    assert (directory / "_shards.lock").exists()
    store = ShardedDocumentStore(directory, n_shards=2)
    store.close()


# ----------------------------------------------------------------------
# ENOSPC: write-protection until compaction reconciles
# ----------------------------------------------------------------------
def test_enospc_write_protects_until_compact(tmp_path):
    # open = lockfile + 2 manifest writes (events 1-3); the first
    # insert appends a header frame then its record (events 4-5), so
    # the failure lands on the second insert's log append
    storage = FaultyStorage(seed=0, enospc_at=6)
    store = ShardedDocumentStore(
        tmp_path / "db", n_shards=2, storage=storage
    )
    collection = store["c"]
    collection.insert_one({"_id": 1})
    with pytest.raises(StoreError, match="journal append"):
        collection.insert_one({"_id": 2})
    # memory is ahead of disk; further writes are refused
    assert len(collection) == 2
    with pytest.raises(StoreError, match="write-protected"):
        collection.insert_one({"_id": 3})
    # compaction rewrites disk from memory and lifts the protection
    store.compact()
    collection.insert_one({"_id": 3})
    store.close()
    recovered = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    assert sorted(_contents(recovered)) == [1, 2, 3]
    recovered.close()


# ----------------------------------------------------------------------
# lose_unsynced: flushed-but-unsynced appends vanish
# ----------------------------------------------------------------------
def test_lost_page_cache_still_recovers_a_prefix(tmp_path):
    directory = tmp_path / "db"
    storage = FaultyStorage(seed=3, crash_at=8, lose_unsynced=True)
    try:
        _run_workload(directory, storage)
    except SimulatedCrash:
        pass
    recovered = ShardedDocumentStore(directory, n_shards=2)
    assert _contents(recovered) in _prefix_states()
    assert recovered.degraded_collections == set()
    recovered.close()


# ----------------------------------------------------------------------
# v1 upgrade path
# ----------------------------------------------------------------------
def _write_v1_store(directory):
    """A pre-PR-10 store: plain JSONL, version-1 manifest."""
    directory.mkdir(parents=True)
    docs = [{"_id": i, "v": i} for i in range(6)]
    n_shards = 2
    for shard in range(n_shards):
        log = directory / f"c.shard-{shard:04d}.log.jsonl"
        records = [
            {"op": "put", "doc": doc}
            for doc in docs
            if shard_of(doc["_id"], n_shards) == shard
        ]
        log.write_text(
            "".join(json.dumps(r, sort_keys=True) + "\n"
                    for r in records)
        )
    (directory / "_shards.json").write_text(
        json.dumps(
            {
                "version": 1,
                "n_shards": n_shards,
                "collections": {"c": {"indexes": []}},
            }
        )
    )
    return {doc["_id"]: doc for doc in docs}


def test_v1_store_opens_and_upgrades_on_compact(tmp_path):
    expected = _write_v1_store(tmp_path / "db")
    store = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    assert _contents(store) == expected
    assert store.load_warnings == []
    assert store.degraded_collections == set()
    # appends to a v1 log open a framed run behind a header
    store["c"].insert_one({"_id": 99, "v": 99})
    store.close()
    reopened = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    assert set(_contents(reopened)) == set(expected) | {99}
    # compaction rewrites everything in framed v2 + manifest v2
    reopened.compact()
    reopened.close()
    manifest = json.loads((tmp_path / "db" / "_shards.json").read_text())
    assert manifest["version"] == 2
    assert manifest["collections"]["c"]["generation"] == 1
    for log in (tmp_path / "db").glob("c.shard-*.jsonl"):
        for line in log.read_text().splitlines():
            assert line.startswith("v2|")
    final = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    assert set(_contents(final)) == set(expected) | {99}
    assert final.load_warnings == []
    final.close()


# ----------------------------------------------------------------------
# recovery metrics
# ----------------------------------------------------------------------
def test_recovery_counters_are_metered(tmp_path):
    store = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    store["c"].insert_many([{"_id": i} for i in range(8)])
    store.close()
    logs = sorted(
        path
        for path in (tmp_path / "db").glob("c.shard-*.log.jsonl")
        if path.stat().st_size > 0
    )
    # tear the tail of one log, corrupt the interior of another
    logs[0].write_bytes(logs[0].read_bytes()[:-4])
    lines = logs[1].read_bytes().splitlines(True)
    lines[1] = b"XX" + lines[1][2:]
    logs[1].write_bytes(b"".join(lines))
    metrics = Metrics()
    recovered = ShardedDocumentStore(
        tmp_path / "db", n_shards=2, metrics=metrics
    )
    snapshot = metrics.snapshot()["counters"]
    assert snapshot["kdb.recovery.torn_tail"] == 1
    assert snapshot["kdb.recovery.quarantined"] >= 1
    assert snapshot["kdb.recovery.seq_gap"] >= 1
    assert recovered.recovery_stats["torn_tail"] == 1
    recovered.close()


def test_fsck_reports_and_repairs_interior_damage(tmp_path):
    store = ShardedDocumentStore(tmp_path / "db", n_shards=2)
    store["c"].insert_many([{"_id": i} for i in range(8)])
    store.close()
    victim = next(
        path
        for path in sorted(
            (tmp_path / "db").glob("c.shard-*.log.jsonl")
        )
        if len(path.read_bytes().splitlines()) >= 3
    )
    lines = victim.read_bytes().splitlines(True)
    lines[1] = b"XX" + lines[1][2:]
    victim.write_bytes(b"".join(lines))
    report = fsck(tmp_path / "db")
    assert not report.clean
    assert any(i.kind == "corrupt_line" for i in report.issues)
    assert not report.ok
    repaired = fsck(tmp_path / "db", repair=True)
    assert repaired.ok
    # quarantine sidecar preserved the damaged record
    sidecar = next(
        (tmp_path / "db").glob("c.shard-*.quarantine.jsonl")
    )
    assert sidecar.read_text().strip()
    assert fsck(tmp_path / "db").clean
