"""Tests for bisecting K-means, agglomerative clustering and DBSCAN."""

import numpy as np
import pytest

from repro.exceptions import MiningError, NotFittedError
from repro.mining import (
    DBSCAN,
    NOISE,
    AgglomerativeClustering,
    BisectingKMeans,
    adjusted_rand_index,
)


# ----------------------------------------------------------------------
# Bisecting K-means
# ----------------------------------------------------------------------
def test_bisecting_recovers_blobs(blobs):
    data, truth = blobs
    model = BisectingKMeans(3, seed=0).fit(data)
    assert adjusted_rand_index(truth, model.labels_) == pytest.approx(1.0)


def test_bisecting_label_range(blobs):
    data, __ = blobs
    labels = BisectingKMeans(5, seed=0).fit_predict(data)
    assert set(np.unique(labels)) == set(range(5))


def test_bisecting_single_cluster(blobs):
    data, __ = blobs
    model = BisectingKMeans(1, seed=0).fit(data)
    assert len(np.unique(model.labels_)) == 1


def test_bisecting_inertia_positive(blobs):
    data, __ = blobs
    model = BisectingKMeans(3, seed=0).fit(data)
    assert model.inertia_ > 0


def test_bisecting_predict(blobs):
    data, __ = blobs
    model = BisectingKMeans(3, seed=0).fit(data)
    assert np.array_equal(model.predict(data), model.labels_)


def test_bisecting_validation(blobs):
    data, __ = blobs
    with pytest.raises(MiningError):
        BisectingKMeans(0)
    with pytest.raises(MiningError):
        BisectingKMeans(500).fit(data)
    with pytest.raises(NotFittedError):
        BisectingKMeans(2).predict(data)


# ----------------------------------------------------------------------
# Agglomerative
# ----------------------------------------------------------------------
@pytest.mark.parametrize("linkage", ["single", "complete", "average", "ward"])
def test_agglomerative_recovers_blobs(blobs, linkage):
    data, truth = blobs
    model = AgglomerativeClustering(3, linkage=linkage).fit(data)
    assert adjusted_rand_index(truth, model.labels_) == pytest.approx(1.0)


def test_agglomerative_merge_count(blobs):
    data, __ = blobs
    model = AgglomerativeClustering(3, linkage="average").fit(data)
    assert len(model.merges_) == data.shape[0] - 1


def test_agglomerative_n_clusters_labels(blobs):
    data, __ = blobs
    for k in (1, 2, 6):
        labels = AgglomerativeClustering(k, linkage="ward").fit_predict(
            data
        )
        assert len(np.unique(labels)) == k


def test_single_linkage_heights_monotone():
    """Single-linkage merge heights are non-decreasing."""
    rng = np.random.default_rng(5)
    data = rng.normal(size=(40, 2))
    model = AgglomerativeClustering(1, linkage="single").fit(data)
    heights = model.dendrogram_heights()
    assert (np.diff(heights) >= -1e-9).all()


def test_agglomerative_validation():
    with pytest.raises(MiningError):
        AgglomerativeClustering(0)
    with pytest.raises(MiningError):
        AgglomerativeClustering(2, linkage="centroid-ish")
    with pytest.raises(MiningError):
        AgglomerativeClustering(10).fit(np.zeros((3, 2)))
    with pytest.raises(NotFittedError):
        AgglomerativeClustering(2).dendrogram_heights()


def test_agglomerative_two_points():
    data = np.array([[0.0, 0.0], [1.0, 1.0]])
    model = AgglomerativeClustering(2, linkage="average").fit(data)
    assert len(np.unique(model.labels_)) == 2


# ----------------------------------------------------------------------
# DBSCAN
# ----------------------------------------------------------------------
def test_dbscan_recovers_blobs(blobs):
    data, truth = blobs
    model = DBSCAN(eps=1.0, min_samples=4).fit(data)
    assert model.n_clusters() == 3
    core = model.labels_ != NOISE
    assert adjusted_rand_index(truth[core], model.labels_[core]) > 0.99


def test_dbscan_flags_isolated_point(blobs):
    data, __ = blobs
    spiked = np.vstack([data, [[100.0] * data.shape[1]]])
    model = DBSCAN(eps=1.0, min_samples=4).fit(spiked)
    assert model.labels_[-1] == NOISE


def test_dbscan_all_noise_when_eps_tiny(blobs):
    data, __ = blobs
    model = DBSCAN(eps=1e-6, min_samples=3).fit(data)
    assert model.noise_ratio() == pytest.approx(1.0)
    assert model.n_clusters() == 0


def test_dbscan_one_cluster_when_eps_huge(blobs):
    data, __ = blobs
    model = DBSCAN(eps=100.0, min_samples=3).fit(data)
    assert model.n_clusters() == 1
    assert model.noise_ratio() == 0.0


def test_dbscan_brute_force_matches_tree(blobs):
    data, __ = blobs
    tree_based = DBSCAN(eps=1.0, min_samples=4, brute_force_dims=999).fit(
        data
    )
    brute = DBSCAN(eps=1.0, min_samples=4, brute_force_dims=1).fit(data)
    assert adjusted_rand_index(
        tree_based.labels_, brute.labels_
    ) == pytest.approx(1.0)
    assert np.array_equal(
        tree_based.core_sample_indices_, brute.core_sample_indices_
    )


def test_dbscan_validation(blobs):
    data, __ = blobs
    with pytest.raises(MiningError):
        DBSCAN(eps=0.0)
    with pytest.raises(MiningError):
        DBSCAN(eps=1.0, min_samples=0)
    with pytest.raises(NotFittedError):
        DBSCAN(eps=1.0).n_clusters()
    with pytest.raises(NotFittedError):
        DBSCAN(eps=1.0).noise_ratio()
