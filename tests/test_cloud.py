"""Tests for execution backends and the parameter sweep service."""

import time

import pytest

from repro.cloud import (
    ParameterSweep,
    ProcessPoolExecutorBackend,
    SerialExecutor,
    SimulatedClusterExecutor,
    TaskFailure,
    TaskSpec,
    ThreadPoolExecutorBackend,
    expand_grid,
    make_executor,
    run_chunked,
)
from repro.exceptions import ReproError


# Module-level task bodies: process backends pickle tasks, so they must
# be importable (closures and lambdas are not).
def _square(x):
    return x * x


def _add(a, b=0):
    return a + b


def _raise_for_two(x):
    if x == 2:
        raise ValueError("two is out")
    return x


class _UnpicklableError(Exception):
    def __reduce__(self):
        raise TypeError("cannot pickle this exception")


def _raise_unpicklable():
    raise _UnpicklableError("opaque")


def test_serial_preserves_order():
    result = SerialExecutor().run([lambda i=i: i * i for i in range(6)])
    assert result.results == [0, 1, 4, 9, 16, 25]
    assert result.n_failures == 0
    assert result.wall_seconds >= 0


def test_serial_captures_failures():
    def boom():
        raise ValueError("no")

    result = SerialExecutor().run([lambda: 1, boom, lambda: 3])
    assert result.n_failures == 1
    assert isinstance(result.results[1], TaskFailure)
    assert result.successes() == [1, 3]
    assert isinstance(result.results[1].error, ValueError)


def test_threadpool_preserves_order():
    backend = ThreadPoolExecutorBackend(max_workers=4)
    result = backend.run([lambda i=i: i for i in range(20)])
    assert result.results == list(range(20))


def test_threadpool_captures_failures():
    def boom():
        raise RuntimeError("x")

    backend = ThreadPoolExecutorBackend(max_workers=2)
    result = backend.run([boom, lambda: "ok"])
    assert result.n_failures == 1
    assert result.successes() == ["ok"]


def test_threadpool_validation():
    with pytest.raises(ReproError):
        ThreadPoolExecutorBackend(max_workers=0)


def test_simulated_cluster_reports_makespan():
    executor = SimulatedClusterExecutor(n_workers=2, dispatch_latency=0.0)
    result = executor.run([lambda: time.sleep(0.01) for __ in range(4)])
    assert result.simulated_seconds is not None
    # 4 tasks of ~10ms on 2 workers -> makespan ~20ms < serial ~40ms.
    assert result.simulated_seconds < result.wall_seconds


def test_simulate_makespan_exact():
    executor = SimulatedClusterExecutor(n_workers=2, dispatch_latency=0.0)
    # Greedy in submission order: w0 gets 3, w1 gets 2 then 1 (earliest
    # available), final 2 goes to w0 -> makespan 5.
    assert executor.simulate_makespan([3, 2, 1, 2]) == pytest.approx(5.0)


def test_simulated_cluster_latency_added():
    executor = SimulatedClusterExecutor(n_workers=1, dispatch_latency=0.5)
    assert executor.simulate_makespan([1.0, 1.0]) == pytest.approx(3.0)


def test_simulated_cluster_validation():
    with pytest.raises(ReproError):
        SimulatedClusterExecutor(n_workers=0)
    with pytest.raises(ReproError):
        SimulatedClusterExecutor(dispatch_latency=-1)


def test_make_executor_dispatch():
    assert isinstance(make_executor("serial"), SerialExecutor)
    assert isinstance(
        make_executor("threads", max_workers=2), ThreadPoolExecutorBackend
    )
    assert isinstance(
        make_executor("process", workers=2), ProcessPoolExecutorBackend
    )
    with pytest.raises(ReproError):
        make_executor("quantum")


# ----------------------------------------------------------------------
# TaskSpec and the process backend
# ----------------------------------------------------------------------
def test_taskspec_is_callable():
    assert TaskSpec(_square, (4,))() == 16
    assert TaskSpec(_add, (1,), {"b": 2})() == 3
    assert TaskSpec(_add, (5,))() == 5  # kwargs default to none


def test_taskspec_runs_on_every_backend():
    tasks = [TaskSpec(_square, (i,)) for i in range(5)]
    expected = [0, 1, 4, 9, 16]
    assert SerialExecutor().run(tasks).results == expected
    assert ThreadPoolExecutorBackend(2).run(tasks).results == expected
    assert ProcessPoolExecutorBackend(workers=2).run(tasks).results == (
        expected
    )


def test_process_backend_preserves_order():
    backend = ProcessPoolExecutorBackend(workers=2)
    result = backend.run([TaskSpec(_square, (i,)) for i in range(8)])
    assert result.results == [i * i for i in range(8)]
    assert result.n_failures == 0


def test_process_backend_captures_failures_in_slot():
    backend = ProcessPoolExecutorBackend(workers=2)
    result = backend.run([TaskSpec(_raise_for_two, (i,)) for i in range(4)])
    assert result.n_failures == 1
    assert result.successes() == [0, 1, 3]
    failure = result.results[2]
    assert isinstance(failure, TaskFailure)
    assert isinstance(failure.error, ValueError)


def test_process_backend_chunked_dispatch():
    backend = ProcessPoolExecutorBackend(workers=2, chunk_size=3)
    result = backend.run([TaskSpec(_square, (i,)) for i in range(10)])
    assert result.results == [i * i for i in range(10)]


def test_process_backend_unpicklable_task_fails_cleanly():
    # A lambda cannot cross the process boundary; its slot must become a
    # TaskFailure without poisoning the picklable neighbours.
    backend = ProcessPoolExecutorBackend(workers=1)
    result = backend.run(
        [TaskSpec(_square, (3,)), lambda: 1, TaskSpec(_square, (5,))]
    )
    assert result.results[0] == 9
    assert isinstance(result.results[1], TaskFailure)
    assert result.results[2] == 25


def test_process_backend_downgrades_unpicklable_errors():
    backend = ProcessPoolExecutorBackend(workers=1)
    result = backend.run([TaskSpec(_raise_unpicklable)])
    assert result.n_failures == 1
    assert isinstance(result.results[0], TaskFailure)
    assert isinstance(result.results[0].error, ReproError)
    assert "_UnpicklableError" in str(result.results[0].error)


def test_process_backend_validation():
    with pytest.raises(ReproError):
        ProcessPoolExecutorBackend(workers=0)
    with pytest.raises(ReproError):
        ProcessPoolExecutorBackend(chunk_size=0)


def test_run_chunked_flattens_in_item_order():
    for executor in (
        SerialExecutor(),
        ProcessPoolExecutorBackend(workers=2),
    ):
        outcome = run_chunked(executor, _square, list(range(7)), chunk_size=3)
        assert outcome.results == [i * i for i in range(7)]
        assert outcome.n_failures == 0


def test_run_chunked_keeps_per_item_failures():
    outcome = run_chunked(
        SerialExecutor(), _raise_for_two, [0, 1, 2, 3], chunk_size=2
    )
    assert outcome.n_failures == 1
    assert outcome.successes() == [0, 1, 3]
    assert isinstance(outcome.results[2], TaskFailure)


def test_run_chunked_validation():
    with pytest.raises(ReproError):
        run_chunked(SerialExecutor(), _square, [1], chunk_size=0)


# ----------------------------------------------------------------------
# parameter sweep
# ----------------------------------------------------------------------
def test_expand_grid_cartesian():
    combos = expand_grid({"a": [1, 2], "b": ["x", "y", "z"]})
    assert len(combos) == 6
    assert {"a": 1, "b": "x"} in combos
    assert {"a": 2, "b": "z"} in combos


def test_expand_grid_empty_raises():
    with pytest.raises(ReproError):
        expand_grid({})


def test_sweep_evaluates_every_point():
    sweep = ParameterSweep(lambda a, b: a * b)
    points = sweep.run({"a": [1, 2, 3], "b": [10, 100]})
    assert len(points) == 6
    values = {(p.params["a"], p.params["b"]): p.value for p in points}
    assert values[(3, 100)] == 300


def test_sweep_best_maximize_and_minimize():
    sweep = ParameterSweep(lambda x: (x - 3) ** 2)
    best = sweep.best({"x": [0, 1, 2, 3, 4]}, key=float, maximize=False)
    assert best.params["x"] == 3
    worst = sweep.best({"x": [0, 1, 2, 3, 4]}, key=float, maximize=True)
    assert worst.params["x"] == 0


def test_sweep_best_skips_failures():
    def sometimes(x):
        if x == 2:
            raise ValueError("bad point")
        return x

    sweep = ParameterSweep(sometimes)
    best = sweep.best({"x": [1, 2]}, key=float)
    assert best.params["x"] == 1


def test_sweep_all_failed_raises():
    def always(x):
        raise ValueError()

    with pytest.raises(ReproError):
        ParameterSweep(always).best({"x": [1]}, key=float)


def test_sweep_with_thread_backend():
    sweep = ParameterSweep(
        lambda x: x + 1, executor=ThreadPoolExecutorBackend(2)
    )
    points = sweep.run({"x": list(range(10))})
    assert [p.value for p in points] == list(range(1, 11))


# ----------------------------------------------------------------------
# executor shutdown + per-task telemetry
# ----------------------------------------------------------------------
def _sleep_briefly():
    time.sleep(0.5)
    return 1


def _raise_keyboard_interrupt():
    raise KeyboardInterrupt()


def test_process_backend_interrupt_does_not_orphan_workers():
    """A KeyboardInterrupt mid-run must cancel queued chunks and join
    the pool instead of silently draining every pending task."""
    import multiprocessing

    backend = ProcessPoolExecutorBackend(workers=1)
    tasks = [TaskSpec(_raise_keyboard_interrupt)] + [
        TaskSpec(_sleep_briefly) for _ in range(8)
    ]
    started = time.perf_counter()
    with pytest.raises(KeyboardInterrupt):
        backend.run(tasks)
    elapsed = time.perf_counter() - started
    # 8 pending half-second chunks on one worker would take ~4s if they
    # were drained; cancellation leaves at most one in flight.
    assert elapsed < 3.0
    deadline = time.time() + 5.0
    while multiprocessing.active_children() and time.time() < deadline:
        time.sleep(0.05)
    assert not multiprocessing.active_children()


def test_serial_reports_task_seconds():
    result = SerialExecutor().run([TaskSpec(_square, (3,))] * 4)
    assert result.task_seconds is not None
    assert len(result.task_seconds) == 4
    assert all(seconds >= 0.0 for seconds in result.task_seconds)


def test_threadpool_reports_task_and_queue_seconds():
    backend = ThreadPoolExecutorBackend(max_workers=2)
    result = backend.run([TaskSpec(_square, (i,)) for i in range(6)])
    assert len(result.task_seconds) == 6
    assert len(result.queue_seconds) == 6
    assert all(seconds >= 0.0 for seconds in result.queue_seconds)


def test_process_backend_reports_worker_timings():
    backend = ProcessPoolExecutorBackend(workers=2, chunk_size=2)
    result = backend.run([TaskSpec(_square, (i,)) for i in range(6)])
    assert [r for r in result.results] == [0, 1, 4, 9, 16, 25]
    assert len(result.task_seconds) == 6
    assert all(seconds is not None for seconds in result.task_seconds)
    # One queue-latency sample per delivered chunk.
    assert len(result.queue_seconds) == 3
    assert all(seconds >= 0.0 for seconds in result.queue_seconds)


def test_executor_metrics_recording():
    from repro.obs import Metrics

    metrics = Metrics()
    SerialExecutor(metrics=metrics).run(
        [TaskSpec(_square, (2,)), TaskSpec(_raise_for_two, (2,))]
    )
    snapshot = metrics.snapshot()
    assert snapshot["histograms"]["executor.task_seconds"]["count"] == 2
    assert snapshot["counters"]["executor.task_failures"] == 1


def test_process_backend_failed_task_has_no_timing():
    backend = ProcessPoolExecutorBackend(workers=2)
    result = backend.run([TaskSpec(_raise_unpicklable)])
    assert isinstance(result.results[0], TaskFailure)
    # The task ran (and raised) in the worker: it still has a duration.
    assert result.task_seconds[0] is not None
