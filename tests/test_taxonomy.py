"""Tests for the examination-type taxonomy."""

import pytest

from repro.data.taxonomy import (
    CATEGORIES,
    METABOLIC,
    PAPER_EXAM_TYPE_COUNT,
    ROUTINE,
    ExamTaxonomy,
    ExamType,
    build_default_taxonomy,
    category_shares,
)
from repro.exceptions import DataError


def test_default_taxonomy_has_paper_size():
    taxonomy = build_default_taxonomy()
    assert len(taxonomy) == PAPER_EXAM_TYPE_COUNT == 159


def test_codes_are_dense_and_stable():
    taxonomy = build_default_taxonomy()
    codes = sorted(exam.code for exam in taxonomy)
    assert codes == list(range(159))


def test_names_are_unique():
    taxonomy = build_default_taxonomy()
    names = [exam.name for exam in taxonomy]
    assert len(set(names)) == len(names)


def test_every_category_is_populated():
    taxonomy = build_default_taxonomy()
    for category in CATEGORIES:
        assert taxonomy.codes_in_category(category)


def test_head_ranks_are_generic_care():
    """The top 20% of ranks hold only routine/metabolic exams."""
    taxonomy = build_default_taxonomy()
    head = sorted(taxonomy, key=lambda exam: exam.rank)[:32]
    assert {exam.category for exam in head} <= {ROUTINE, METABOLIC}


def test_band_ranks_hold_complication_exams():
    """Ranks 32-63 are dominated by complication categories."""
    taxonomy = build_default_taxonomy()
    band = sorted(taxonomy, key=lambda exam: exam.rank)[32:64]
    complication = [
        exam
        for exam in band
        if exam.category not in (ROUTINE, METABOLIC)
    ]
    assert len(complication) == len(band)


def test_by_code_and_by_name_roundtrip():
    taxonomy = build_default_taxonomy()
    exam = taxonomy.by_code(0)
    assert taxonomy.by_name(exam.name) is exam


def test_by_code_unknown_raises():
    taxonomy = build_default_taxonomy()
    with pytest.raises(DataError):
        taxonomy.by_code(999)


def test_by_name_unknown_raises():
    taxonomy = build_default_taxonomy()
    with pytest.raises(DataError):
        taxonomy.by_name("no such exam")


def test_codes_in_unknown_category_raises():
    taxonomy = build_default_taxonomy()
    with pytest.raises(DataError):
        taxonomy.codes_in_category("astrology")


def test_ranked_codes_order():
    taxonomy = build_default_taxonomy()
    ranked = taxonomy.ranked_codes()
    ranks = [taxonomy.by_code(code).rank for code in ranked]
    assert ranks == sorted(ranks)


def test_parent_map_covers_all_exams():
    taxonomy = build_default_taxonomy()
    parent = taxonomy.parent_map()
    assert len(parent) == len(taxonomy)
    assert set(parent.values()) <= set(CATEGORIES)


def test_scaled_taxonomy_sizes():
    for n in (20, 40, 80, 200):
        assert len(build_default_taxonomy(n)) == n


def test_too_small_taxonomy_raises():
    with pytest.raises(DataError):
        build_default_taxonomy(3)


def test_explicit_quotas_must_sum():
    with pytest.raises(DataError):
        build_default_taxonomy(10, quotas={ROUTINE: 5})


def test_duplicate_names_rejected():
    exams = [
        ExamType(code=0, name="x", category=ROUTINE, rank=0),
        ExamType(code=1, name="x", category=ROUTINE, rank=1),
    ]
    with pytest.raises(DataError):
        ExamTaxonomy(exam_types=exams)


def test_non_dense_codes_rejected():
    exams = [
        ExamType(code=0, name="x", category=ROUTINE, rank=0),
        ExamType(code=2, name="y", category=ROUTINE, rank=1),
    ]
    with pytest.raises(DataError):
        ExamTaxonomy(exam_types=exams)


def test_category_shares_sum_to_one():
    taxonomy = build_default_taxonomy()
    shares = category_shares(taxonomy)
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    assert all(share > 0 for share in shares.values())


def test_category_of_matches_exam():
    taxonomy = build_default_taxonomy()
    for exam in list(taxonomy)[:10]:
        assert taxonomy.category_of(exam.code) == exam.category
