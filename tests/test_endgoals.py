"""Tests for viable end-goal identification and interest prediction."""

import numpy as np
import pytest

from repro.core import (
    DEFAULT_END_GOALS,
    EndGoal,
    EndGoalInterestModel,
    ViableEndGoalFinder,
)
from repro.exceptions import EndGoalError
from repro.preprocess import characterize_log, characterize_matrix


@pytest.fixture(scope="module")
def profile(small_log):
    return characterize_log(small_log)


def test_default_registry_names_unique():
    names = [goal.name for goal in DEFAULT_END_GOALS]
    assert len(set(names)) == len(names)
    assert "patient-segmentation" in names


def test_all_goals_viable_on_paper_like_data(profile):
    finder = ViableEndGoalFinder()
    viable = finder.viable(profile)
    assert {goal.name for goal in viable} == {
        goal.name for goal in DEFAULT_END_GOALS
    }


def test_assess_gives_reasons(profile):
    finder = ViableEndGoalFinder()
    for assessment in finder.assess(profile):
        assert assessment.reason


def test_tiny_cohort_blocks_clustering():
    matrix = np.ones((10, 5))
    profile = characterize_matrix(matrix)
    finder = ViableEndGoalFinder()
    names = {goal.name for goal in finder.viable(profile)}
    assert "patient-segmentation" not in names
    assert "outlier-screening" not in names


def test_dense_data_blocks_pattern_mining():
    rng = np.random.default_rng(0)
    matrix = rng.uniform(1, 2, size=(100, 10))  # fully dense
    profile = characterize_matrix(matrix)
    finder = ViableEndGoalFinder()
    names = {goal.name for goal in finder.viable(profile)}
    assert "co-prescription-patterns" not in names
    assert "care-pathway-rules" not in names


def test_uniform_frequencies_block_category_profiles():
    matrix = np.eye(100)  # sparse but perfectly uniform frequencies
    profile = characterize_matrix(matrix)
    finder = ViableEndGoalFinder()
    names = {goal.name for goal in finder.viable(profile)}
    assert "exam-category-profiles" not in names


def test_by_name_lookup():
    finder = ViableEndGoalFinder()
    assert finder.by_name("outlier-screening").kind == "outlier_set"
    with pytest.raises(EndGoalError):
        finder.by_name("world-domination")


def test_empty_registry_raises():
    with pytest.raises(EndGoalError):
        ViableEndGoalFinder(goals=[])


def test_duplicate_goal_names_raise():
    goal = DEFAULT_END_GOALS[0]
    with pytest.raises(EndGoalError):
        ViableEndGoalFinder(goals=[goal, goal])


# ----------------------------------------------------------------------
# interest model
# ----------------------------------------------------------------------
def goal_by_name(name):
    return ViableEndGoalFinder().by_name(name)


def test_neutral_prior_without_data(profile):
    model = EndGoalInterestModel([g.name for g in DEFAULT_END_GOALS])
    probability = model.interest_probability(
        goal_by_name("patient-segmentation"), profile
    )
    assert probability == pytest.approx(0.5)


def test_needs_both_classes_to_fit(profile):
    model = EndGoalInterestModel([g.name for g in DEFAULT_END_GOALS])
    goal = goal_by_name("patient-segmentation")
    for __ in range(5):
        model.record_interaction(goal, profile, True)
    # Only positive examples: still the neutral prior.
    assert model.interest_probability(goal, profile) == pytest.approx(0.5)


def test_learns_simple_preference(profile):
    model = EndGoalInterestModel([g.name for g in DEFAULT_END_GOALS])
    liked = goal_by_name("patient-segmentation")
    disliked = goal_by_name("outlier-screening")
    for __ in range(10):
        model.record_interaction(liked, profile, True)
        model.record_interaction(disliked, profile, False)
    assert model.interest_probability(liked, profile) > 0.8
    assert model.interest_probability(disliked, profile) < 0.2


def test_rank_goals_orders_by_interest(profile):
    model = EndGoalInterestModel([g.name for g in DEFAULT_END_GOALS])
    liked = goal_by_name("care-pathway-rules")
    disliked = goal_by_name("outlier-screening")
    for __ in range(8):
        model.record_interaction(liked, profile, True)
        model.record_interaction(disliked, profile, False)
    ranked = model.rank_goals([disliked, liked], profile)
    assert ranked[0][0].name == "care-pathway-rules"
    assert ranked[0][1] >= ranked[1][1]


def test_accuracy_improves_with_interactions(profile):
    """The paper's claim: more interactions -> better predictions."""
    rng = np.random.default_rng(0)
    goals = [goal_by_name(g.name) for g in DEFAULT_END_GOALS]
    preferred = {"patient-segmentation", "care-pathway-rules"}

    def truth(goal):
        return goal.name in preferred

    holdout = [(g, profile, truth(g)) for g in goals]

    few = EndGoalInterestModel([g.name for g in DEFAULT_END_GOALS])
    many = EndGoalInterestModel([g.name for g in DEFAULT_END_GOALS])
    for i in range(40):
        goal = goals[int(rng.integers(len(goals)))]
        if i < 2:
            few.record_interaction(goal, profile, truth(goal))
        many.record_interaction(goal, profile, truth(goal))
    assert many.accuracy_on(holdout) >= few.accuracy_on(holdout)
    assert many.accuracy_on(holdout) == pytest.approx(1.0)


def test_n_interactions_counter(profile):
    model = EndGoalInterestModel(["a-goal"])
    assert model.n_interactions == 0
    goal = goal_by_name("patient-segmentation")
    model.record_interaction(goal, profile, True)
    assert model.n_interactions == 1


def test_empty_goal_names_raises():
    with pytest.raises(EndGoalError):
        EndGoalInterestModel([])


def test_accuracy_on_empty_raises(profile):
    model = EndGoalInterestModel(["x"])
    with pytest.raises(EndGoalError):
        model.accuracy_on([])
