"""Shared fixtures: small synthetic datasets and toy matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import ExamLog, ExamRecord, PatientInfo, small_dataset
from repro.data.taxonomy import build_default_taxonomy


@pytest.fixture(scope="session")
def small_log() -> ExamLog:
    """A 300-patient, 40-exam synthetic log (session-cached)."""
    return small_dataset(seed=11)


@pytest.fixture(scope="session")
def tiny_log() -> ExamLog:
    """A very small log for fast structural tests."""
    return small_dataset(
        n_patients=60, n_exam_types=20, target_records=800, seed=3
    )


@pytest.fixture()
def handmade_log() -> ExamLog:
    """A tiny hand-written log with known counts.

    Patient 1: exam 0 twice (days 1, 2), exam 1 once (day 1).
    Patient 2: exam 1 once (day 5).
    Patient 3: exam 2 three times (days 0, 10, 20).
    """
    taxonomy = build_default_taxonomy(8)
    records = [
        ExamRecord(patient_id=1, day=1, exam_code=0),
        ExamRecord(patient_id=1, day=2, exam_code=0),
        ExamRecord(patient_id=1, day=1, exam_code=1),
        ExamRecord(patient_id=2, day=5, exam_code=1),
        ExamRecord(patient_id=3, day=0, exam_code=2),
        ExamRecord(patient_id=3, day=10, exam_code=2),
        ExamRecord(patient_id=3, day=20, exam_code=2),
    ]
    patients = [
        PatientInfo(patient_id=1, age=60),
        PatientInfo(patient_id=2, age=45),
        PatientInfo(patient_id=3, age=70),
    ]
    return ExamLog(records, taxonomy=taxonomy, patients=patients)


@pytest.fixture(scope="session")
def blobs():
    """Three well-separated Gaussian blobs: (data, true labels)."""
    rng = np.random.default_rng(0)
    data = np.vstack(
        [rng.normal(center, 0.4, size=(60, 5)) for center in (0.0, 4.0, 8.0)]
    )
    labels = np.repeat([0, 1, 2], 60)
    return data, labels


@pytest.fixture(scope="session")
def transactions():
    """Small transaction database with known supports (9 baskets)."""
    return [
        ["a", "b", "c"],
        ["a", "b"],
        ["a", "c"],
        ["b", "c"],
        ["a", "b", "c", "d"],
        ["b", "d"],
        ["a"],
        ["c", "d"],
        ["a", "b", "c"],
    ]
