"""Tests for the purity-certificate layer and the ADA019-022 rules.

Covers: deterministic, byte-stable emission of the
``adalint/certificates/v1`` artifact (including the committed
``contracts/certificates.json`` reproducing exactly), the normalised
code hash (blind to whitespace, sensitive to semantics), the phase
closure fingerprints, bad/good fixtures for ADA019-ADA022, SARIF
baseline diffs, and the per-rule profiling counters.
"""

import json
import textwrap
from pathlib import Path

import pytest

from repro.lint import LintConfig, lint_paths, lint_source
from repro.lint.baseline import (
    baseline_index,
    diff_findings,
    load_baseline,
)
from repro.lint.certs import (
    CERTS_RELPATH,
    CERTS_SCHEMA,
    PHASE_ENTRY_POINTS,
    emit_certificates,
    function_hashes,
    load_artifact,
    phase_fingerprint,
)
from repro.lint.cli import main as lint_main
from repro.lint.findings import (
    FINGERPRINT_KEY,
    Finding,
    finding_fingerprint,
    sarif_document,
)
from repro.lint.graph import ProjectGraph, extract_summary
from repro.lint.rules_certs import (
    DeterminismTaint,
    OperatorContract,
    SchemaDrift,
)

pytestmark = pytest.mark.lint

REPO_ROOT = Path(__file__).resolve().parents[1]

_PROJECT_SOURCE = '''\
"""A module certified by the test project."""


def pure(x):
    return x + 1


def caller(x):
    return pure(x) * 2
'''


def _make_project(tmp_path: Path) -> Path:
    """A tiny src-layout project emit_certificates can certify."""
    (tmp_path / "pyproject.toml").write_text(
        '[project]\nname = "demo"\n', encoding="utf-8"
    )
    package = tmp_path / "src" / "pkg"
    package.mkdir(parents=True)
    (package / "__init__.py").write_text("", encoding="utf-8")
    (package / "mod.py").write_text(_PROJECT_SOURCE, encoding="utf-8")
    return tmp_path


def run_rule(rule_class, source, **kwargs):
    return lint_source(
        textwrap.dedent(source), rules=[rule_class], **kwargs
    )


# ----------------------------------------------------------------------
# Artifact determinism and the normalised code hash
# ----------------------------------------------------------------------
def test_emission_is_deterministic_and_byte_stable(tmp_path):
    root = _make_project(tmp_path)
    first_doc, first_text = emit_certificates(root)
    second_doc, second_text = emit_certificates(root)
    assert first_text == second_text
    assert first_doc["artifact_hash"] == second_doc["artifact_hash"]
    assert first_doc["schema"] == CERTS_SCHEMA
    assert set(first_doc["functions"]) == {
        "pkg.mod:pure", "pkg.mod:caller",
    }
    cert = first_doc["functions"]["pkg.mod:caller"]
    assert cert["complete"] is True
    assert cert["determinism"] == "seeded"
    assert cert["effect_free"] is True
    assert cert["picklable"] is True


def test_load_artifact_round_trips(tmp_path):
    root = _make_project(tmp_path)
    document, text = emit_certificates(root)
    target = root / CERTS_RELPATH
    target.parent.mkdir()
    target.write_text(text, encoding="utf-8")
    loaded = load_artifact(target)
    assert loaded == document
    assert load_artifact(root / "nope.json") is None
    target.write_text("not json", encoding="utf-8")
    assert load_artifact(target) is None


def test_committed_artifact_reproduces_byte_identically():
    """The CI acceptance gate: re-emission matches the committed file."""
    committed = REPO_ROOT / CERTS_RELPATH
    assert committed.is_file(), (
        "contracts/certificates.json missing; run"
        " `repro lint --emit-certs`"
    )
    document, text = emit_certificates(REPO_ROOT)
    assert committed.read_text(encoding="utf-8") == text
    assert (
        load_artifact(committed)["artifact_hash"]
        == document["artifact_hash"]
    )


def test_committed_artifact_certifies_every_phase():
    artifact = load_artifact(REPO_ROOT / CERTS_RELPATH)
    assert set(artifact["phases"]) == set(PHASE_ENTRY_POINTS)
    for phase, record in artifact["phases"].items():
        assert record["exists"] is True, phase
        assert record["fingerprint"]
        assert record["members"] > 0


def test_code_hash_blind_to_whitespace_not_semantics():
    base = "def f(x):\n    return x + 1\n"
    reformatted = "def f(x):   \n\n    return x + 1\n\n"
    edited = "def f(x):\n    return x + 2\n"
    assert function_hashes(base) == function_hashes(reformatted)
    assert (
        function_hashes(base)["f"] != function_hashes(edited)["f"]
    )


def _caller_fingerprint(source: str) -> str:
    summary = extract_summary(source, "src/m.py", "m")
    graph = ProjectGraph([summary])
    return phase_fingerprint(
        graph, "m:caller", {"m": function_hashes(source)}
    )


def test_phase_fingerprint_tracks_the_whole_closure():
    base = (
        "def helper(x):\n    return x + 1\n\n"
        "def caller(x):\n    return helper(x)\n"
    )
    reformatted = base.replace("return x + 1", "return x + 1   ")
    callee_edit = base.replace("return x + 1", "return x - 1")
    assert _caller_fingerprint(base) == _caller_fingerprint(reformatted)
    # editing a *callee* changes the entry's closure fingerprint
    assert _caller_fingerprint(base) != _caller_fingerprint(callee_edit)


# ----------------------------------------------------------------------
# ADA019 — operator contracts for scheduled code
# ----------------------------------------------------------------------
def test_ada019_reports_holed_submission():
    findings = run_rule(
        OperatorContract,
        """
        from repro.cloud import TaskSpec

        def holed(fn, x):
            return fn(x)

        def schedule(items):
            return [TaskSpec(holed, (len, i)) for i in items]
        """,
    )
    assert [f.rule_id for f in findings] == ["ADA019"]
    assert "incomplete certificate" in findings[0].message


def test_ada019_reports_unresolvable_submission():
    findings = run_rule(
        OperatorContract,
        """
        def schedule(executor, items):
            from repro.cloud.executor import run_chunked

            return run_chunked(executor, mystery_worker, items)
        """,
    )
    assert [f.rule_id for f in findings] == ["ADA019"]
    assert "cannot be certified" in findings[0].message


def test_ada019_accepts_certifiable_submission():
    findings = run_rule(
        OperatorContract,
        """
        from repro.cloud import TaskSpec

        def worker(x):
            return x * 2

        def schedule(items):
            return [TaskSpec(worker, (i,)) for i in items]
        """,
    )
    assert findings == []


def test_ada019_checks_phase_entry_points():
    missing = run_rule(
        OperatorContract,
        """
        def unrelated():
            return 1
        """,
        path="src/repro/core/ranking.py",
    )
    assert [f.rule_id for f in missing] == ["ADA019"]
    assert "phase entry point" in missing[0].message

    present = run_rule(
        OperatorContract,
        """
        class KnowledgeRanker:
            def rank(self, items):
                return sorted(items)
        """,
        path="src/repro/core/ranking.py",
    )
    assert present == []


# ----------------------------------------------------------------------
# ADA020 — determinism taint into persistence sinks
# ----------------------------------------------------------------------
_TAINTED_PERSIST = """
    import time

    def snapshot():
        return {"at": time.time()}

    def persist(kb, doc):
        stamped = dict(doc, stamp=snapshot())
        return kb.record_run(stamped)
    """


def test_ada020_reports_tainted_persistence():
    findings = run_rule(DeterminismTaint, _TAINTED_PERSIST)
    assert [f.rule_id for f in findings] == ["ADA020"]
    assert "record_run" in findings[0].message
    assert "determinism-tainted" in findings[0].message


def test_ada020_accepts_untainted_persistence():
    findings = run_rule(
        DeterminismTaint,
        """
        def persist(kb, doc):
            return kb.record_run(dict(doc, stamp=0))
        """,
    )
    assert findings == []


def test_ada020_sanctions_the_manifest_module():
    # The same tainted flow inside repro.obs.manifest is the blessed
    # clock-to-artifact path (started_at/finished_at/wall_s).
    findings = run_rule(
        DeterminismTaint,
        _TAINTED_PERSIST,
        path="src/repro/obs/manifest.py",
    )
    assert findings == []


# ----------------------------------------------------------------------
# ADA021 — schema drift against the contract registry
# ----------------------------------------------------------------------
def test_ada021_reports_unknown_field_in_tagged_literal():
    findings = run_rule(
        SchemaDrift,
        """
        ARTIFACT = {
            "schema": "adalint/certificates/v1",
            "ruleset": "adalint/5",
            "functions": {},
            "phases": {},
            "artifact_hash": "abc",
            "emitted_at": "2026-08-08",
        }
        """,
    )
    assert [f.rule_id for f in findings] == ["ADA021"]
    assert "'emitted_at'" in findings[0].message


def test_ada021_accepts_contract_conforming_literal():
    findings = run_rule(
        SchemaDrift,
        """
        ARTIFACT = {
            "schema": "adalint/certificates/v1",
            "ruleset": "adalint/5",
            "functions": {},
            "phases": {},
            "artifact_hash": "abc",
        }
        """,
    )
    assert findings == []


# ----------------------------------------------------------------------
# ADA022 — stale certificates (needs a real project on disk)
# ----------------------------------------------------------------------
def _emit_into(root: Path) -> Path:
    _document, text = emit_certificates(root)
    target = root / CERTS_RELPATH
    target.parent.mkdir(exist_ok=True)
    target.write_text(text, encoding="utf-8")
    return target


def _ada022(root: Path):
    report = lint_paths(
        [root / "src"], root=root, select=["ADA022"]
    )
    return report.findings


def test_ada022_ignores_whitespace_but_catches_semantic_drift(tmp_path):
    root = _make_project(tmp_path)
    _emit_into(root)
    module = root / "src" / "pkg" / "mod.py"
    assert _ada022(root) == []

    # whitespace-only edit: certificate still valid
    module.write_text(
        module.read_text(encoding="utf-8").replace(
            "return x + 1", "return x + 1  "
        ),
        encoding="utf-8",
    )
    assert _ada022(root) == []

    # semantic edit without re-emission: stale certificate
    module.write_text(
        module.read_text(encoding="utf-8").replace(
            "x + 1", "x + 2"
        ),
        encoding="utf-8",
    )
    findings = _ada022(root)
    assert [f.rule_id for f in findings] == ["ADA022"]
    assert "stale" in findings[0].message

    # re-emission clears it
    _emit_into(root)
    assert _ada022(root) == []


def test_ada022_reports_added_and_removed_functions(tmp_path):
    root = _make_project(tmp_path)
    _emit_into(root)
    module = root / "src" / "pkg" / "mod.py"

    source = module.read_text(encoding="utf-8")
    module.write_text(
        source + "\n\ndef fresh(y):\n    return y\n", encoding="utf-8"
    )
    findings = _ada022(root)
    assert [f.rule_id for f in findings] == ["ADA022"]
    assert "no certificate" in findings[0].message

    module.write_text(
        source.replace(
            "def caller(x):\n    return pure(x) * 2\n", ""
        ),
        encoding="utf-8",
    )
    findings = _ada022(root)
    assert any(
        "no longer exists" in finding.message for finding in findings
    )


def test_ada022_disabled_without_an_artifact(tmp_path):
    root = _make_project(tmp_path)
    assert _ada022(root) == []  # degradation, not failure


# ----------------------------------------------------------------------
# SARIF baseline diffs
# ----------------------------------------------------------------------
def test_baseline_diff_is_content_relative():
    old = Finding(
        path="src/a.py", line=3, col=5, rule_id="ADA005",
        message="no bare assert",
    )
    sources = {"src/a.py": ["", "", "    assert x"]}
    baseline = sarif_document([old], sources=sources)

    # same finding, moved four lines down by an insertion above it
    moved = Finding(
        path="src/a.py", line=7, col=5, rule_id="ADA005",
        message="no bare assert",
    )
    moved_sources = {"src/a.py": [""] * 6 + ["    assert x"]}
    fresh_finding = Finding(
        path="src/a.py", line=1, col=1, rule_id="ADA001",
        message="unseeded rng",
    )
    fresh = diff_findings(
        [moved, fresh_finding], baseline, moved_sources
    )
    assert fresh == [fresh_finding]


def test_baseline_without_fingerprints_matches_exact_position():
    old = Finding(
        path="src/a.py", line=3, col=5, rule_id="ADA005",
        message="no bare assert",
    )
    baseline = sarif_document([old])  # no sources -> no fingerprints
    fingerprints, triples = baseline_index(baseline)
    assert fingerprints == set()
    assert triples == {("ADA005", "src/a.py", 3)}

    same_place = diff_findings([old], baseline)
    assert same_place == []
    moved = Finding(
        path="src/a.py", line=7, col=5, rule_id="ADA005",
        message="no bare assert",
    )
    assert diff_findings([moved], baseline) == [moved]


def test_fingerprint_ignores_line_number_and_message():
    at_three = Finding(
        path="src/a.py", line=3, col=5, rule_id="ADA005",
        message="no bare assert (line 3)",
    )
    at_nine = Finding(
        path="src/a.py", line=9, col=5, rule_id="ADA005",
        message="no bare assert (line 9)",
    )
    assert finding_fingerprint(
        at_three, "    assert x"
    ) == finding_fingerprint(at_nine, "  assert x  ")


def test_load_baseline_degrades_on_garbage(tmp_path):
    missing = tmp_path / "nope.sarif"
    assert load_baseline(missing) is None
    bad = tmp_path / "bad.sarif"
    bad.write_text("{not json", encoding="utf-8")
    assert load_baseline(bad) is None
    wrong_shape = tmp_path / "shape.sarif"
    wrong_shape.write_text('{"runs": 3}', encoding="utf-8")
    assert load_baseline(wrong_shape) is None


def test_cli_baseline_reports_only_new_findings(
    tmp_path, capsys, monkeypatch
):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x):\n    assert x\n", encoding="utf-8")
    assert lint_main(["--format", "sarif", "bad.py"]) == 1
    baseline = tmp_path / "baseline.sarif"
    baseline.write_text(capsys.readouterr().out, encoding="utf-8")
    results = json.loads(baseline.read_text(encoding="utf-8"))[
        "runs"
    ][0]["results"]
    assert [r["ruleId"] for r in results] == ["ADA005"]
    assert all(FINGERPRINT_KEY in r["partialFingerprints"] for r in results)

    # nothing new since the baseline: clean exit, empty run
    assert (
        lint_main(
            ["--format", "sarif", "--baseline", "baseline.sarif",
             "bad.py"]
        )
        == 0
    )
    document = json.loads(capsys.readouterr().out)
    assert document["runs"][0]["results"] == []

    # a new violation: only it is reported, the old one stays quiet
    bad.write_text(
        "def f(x, b=[]):\n    assert x\n", encoding="utf-8"
    )
    assert (
        lint_main(
            ["--format", "sarif", "--baseline", "baseline.sarif",
             "bad.py"]
        )
        == 1
    )
    document = json.loads(capsys.readouterr().out)
    assert [
        r["ruleId"] for r in document["runs"][0]["results"]
    ] == ["ADA004"]


def test_cli_warns_on_unusable_baseline(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    bad = tmp_path / "bad.py"
    bad.write_text("def f(x):\n    assert x\n", encoding="utf-8")
    assert (
        lint_main(["--baseline", "missing.sarif", "bad.py"]) == 1
    )
    captured = capsys.readouterr()
    assert "unusable baseline" in captured.err
    assert "ADA005" in captured.out


# ----------------------------------------------------------------------
# Per-rule profiling
# ----------------------------------------------------------------------
def test_rule_stats_profile_wall_time_and_findings(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text(
        "def f(x, b=[]):\n    assert x\n", encoding="utf-8"
    )
    report = lint_paths([bad], config=LintConfig(), root=tmp_path)
    assert report.rule_stats["ADA005"]["findings"] == 1
    assert report.rule_stats["ADA004"]["findings"] == 1
    for stats in report.rule_stats.values():
        assert stats["wall_s"] >= 0.0
    formatted = report.format_stats()
    assert "ADA005" in formatted and "ms" in formatted


def test_rule_stats_match_across_backends(tmp_path):
    for index in range(3):
        (tmp_path / f"bad{index}.py").write_text(
            "def f(x):\n    assert x\n", encoding="utf-8"
        )
    serial = lint_paths(
        [tmp_path], config=LintConfig(), root=tmp_path
    )
    threaded = lint_paths(
        [tmp_path], config=LintConfig(), root=tmp_path,
        jobs=2, backend="threads",
    )
    assert serial.findings == threaded.findings
    assert {
        rule_id: stats["findings"]
        for rule_id, stats in serial.rule_stats.items()
        if stats["findings"]
    } == {
        rule_id: stats["findings"]
        for rule_id, stats in threaded.rule_stats.items()
        if stats["findings"]
    }


# ----------------------------------------------------------------------
# Default excludes
# ----------------------------------------------------------------------
def test_default_excludes_skip_cache_and_contract_dirs(tmp_path):
    src = tmp_path / "src"
    src.mkdir()
    (src / "ok.py").write_text("VALUE = 1\n", encoding="utf-8")
    bad = "def f(x):\n    assert x\n"
    for name in (".adalint-cache", "contracts"):
        directory = tmp_path / name
        directory.mkdir()
        (directory / "junk.py").write_text(bad, encoding="utf-8")
    report = lint_paths(
        [tmp_path], config=LintConfig(), root=tmp_path
    )
    assert report.findings == []
