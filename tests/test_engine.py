"""Tests for the ADA-HEALTH engine facade."""

import numpy as np
import pytest

from repro.core import ADAHealth, EngineConfig, SimulatedExpert
from repro.exceptions import EndGoalError
from repro.kdb import KnowledgeBase


@pytest.fixture(scope="module")
def engine_and_result(small_log):
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(4, 6),
            partial_fractions=(0.5, 1.0),
            partial_k_values=(4,),
            n_folds=3,
        ),
        seed=0,
    )
    result = engine.analyze(small_log, name="unit-test", user="dr-u")
    return engine, result


def test_all_viable_goals_run(engine_and_result):
    __, result = engine_and_result
    ran = {run.goal.name for run in result.runs}
    viable = {a.goal.name for a in result.assessments if a.viable}
    assert ran == viable


def test_items_ranked_descending(engine_and_result):
    engine, result = engine_and_result
    scores = [engine.ranker.ranking_score(item) for item in result.items]
    assert scores == sorted(scores, reverse=True)


def test_items_have_scores_and_degrees(engine_and_result):
    __, result = engine_and_result
    assert result.items
    for item in result.items:
        assert 0.0 <= item.score <= 1.0
        assert item.degree in ("high", "medium", "low")
        assert item.item_id is not None


def test_segmentation_run_artifacts(engine_and_result):
    __, result = engine_and_result
    run = result.run_for("patient-segmentation")
    assert run.optimization is not None
    assert run.partial is not None
    assert run.optimization.best_k in (4, 6)
    cluster_items = [i for i in run.items if i.kind == "cluster"]
    assert len(cluster_items) == run.optimization.best_k


def test_kdb_populated(engine_and_result):
    engine, result = engine_and_result
    counts = engine.kdb.counts()
    assert counts["raw_datasets"] == 1
    assert counts["descriptors"] == 1
    assert counts["transformed_datasets"] == 1
    assert counts["discovered_knowledge"] == len(result.items)
    assert counts["selected_knowledge"] > 0


def test_run_for_unknown_goal_raises(engine_and_result):
    __, result = engine_and_result
    with pytest.raises(EndGoalError):
        result.run_for("astrology")


def test_top_limits(engine_and_result):
    __, result = engine_and_result
    assert len(result.top(3)) == 3
    assert result.top(3) == result.items[:3]


def test_summary_text(engine_and_result):
    __, result = engine_and_result
    text = result.summary()
    assert "patients" in text
    assert "knowledge items" in text
    assert "patient-segmentation" in text


def test_explicit_goal_selection(small_log):
    engine = ADAHealth(
        config=EngineConfig(min_support=0.2), seed=1
    )
    result = engine.analyze(
        small_log, goals=["co-prescription-patterns"]
    )
    assert {run.goal.name for run in result.runs} == {
        "co-prescription-patterns"
    }
    assert all(item.kind == "itemset" for item in result.items)


def test_unknown_goal_request_raises(small_log):
    engine = ADAHealth(seed=0)
    with pytest.raises(EndGoalError):
        engine.analyze(small_log, goals=["astrology"])


def test_max_goals_cap(small_log):
    engine = ADAHealth(
        config=EngineConfig(
            max_goals=2,
            k_values=(4,),
            partial_fractions=(1.0,),
            partial_k_values=(4,),
            n_folds=3,
        ),
        seed=0,
    )
    result = engine.analyze(small_log)
    assert len(result.runs) == 2


def test_feedback_loop_updates_everything(small_log):
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(4,),
            partial_fractions=(1.0,),
            partial_k_values=(4,),
            n_folds=3,
            max_goals=2,
        ),
        seed=0,
    )
    result = engine.analyze(small_log, user="dr-f")
    session = result.navigate(page_size=5)
    expert = SimulatedExpert(seed=2)
    for item in session.page(0):
        session.give_feedback(item, expert.label(item))
    assert engine.kdb.feedback_count("dr-f") == 5
    # Interest model learns from goal-level feedback.
    engine.record_goal_feedback(
        "patient-segmentation", result.profile, True
    )
    assert engine.interest_model.n_interactions == 1


def test_degree_prediction_kicks_in_after_feedback(small_log):
    """With >= 10 feedback entries, degrees come from the K-DB model."""
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(4,),
            partial_fractions=(1.0,),
            partial_k_values=(4,),
            n_folds=3,
        ),
        seed=0,
    )
    first = engine.analyze(small_log, user="dr-g")
    expert = SimulatedExpert(seed=3)
    session = first.navigate(page_size=15)
    for item in session.page(0):
        session.give_feedback(item, expert.label(item))
    assert engine.kdb.feedback_count() >= 10
    second = engine.analyze(small_log, name="again", user="dr-g")
    assert all(item.degree is not None for item in second.items)


def test_engine_with_external_kdb(small_log, tmp_path):
    kdb = KnowledgeBase()
    engine = ADAHealth(
        kdb=kdb,
        config=EngineConfig(
            k_values=(4,),
            partial_fractions=(1.0,),
            partial_k_values=(4,),
            n_folds=3,
            max_goals=1,
        ),
        seed=0,
    )
    engine.analyze(small_log)
    kdb.save(tmp_path / "kdb")
    reloaded = KnowledgeBase.load(tmp_path / "kdb")
    assert reloaded.counts()["discovered_knowledge"] > 0


def test_deterministic_given_seed(small_log):
    config = EngineConfig(
        k_values=(4,),
        partial_fractions=(1.0,),
        partial_k_values=(4,),
        n_folds=3,
        max_goals=3,
    )
    a = ADAHealth(config=config, seed=9).analyze(small_log)
    b = ADAHealth(config=config, seed=9).analyze(small_log)
    assert [i.title for i in a.items] == [i.title for i in b.items]
    assert [i.score for i in a.items] == [i.score for i in b.items]


def test_auto_transform_selection(small_log):
    """With auto_transform the engine picks the transformation itself
    and records the choice in the K-DB transformation collection."""
    engine = ADAHealth(
        config=EngineConfig(
            k_values=(4,),
            partial_fractions=(1.0,),
            partial_k_values=(4,),
            n_folds=3,
            auto_transform=True,
        ),
        seed=0,
    )
    result = engine.analyze(small_log, goals=["patient-segmentation"])
    stored = engine.kdb.store["transformed_datasets"].find_one({})
    assert stored["auto_selected"] is True
    assert stored["weighting"] in ("count", "binary", "log", "tfidf")
    run = result.run_for("patient-segmentation")
    assert run.items
    assert run.items[1].provenance["weighting"] == stored["weighting"]
