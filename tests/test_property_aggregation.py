"""Property-based tests for the aggregation pipeline."""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kdb.documentstore import DocumentStore

rows = st.lists(
    st.fixed_dictionaries(
        {
            "g": st.sampled_from(["a", "b", "c"]),
            "v": st.integers(-100, 100),
        }
    ),
    min_size=1,
    max_size=30,
)


def build(documents):
    collection = DocumentStore()["c"]
    collection.insert_many([dict(d) for d in documents])
    return collection


@given(rows)
@settings(max_examples=50, deadline=None)
def test_group_sums_match_manual(documents):
    collection = build(documents)
    result = collection.aggregate(
        [{"$group": {"_id": "$g", "total": {"$sum": "$v"},
                     "n": {"$count": True}}}]
    )
    manual_sum = defaultdict(int)
    manual_count = defaultdict(int)
    for document in documents:
        manual_sum[document["g"]] += document["v"]
        manual_count[document["g"]] += 1
    assert {row["_id"]: row["total"] for row in result} == dict(manual_sum)
    assert {row["_id"]: row["n"] for row in result} == dict(manual_count)


@given(rows)
@settings(max_examples=50, deadline=None)
def test_group_partition_is_total(documents):
    collection = build(documents)
    result = collection.aggregate(
        [{"$group": {"_id": "$g", "n": {"$count": True}}}]
    )
    assert sum(row["n"] for row in result) == len(documents)


@given(rows)
@settings(max_examples=50, deadline=None)
def test_min_max_bound_avg(documents):
    collection = build(documents)
    result = collection.aggregate(
        [
            {
                "$group": {
                    "_id": "$g",
                    "low": {"$min": "$v"},
                    "high": {"$max": "$v"},
                    "mean": {"$avg": "$v"},
                }
            }
        ]
    )
    for row in result:
        assert row["low"] <= row["mean"] <= row["high"]


@given(rows, st.integers(-100, 100))
@settings(max_examples=50, deadline=None)
def test_match_then_count_equals_count_documents(documents, threshold):
    collection = build(documents)
    via_pipeline = collection.aggregate(
        [
            {"$match": {"v": {"$gte": threshold}}},
            {"$group": {"_id": None, "n": {"$count": True}}},
        ]
    )
    direct = collection.count_documents({"v": {"$gte": threshold}})
    pipeline_count = via_pipeline[0]["n"] if via_pipeline else 0
    assert pipeline_count == direct


@given(rows)
@settings(max_examples=40, deadline=None)
def test_sort_stage_orders(documents):
    collection = build(documents)
    result = collection.aggregate([{"$sort": {"v": 1}}])
    values = [row["v"] for row in result]
    assert values == sorted(values)
